//! Container-to-host administration (paper §2.4, use case 3).
//!
//! Container-oriented distributions (CoreOS, RancherOS) ship no package
//! manager; administrators keep their tools in a container. CNTR lets a
//! privileged container's user reach the *host's* root filesystem under
//! `/var/lib/cntr` while running the toolbox image's tools.
//!
//! ```text
//! cargo run --example coreos_admin
//! ```

use cntr::prelude::*;

fn main() {
    let kernel = boot_host(SimClock::new());
    // A lean CoreOS-like host: config files, no tools at all.
    let fd = kernel
        .open(
            Pid::INIT,
            "/etc/os-release",
            OpenFlags::create(),
            Mode::RW_R__R__,
        )
        .unwrap();
    kernel.write_fd(Pid::INIT, fd, b"ID=coreos\n").unwrap();
    kernel.close(Pid::INIT, fd).unwrap();

    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("toolbox", "latest")
            .layer("admin-tools")
            .binary("/usr/bin/cat", 50_000, &[])
            .binary("/usr/bin/ls", 140_000, &[])
            .binary("/usr/bin/stat", 80_000, &[])
            .binary("/usr/bin/tee", 60_000, &[])
            .env("PATH", "/usr/bin")
            .entrypoint("/usr/bin/ls")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::SystemdNspawn, kernel.clone(), registry);
    let toolbox = docker.run("admin", "toolbox:latest").unwrap();

    // Attach *to the host* (pid 1) with the toolbox as the fat container:
    // tools at /, the host filesystem under /var/lib/cntr.
    let cntr = Cntr::new(kernel.clone());
    let session = cntr
        .attach(
            Pid::INIT,
            CntrOptions {
                tools: ToolsLocation::FatContainer(toolbox.pid),
                fuse: FuseConfig::optimized(),
            },
        )
        .unwrap();

    println!("$ cat /var/lib/cntr/etc/os-release");
    print!("{}", session.run("cat /var/lib/cntr/etc/os-release"));
    println!("$ stat /var/lib/cntr/etc/os-release");
    print!("{}", session.run("stat /var/lib/cntr/etc/os-release"));
    // Administer the host: write a config using a toolbox binary.
    session.run("tee /var/lib/cntr/etc/motd maintained-via-cntr-toolbox");
    let fd = kernel
        .open(Pid::INIT, "/etc/motd", OpenFlags::RDONLY, Mode::RW_R__R__)
        .unwrap();
    let mut buf = [0u8; 64];
    let n = kernel.read_fd(Pid::INIT, fd, &mut buf).unwrap();
    println!(
        "\nhost /etc/motd now contains: {}",
        String::from_utf8_lossy(&buf[..n])
    );
    session.detach().unwrap();
}
