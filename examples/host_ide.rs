//! Host-to-container debugging (paper §2.4, use case 2), with X11
//! forwarding for graphical tools (paper §3.2.4).
//!
//! ```text
//! cargo run --example host_ide
//! ```

use cntr::prelude::*;

fn main() {
    let kernel = boot_host(SimClock::new());
    // The developer's host has a multi-gigabyte IDE installed.
    for (tool, size) in [("ide", 3_000_000_000u64), ("gdb", 80_000_000)] {
        let path = format!("/usr/bin/{tool}");
        let fd = kernel
            .open(Pid::INIT, &path, OpenFlags::create(), Mode::RWXR_XR_X)
            .unwrap();
        kernel.write_fd(Pid::INIT, fd, b"host binary").unwrap();
        kernel.close(Pid::INIT, fd).unwrap();
        kernel.chmod(Pid::INIT, &path, Mode::RWXR_XR_X).unwrap();
        let _ = size; // sizes are illustrative; content is simulated
    }
    kernel.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
    // The host X server.
    let x11 = kernel.bind_listener(Pid::INIT, "/run/x11.sock").unwrap();

    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("webapp", "ci")
            .layer("app")
            .binary("/app/server", 20_000_000, &[])
            .entrypoint("/app/server")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let app = docker.run("webapp", "webapp:ci").unwrap();

    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(app.pid, CntrOptions::default()).unwrap();
    println!("attached with host tools; launching the 'IDE' against the app\n");
    print!("$ ide\n{}", session.run("ide /var/lib/cntr/app/server"));

    // Forward the host X11 socket into the container so graphical tools work.
    let proxy = session
        .forward_socket("/var/lib/cntr/tmp/.X11-unix", "/run/x11.sock")
        .unwrap();
    let client = kernel.connect(app.pid, "/tmp/.X11-unix").unwrap();
    proxy.pump().unwrap();
    kernel.write_fd(app.pid, client, b"XOpenDisplay").unwrap();
    session.pump_proxies().unwrap();
    let server_side = kernel.accept(Pid::INIT, x11).unwrap();
    let mut buf = [0u8; 32];
    let n = kernel.read_fd(Pid::INIT, server_side, &mut buf).unwrap();
    println!(
        "\nX11 server received through the proxy: {:?}",
        String::from_utf8_lossy(&buf[..n])
    );
    session.detach().unwrap();
}
