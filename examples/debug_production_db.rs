//! Container-to-container debugging in production (paper §2.4, use case 1).
//!
//! A slim MySQL container is debugged with tools from a separate fat
//! "debug-tools" container: gdb attaches to the database process, and the
//! DBA edits the live configuration through `/var/lib/cntr` — without one
//! byte of tooling inside the production image.
//!
//! ```text
//! cargo run --example debug_production_db
//! ```

use cntr::prelude::*;

fn main() {
    let kernel = boot_host(SimClock::new());
    let registry = Registry::new();

    registry.push(
        ImageBuilder::new("mysql", "8-slim")
            .layer("mysql")
            .binary("/usr/sbin/mysqld", 45_000_000, &[])
            .text("/etc/my.cnf", "[mysqld]\nmax_connections=100\n")
            .dir("/var/lib/mysql")
            .env("MYSQL_DATABASE", "orders")
            .entrypoint("/usr/sbin/mysqld")
            .build(),
    );
    registry.push(
        ImageBuilder::new("debug-tools", "latest")
            .layer("toolbox")
            .binary("/usr/bin/gdb", 80_000_000, &[])
            .binary("/usr/bin/strace", 2_000_000, &[])
            .binary("/usr/bin/cat", 50_000, &[])
            .binary("/usr/bin/tee", 50_000, &[])
            .binary("/usr/bin/ps", 120_000, &[])
            .env("PATH", "/usr/bin")
            .entrypoint("/usr/bin/gdb")
            .build(),
    );

    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let db = docker.run("prod-db", "mysql:8-slim").unwrap();
    docker.run("toolbox", "debug-tools:latest").unwrap();
    println!(
        "prod-db running (pid {}), toolbox running — attaching...\n",
        db.pid
    );

    // cntr attach prod-db --fat-container toolbox
    let cntr = Cntr::new(kernel.clone());
    let session = cntr
        .attach_with_engine(&docker, "prod-db", Some("toolbox"), FuseConfig::optimized())
        .unwrap();

    println!("$ gdb -p {}", db.pid);
    print!("{}", session.run(&format!("gdb -p {}", db.pid)));

    println!("$ cat /var/lib/cntr/etc/my.cnf");
    print!("{}", session.run("cat /var/lib/cntr/etc/my.cnf"));

    // Edit the config in place; the database sees it immediately (§7:
    // "developers can use their favorite editor to edit files in place and
    // reload the service").
    println!("$ tee /var/lib/cntr/etc/my.cnf [mysqld] max_connections=500");
    session.run("tee /var/lib/cntr/etc/my.cnf [mysqld] max_connections=500");
    let fd = kernel
        .open(db.pid, "/etc/my.cnf", OpenFlags::RDONLY, Mode::RW_R__R__)
        .unwrap();
    let mut buf = [0u8; 128];
    let n = kernel.read_fd(db.pid, fd, &mut buf).unwrap();
    kernel.close(db.pid, fd).unwrap();
    println!(
        "\nthe database now reads: {}",
        String::from_utf8_lossy(&buf[..n])
    );

    session.detach().unwrap();
    println!("detached — prod-db never contained a single debug tool");
}
