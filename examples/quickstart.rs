//! Quickstart: attach to a slim container with host tools.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cntr::prelude::*;

fn main() {
    // A simulated host with a toolbox in /usr/bin.
    let kernel = boot_host(SimClock::new());
    for tool in ["gdb", "ls", "cat", "ps", "strace"] {
        let path = format!("/usr/bin/{tool}");
        let fd = kernel
            .open(Pid::INIT, &path, OpenFlags::create(), Mode::RWXR_XR_X)
            .unwrap();
        kernel.write_fd(Pid::INIT, fd, b"ELF host tool").unwrap();
        kernel.close(Pid::INIT, fd).unwrap();
        kernel.chmod(Pid::INIT, &path, Mode::RWXR_XR_X).unwrap();
    }
    kernel.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();

    // A slim Redis image: the app and its config. No shell, no tools.
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("redis", "7-slim")
            .layer("redis")
            .binary("/usr/local/bin/redis-server", 12_000_000, &[])
            .text("/etc/redis.conf", "maxmemory 256mb\n")
            .env("REDIS_PORT", "6379")
            .entrypoint("/usr/local/bin/redis-server")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let container = docker.run("cache", "redis:7-slim").unwrap();
    println!(
        "started container 'cache' ({}) pid={}",
        &container.id[..12],
        container.pid
    );

    // cntr attach cache
    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(container.pid, CntrOptions::default()).unwrap();
    println!("attached: tools from the host, app under /var/lib/cntr\n");

    for cmd in [
        "ls /usr/bin",
        "ls /var/lib/cntr/usr/local/bin",
        "cat /var/lib/cntr/etc/redis.conf",
        &format!("gdb -p {}", container.pid),
    ] {
        println!("$ {cmd}");
        print!("{}", session.run(cmd));
    }

    session.detach().unwrap();
    println!("\ndetached; the container keeps running untouched");
}
