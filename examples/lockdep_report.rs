//! Prints the lock-dependency graph a representative workload establishes.
//!
//! ```text
//! cargo run --release --features lockdep --example lockdep_report
//! ```
//!
//! CI's stress job records this output as a build artifact, so a PR that
//! grows the class list or the edge set shows the delta in review. Without
//! instrumentation (release, no `lockdep` feature) the report is empty but
//! the header still prints, so the artifact is always well-formed.

use cntr::prelude::*;

fn main() {
    // Exercise every subsystem once: boot, image pull, container start,
    // attach, shell traffic over CntrFS, detach, teardown.
    let kernel = boot_host(SimClock::new());
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "slim")
            .layer("app")
            .binary("/usr/local/bin/app", 1_000_000, &[])
            .entrypoint("/usr/local/bin/app")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let container = docker.run("probe", "app:slim").unwrap();

    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(container.pid, CntrOptions::default()).unwrap();
    session.run("ls /var/lib/cntr/usr/local/bin");
    session.detach().unwrap();
    docker.stop("probe").unwrap();

    print!("{}", cntr::lockdep::report());
}
