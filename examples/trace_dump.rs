//! Dumps a chrome-trace of a representative workload.
//!
//! ```text
//! cargo run --release --example trace_dump > trace.json 2> cntrstats.txt
//! ```
//!
//! Stdout is a chrome-trace event array (load it in `chrome://tracing` or
//! Perfetto); stderr is the `/proc/cntrstats` snapshot taken after the
//! workload, so one run yields both CI artifacts. The workload exercises
//! the full stack — boot, image pull, container start, attach, shell
//! traffic, teardown — and finishes with spliced 1 MiB reads through a
//! threaded FUSE transport and through the io_uring-style ring transport,
//! so the dump contains complete client → transport → handler → storage
//! request pipelines for both dispatch shapes and the cntrstats snapshot
//! carries the `fuse.ring.*` batch-size/reap distributions.

use std::sync::Arc;

use cntr::fs::Filesystem;
use cntr::prelude::*;
use cntr_fuse::conn::ThreadedTransport;
use cntr_fuse::{FsHandler, FuseClientFs, RingTransport};
use cntr_types::{CostModel, DevId, FileType, Ino};

fn main() {
    // Exercise every subsystem once: boot, image pull, container start,
    // attach, shell traffic over CntrFS, detach, teardown.
    let kernel = boot_host(SimClock::new());
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "slim")
            .layer("app")
            .binary("/usr/local/bin/app", 1_000_000, &[])
            .entrypoint("/usr/local/bin/app")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let container = docker.run("probe", "app:slim").unwrap();

    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(container.pid, CntrOptions::default()).unwrap();
    session.run("ls /var/lib/cntr/usr/local/bin");
    session.detach().unwrap();
    docker.stop("probe").unwrap();

    // A spliced read over a threaded transport: its trace records spans
    // from all four pipeline stages, across the worker-thread boundary.
    let clock = SimClock::new();
    let backing = cntr::fs::memfs::memfs(DevId(900), clock.clone());
    let transport = Arc::new(ThreadedTransport::new(FsHandler::new(backing), 2));
    let client = FuseClientFs::mount(
        DevId(0xAB),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .unwrap();
    let st = client
        .mknod(
            Ino::ROOT,
            "big",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &cntr::fs::FsContext::root(),
        )
        .unwrap();
    let fh = client.open(st.ino, OpenFlags::RDWR).unwrap();
    client.write(st.ino, fh, 0, &vec![0x5A; 1 << 20]).unwrap();
    let data = client.read_bytes_gather(st.ino, fh, 0, 1 << 20).unwrap();
    assert_eq!(data.len(), 1 << 20);
    client.release(st.ino, fh).unwrap();

    // The same spliced read over the ring transport: batched submission
    // and multi-reap leave their fuse.ring.* distributions in the
    // snapshot, and the trace shows the request crossing the ring.
    let clock = SimClock::new();
    let backing = cntr::fs::memfs::memfs(DevId(901), clock.clone());
    let transport = Arc::new(RingTransport::new(FsHandler::new(backing), 2, 16, 4));
    let client = FuseClientFs::mount(
        DevId(0xAC),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .unwrap();
    let st = client
        .mknod(
            Ino::ROOT,
            "ring",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &cntr::fs::FsContext::root(),
        )
        .unwrap();
    let fh = client.open(st.ino, OpenFlags::RDWR).unwrap();
    client.write(st.ino, fh, 0, &vec![0xA5; 1 << 20]).unwrap();
    let data = client.read_bytes_gather(st.ino, fh, 0, 1 << 20).unwrap();
    assert_eq!(data.len(), 1 << 20);
    client.release(st.ino, fh).unwrap();

    // Stdout: the trace. Stderr: the metrics snapshot as the kernel
    // serves it (registry metrics plus the bridged lockdep section).
    println!("{}", cntr::obs::trace::chrome_json());

    let fd = kernel
        .open(
            Pid::INIT,
            "/proc/cntrstats",
            OpenFlags::RDONLY,
            Mode::RW_R__R__,
        )
        .expect("open /proc/cntrstats");
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = kernel.read_fd(Pid::INIT, fd, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    kernel.close(Pid::INIT, fd).expect("close");
    eprint!("{}", String::from_utf8(out).expect("cntrstats is utf-8"));
}
