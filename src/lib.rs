//! # cntr — a reproduction of *CNTR: Lightweight OS Containers* (USENIX ATC '18)
//!
//! CNTR splits container images into a **slim** image (the application) and
//! a **fat** image (the tools), and merges them *at runtime*: attach to a
//! running slim container and a nested mount namespace appears in which the
//! fat container's (or the host's) filesystem is served at `/` through a
//! FUSE filesystem — CntrFS — while the application's root is re-mounted at
//! `/var/lib/cntr`. Tools run inside the container (same pid namespace,
//! cgroup, capabilities) with their binaries forwarded over FUSE.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | provides |
//! |---|---|
//! | [`types`] | errno, ids, stat, flags, virtual clock + cost model |
//! | [`blockdev`] | gp2-like simulated block device |
//! | [`fs`] | `Filesystem` trait, MemFs (tmpfs), DiskFs (ext4-like) |
//! | [`kernel`] | processes, namespaces, mounts, VFS, page cache, sockets |
//! | [`fuse`] | the FUSE protocol: client caches, transports, server runtime |
//! | [`engine`] | images, registry, Docker/LXC/rkt/systemd-nspawn |
//! | [`core`] | **the paper's contribution**: attach workflow, CntrFS server, pty, shell, socket proxy |
//! | [`slim`] | Docker Slim + the Top-50 corpus (Figure 5) |
//! | [`xfstests`] | the 94-test regression suite (§5.1) |
//! | [`phoronix`] | the 20-benchmark performance suite (Figures 2–4) |
//!
//! # Examples
//!
//! ```
//! use cntr::prelude::*;
//!
//! // Boot a host, start a slim container, attach with host tools.
//! let kernel = boot_host(SimClock::new());
//! let registry = Registry::new();
//! registry.push(
//!     ImageBuilder::new("redis", "7")
//!         .layer("app")
//!         .binary("/usr/bin/redis-server", 1_000_000, &[])
//!         .entrypoint("/usr/bin/redis-server")
//!         .build(),
//! );
//! let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
//! let c = docker.run("cache", "redis:7").unwrap();
//!
//! let cntr = Cntr::new(kernel.clone());
//! let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
//! // The application's filesystem is visible under /var/lib/cntr.
//! assert!(kernel
//!     .stat(session.attached, "/var/lib/cntr/usr/bin/redis-server")
//!     .unwrap()
//!     .is_file());
//! session.detach().unwrap();
//! ```

pub use cntr_blockdev as blockdev;
pub use cntr_core as core;
pub use cntr_engine as engine;
pub use cntr_fs as fs;
pub use cntr_fuse as fuse;
pub use cntr_kernel as kernel;
pub use cntr_overlay as overlay;
pub use cntr_phoronix as phoronix;
pub use cntr_slim as slim;
pub use cntr_types as types;
pub use cntr_xfstests as xfstests;
pub use lockdep;
pub use obs;

/// The common imports for CNTR applications.
pub mod prelude {
    pub use cntr_core::{AttachSession, Cntr, CntrOptions, ToolsLocation};
    pub use cntr_engine::runtime::boot_host;
    pub use cntr_engine::{ContainerRuntime, EngineKind, ImageBuilder, Registry};
    pub use cntr_fuse::FuseConfig;
    pub use cntr_kernel::Kernel;
    pub use cntr_types::{Mode, OpenFlags, Pid, SimClock};
}
