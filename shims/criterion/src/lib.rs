//! Offline subset of `criterion`: wall-clock microbenchmark harness with
//! the upstream entry points (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups). Reports mean ns/iter on
//! stdout; no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// How long each benchmark is measured for.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(200);

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then batches until the time target is hit.
        black_box(f());
        let mut iters = 0u64;
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if start.elapsed() >= TARGET_MEASURE_TIME {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{name:<40} {ns_per_iter:>12.1} ns/iter ({} iters)", b.iters);
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes harness flags; a bench binary
            // without the libtest harness must tolerate and ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
