//! Offline subset of `proptest`: random-input property testing without
//! shrinking. The surface mirrors upstream so test files compile unchanged:
//! `proptest!` with `#![proptest_config(..)]`, `Strategy::prop_map`,
//! `prop_oneof!`, `any::<T>()`, `proptest::collection::vec`, and the
//! `prop_assert*` macros. Failing cases report the generated inputs via the
//! assertion message; minimization is not attempted.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-test configuration. Only the fields this workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Base RNG seed; fixed so CI runs are deterministic.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; this workspace keeps suites under
            // the tier-1 time budget with a lower deterministic default.
            ProptestConfig {
                cases: 64,
                seed: 0x70_72_6F_70,
            }
        }
    }

    /// The RNG driving one test case.
    pub type TestRng = SmallRng;

    /// Derives the RNG for case number `case` of a property.
    pub fn new_rng(seed: u64, case: u32) -> TestRng {
        SmallRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A strategy drawing uniformly from `alternatives`.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            Union(alternatives)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.gen_range(0..self.0.len());
            self.0[ix].generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident/$ix:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`, like `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)` body
/// runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::test_runner::new_rng(cfg.seed, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alt)),+
        ])
    };
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u8),
        Pair(u8, u16),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 0u8..8, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(x < 8);
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn oneof_and_map(p in prop_oneof![
            (0u8..4).prop_map(Pick::Small),
            (0u8..4, 0u16..100).prop_map(|(a, b)| Pick::Pair(a, b)),
        ]) {
            match p {
                Pick::Small(a) => prop_assert!(a < 4),
                Pick::Pair(a, b) => prop_assert!(a < 4 && b < 100),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::new_rng(1, 2);
        let mut b = crate::test_runner::new_rng(1, 2);
        let s = crate::collection::vec(0u16..500, 1..30);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
