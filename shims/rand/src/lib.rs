//! Offline subset of `rand`: the `Rng`/`SeedableRng` traits and a
//! deterministic `SmallRng` (splitmix64 seeding + xoshiro256** core).

/// Types that can be sampled uniformly from a range. Implemented for the
/// integer and float ranges the workspace uses with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation.
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range` (half-open, like `rand`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for workload synthesis.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (start as u128 + hi) as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

uniform_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // The multiply can round up to `end`; keep the range half-open.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen_range(3usize..8);
            assert!((3..8).contains(&u));
        }
    }

    #[test]
    fn f64_range_stays_half_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        let tight = 1.0f64..f64::from_bits(1.0f64.to_bits() + 1);
        for _ in 0..10_000 {
            let v = rng.gen_range(tight.clone());
            assert!(v >= tight.start && v < tight.end, "v={v}");
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
