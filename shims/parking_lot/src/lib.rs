//! Offline subset of `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. Only the surface this workspace uses.
//!
//! # Lockdep instrumentation
//!
//! Under `debug_assertions` (or the `lockdep` cargo feature, for release
//! stress runs) every lock participates in the workspace-wide
//! lock-dependency validator (`crates/lockdep`): each lock belongs to a
//! *class* — named explicitly via [`Mutex::new_class`] /
//! [`RwLock::new_class`], ranked within a sharded family via
//! [`Mutex::new_ranked`], or derived automatically from the construction
//! site for plain [`Mutex::new`] — and every acquisition is checked
//! against the global class-dependency graph *before* blocking, so lock
//! inversions, double-locks and rank-order violations panic
//! deterministically instead of deadlocking some unlucky run. See the
//! `lockdep` crate docs for the checks.
//!
//! In release builds without the feature, the class plumbing compiles
//! away entirely: the types are plain newtypes over `std::sync` with no
//! extra fields and no extra code on the lock path.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(any(debug_assertions, feature = "lockdep"))]
mod dep {
    use std::panic::Location;
    use std::ptr;
    use std::sync::atomic::{AtomicPtr, Ordering};

    /// The lockdep identity of one lock instance: its class (resolved
    /// lazily, so construction stays `const`) and its rank within a
    /// sharded class family.
    pub(crate) struct ClassCell {
        name: Option<&'static str>,
        rank: u32,
        loc: &'static Location<'static>,
        resolved: AtomicPtr<lockdep::LockClass>,
    }

    impl ClassCell {
        pub(crate) const fn new(
            name: Option<&'static str>,
            rank: u32,
            loc: &'static Location<'static>,
        ) -> ClassCell {
            ClassCell {
                name,
                rank,
                loc,
                resolved: AtomicPtr::new(ptr::null_mut()),
            }
        }

        pub(crate) fn name(&self) -> Option<&'static str> {
            self.name
        }

        fn class(&self) -> &'static lockdep::LockClass {
            let p = self.resolved.load(Ordering::Acquire);
            if !p.is_null() {
                // The pointer only ever transitions null → one leaked
                // &'static LockClass, so this deref is always valid.
                return unsafe { &*p };
            }
            let class = lockdep::register(self.name, self.loc);
            self.resolved
                .store(class as *const _ as *mut _, Ordering::Release);
            class
        }

        /// Validates the acquisition and returns the token whose drop
        /// pops it off the thread's held-lock stack.
        pub(crate) fn enter(
            &self,
            kind: lockdep::LockKind,
            site: &'static Location<'static>,
        ) -> Held {
            let class = self.class();
            lockdep::acquire(class, self.rank, kind, site);
            Held {
                class,
                rank: self.rank,
            }
        }

        /// Reports one contended acquisition (the `try_lock` fast path
        /// failed and the thread blocked for `wait_ns`) to lockdep's
        /// per-class contention accounting, surfaced in `/proc/cntrstats`.
        pub(crate) fn note_contention(&self, wait_ns: u64) {
            lockdep::note_contention(self.class(), wait_ns);
        }
    }

    /// RAII held-stack entry (one per live guard).
    pub(crate) struct Held {
        class: &'static lockdep::LockClass,
        rank: u32,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            lockdep::release(self.class, self.rank);
        }
    }
}

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()` does
/// not return a poison `Result`: a panic while holding the lock does not
/// poison it for later holders, matching `parking_lot` semantics.
pub struct Mutex<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    class: dep::ClassCell,
    inner: sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex. Its lockdep class is derived from the
    /// construction site; prefer [`Mutex::new_class`] for locks that are
    /// part of a documented ordering discipline.
    #[track_caller]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            class: dep::ClassCell::new(None, 0, std::panic::Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex in the named lockdep class.
    #[track_caller]
    pub const fn new_class(name: &'static str, value: T) -> Mutex<T> {
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        let _ = name;
        Mutex {
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            class: dep::ClassCell::new(Some(name), 0, std::panic::Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex in the named lockdep class with an instance rank:
    /// for classes registered `Shape::Sharded { ascending: true }`, nested
    /// same-class acquisitions must take strictly ascending ranks (the
    /// pid-shard `lock_pair` idiom).
    #[track_caller]
    pub const fn new_ranked(name: &'static str, rank: u32, value: T) -> Mutex<T> {
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        let _ = (name, rank);
        Mutex {
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            class: dep::ClassCell::new(Some(name), rank, std::panic::Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Under lockdep
    /// the acquisition is validated *before* blocking, so an ordering
    /// violation panics instead of deadlocking. Instrumented builds also
    /// try a non-blocking fast path first and report the wall-clock wait
    /// of contended acquisitions to lockdep's per-class contention stats.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        {
            let held = self
                .class
                .enter(lockdep::LockKind::Mutex, std::panic::Location::caller());
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    let start = std::time::Instant::now();
                    let g = match self.inner.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    self.class
                        .note_contention(start.elapsed().as_nanos() as u64);
                    g
                }
            };
            MutexGuard { inner, _held: held }
        }
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        {
            let inner = match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            MutexGuard { inner }
        }
    }

    /// Attempts to acquire the lock without blocking. A failed `try_lock`
    /// cannot deadlock, but a *successful* one still participates in the
    /// held-lock stack and dependency graph like any acquisition.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            _held: self
                .class
                .enter(lockdep::LockKind::Mutex, std::panic::Location::caller()),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Mutex");
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        if let Some(name) = self.class.name() {
            s.field("class", &name);
        }
        s.field("data", &&self.inner).finish()
    }
}

impl<T> From<T> for Mutex<T> {
    #[track_caller]
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// RAII guard of [`Mutex::lock`]; releasing it pops the lockdep held-lock
/// stack entry.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    _held: dep::Held,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Display + ?Sized> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A reader-writer lock with the same non-poisoning behaviour as [`Mutex`].
pub struct RwLock<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    class: dep::ClassCell,
    inner: sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Creates a new rwlock (auto lockdep class from the construction
    /// site; prefer [`RwLock::new_class`] for disciplined locks).
    #[track_caller]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            class: dep::ClassCell::new(None, 0, std::panic::Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a rwlock in the named lockdep class.
    #[track_caller]
    pub const fn new_class(name: &'static str, value: T) -> RwLock<T> {
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        let _ = name;
        RwLock {
            #[cfg(any(debug_assertions, feature = "lockdep"))]
            class: dep::ClassCell::new(Some(name), 0, std::panic::Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Instrumented builds report contended
    /// acquisitions to lockdep's per-class contention stats.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        {
            let held = self
                .class
                .enter(lockdep::LockKind::Read, std::panic::Location::caller());
            let inner = match self.inner.try_read() {
                Ok(g) => g,
                Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    let start = std::time::Instant::now();
                    let g = match self.inner.read() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    self.class
                        .note_contention(start.elapsed().as_nanos() as u64);
                    g
                }
            };
            RwLockReadGuard { inner, _held: held }
        }
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        {
            let inner = match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            RwLockReadGuard { inner }
        }
    }

    /// Acquires exclusive write access. Instrumented builds report
    /// contended acquisitions to lockdep's per-class contention stats.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        {
            let held = self
                .class
                .enter(lockdep::LockKind::Write, std::panic::Location::caller());
            let inner = match self.inner.try_write() {
                Ok(g) => g,
                Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(sync::TryLockError::WouldBlock) => {
                    let start = std::time::Instant::now();
                    let g = match self.inner.write() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    self.class
                        .note_contention(start.elapsed().as_nanos() as u64);
                    g
                }
            };
            RwLockWriteGuard { inner, _held: held }
        }
        #[cfg(not(any(debug_assertions, feature = "lockdep")))]
        {
            let inner = match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            RwLockWriteGuard { inner }
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("RwLock");
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        if let Some(name) = self.class.name() {
            s.field("class", &name);
        }
        s.field("data", &&self.inner).finish()
    }
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    _held: dep::Held,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Display + ?Sized> fmt::Display for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    _held: dep::Held,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Display + ?Sized> fmt::Display for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_returns_none_when_held() {
        let m = Mutex::new_class("parking_lot.test.try", 0);
        let g = m.lock();
        // Contended try_lock from another thread: must not block or panic.
        std::thread::scope(|s| {
            s.spawn(|| assert!(m.try_lock().is_none()));
        });
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_lock_feeds_lockdep_stats() {
        let m = Arc::new(Mutex::new_class("parking_lot.test.contended", 0));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock(); // blocks until the main thread releases
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(g);
        waiter.join().unwrap();
        if cfg!(any(debug_assertions, feature = "lockdep")) {
            let row = lockdep::report()
                .classes
                .into_iter()
                .find(|c| c.name == "parking_lot.test.contended")
                .unwrap();
            assert!(row.contended >= 1, "contended={}", row.contended);
            assert!(row.wait_ns > 0);
        }
    }

    #[test]
    fn named_classes_show_in_debug_and_report() {
        let m = Mutex::new_class("parking_lot.test.named", 7);
        let _g = m.lock();
        let dbg = format!("{m:?}");
        // The class only renders in instrumented builds.
        if cfg!(any(debug_assertions, feature = "lockdep")) {
            assert!(dbg.contains("parking_lot.test.named"), "got {dbg}");
            assert!(lockdep::report()
                .classes
                .iter()
                .any(|c| c.name == "parking_lot.test.named"));
        }
    }
}
