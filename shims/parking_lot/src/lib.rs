//! Offline subset of `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. Only the surface this workspace uses.

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()` does
/// not return a poison `Result`: a panic while holding the lock does not
/// poison it for later holders, matching `parking_lot` semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock with the same non-poisoning behaviour as [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
