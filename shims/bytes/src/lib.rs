//! Offline subset of `bytes`: a cheaply clonable, immutable byte container.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer. Clones share the
/// underlying storage, so handing payloads between protocol layers is O(1)
/// — the property the FUSE splice path relies on.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_arc(Arc::from([] as [u8; 0]))
    }

    /// Wraps a static slice (no copy in upstream `bytes`; here one copy at
    /// construction, still O(1) per clone afterwards).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from_arc(Arc::from(data))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Bytes {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing storage with `self`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        let c = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 5);
        assert_eq!(a.to_vec(), b"hello");
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from_static(b"hello world");
        let w = a.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(w.slice(..2), Bytes::from_static(b"wo"));
        assert!(Bytes::new().is_empty());
    }
}
