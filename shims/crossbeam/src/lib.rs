//! Offline subset of `crossbeam`: a multi-producer multi-consumer channel
//! (`crossbeam::channel`) built on a mutex-guarded deque and condvars.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item arrives or the last sender disconnects.
        recv_ready: Condvar,
        /// Signalled when an item is taken or the last receiver disconnects.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Clonable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// Unlike upstream crossbeam, `cap == 0` (a rendezvous channel) is not
    /// supported and panics rather than silently deadlocking.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "this crossbeam shim does not support rendezvous (zero-capacity) channels"
        );
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room (bounded channels), then
        /// enqueues. Fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.send_ready.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.recv_ready.wait(inner).unwrap();
            }
        }

        /// Takes a message if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            let v = self.0.inner.lock().unwrap().queue.pop_front();
            if v.is_some() {
                self.0.send_ready.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.send_ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};

    #[test]
    fn round_trip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
