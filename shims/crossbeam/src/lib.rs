//! Offline subset of `crossbeam`: a multi-producer multi-consumer channel
//! (`crossbeam::channel`) built on a mutex-guarded deque and condvars, and
//! a lock-free bounded MPMC queue (`crossbeam::queue::ArrayQueue`).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item arrives or the last sender disconnects.
        recv_ready: Condvar,
        /// Signalled when an item is taken or the last receiver disconnects.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Clonable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// Unlike upstream crossbeam, `cap == 0` (a rendezvous channel) is not
    /// supported and panics rather than silently deadlocking.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "this crossbeam shim does not support rendezvous (zero-capacity) channels"
        );
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room (bounded channels), then
        /// enqueues. Fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.send_ready.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.recv_ready.wait(inner).unwrap();
            }
        }

        /// Takes a message if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            let v = self.0.inner.lock().unwrap().queue.pop_front();
            if v.is_some() {
                self.0.send_ready.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.send_ready.notify_all();
            }
        }
    }
}

pub mod queue {
    //! Lock-free bounded queues, API-compatible with
    //! `crossbeam::queue::ArrayQueue`.

    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// One ring slot. `stamp` is the slot's turn counter (Dmitry Vyukov's
    /// bounded-MPMC scheme, with crossbeam's lap encoding): a producer may
    /// write when `stamp == tail`, a consumer may read when
    /// `stamp == head + 1`; each access advances the slot's stamp, and lap
    /// bits above the index keep "readable" and "writable-next-lap" stamps
    /// distinct even at capacity 1.
    struct Slot<T> {
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    ///
    /// `push` and `pop` are wait-free for each other's absence and
    /// lock-free under contention: every step is a single CAS on a slot
    /// stamp — no mutex, no park. That property is what lets the FUSE
    /// ring transport submit from request threads without ranking a lock
    /// class for the ring storage itself.
    ///
    /// Head and tail pack `lap | index`: the low `log2(one_lap)` bits are
    /// the slot index, the rest count laps, with
    /// `one_lap = (cap + 1).next_power_of_two()`. Keeping `one_lap > cap`
    /// is load-bearing — with a plain position counter, a one-slot queue
    /// cannot tell "holds an unread value" from "free for the next lap"
    /// (both stamps would be 1) and a second push would overwrite the
    /// queued element.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        one_lap: usize,
        slots: Box<[Slot<T>]>,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        ///
        /// Panics if `cap == 0`.
        pub fn new(cap: usize) -> ArrayQueue<T> {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            let slots = (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                one_lap: (cap + 1).next_power_of_two(),
                slots,
            }
        }

        /// Maximum number of elements the queue holds.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Attempts to enqueue; returns the value back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let index = tail & (self.one_lap - 1);
                let lap = tail & !(self.one_lap - 1);
                let slot = &self.slots[index];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == tail {
                    // The slot is free and it is this position's turn:
                    // claim it by advancing the global tail (next index,
                    // or index 0 of the next lap).
                    let next = if index + 1 < self.slots.len() {
                        tail + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.tail.compare_exchange_weak(
                        tail,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            // Publish: consumers wait for stamp == tail + 1.
                            slot.stamp.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                    // The slot still holds the value written one lap ago.
                    // Full iff the head also still points one lap back;
                    // otherwise a pop is mid-flight — re-read and retry.
                    let head = self.head.load(Ordering::Relaxed);
                    if head.wrapping_add(self.one_lap) == tail {
                        return Err(value);
                    }
                    tail = self.tail.load(Ordering::Relaxed);
                } else {
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue; returns `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let index = head & (self.one_lap - 1);
                let lap = head & !(self.one_lap - 1);
                let slot = &self.slots[index];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == head + 1 {
                    // The slot holds a published value for this position:
                    // claim it by advancing the global head.
                    let next = if index + 1 < self.slots.len() {
                        head + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.head.compare_exchange_weak(
                        head,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Free the slot for the producer one lap ahead.
                            slot.stamp
                                .store(head.wrapping_add(self.one_lap), Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if stamp == head {
                    // The slot has not been written for this lap. Empty
                    // iff the tail agrees; otherwise a push is mid-flight.
                    let tail = self.tail.load(Ordering::Relaxed);
                    if tail == head {
                        return None;
                    }
                    head = self.head.load(Ordering::Relaxed);
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Number of elements currently enqueued (racy under concurrency,
        /// exact when quiescent).
        pub fn len(&self) -> usize {
            loop {
                let tail = self.tail.load(Ordering::SeqCst);
                let head = self.head.load(Ordering::SeqCst);
                if self.tail.load(Ordering::SeqCst) == tail {
                    let hix = head & (self.one_lap - 1);
                    let tix = tail & (self.one_lap - 1);
                    return if hix < tix {
                        tix - hix
                    } else if hix > tix {
                        self.slots.len() - hix + tix
                    } else if tail == head {
                        0
                    } else {
                        self.slots.len()
                    };
                }
            }
        }

        /// Whether the queue is currently empty (racy under concurrency).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is currently full (racy under concurrency).
        pub fn is_full(&self) -> bool {
            self.len() == self.capacity()
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use super::queue::ArrayQueue;
    use std::sync::Arc;

    #[test]
    fn round_trip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn array_queue_fifo_and_capacity() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    /// Capacity 1 is the aliasing-prone case: without lap bits, the
    /// "readable" stamp and the "writable next lap" stamp collide and a
    /// second push silently overwrites the queued element (the FUSE ring
    /// transport's depth-1 backpressure mode livelocked on exactly this).
    #[test]
    fn array_queue_capacity_one_rejects_overwrite() {
        let q = ArrayQueue::new(1);
        for lap in 0..100 {
            q.push(lap).unwrap();
            assert_eq!(q.push(usize::MAX), Err(usize::MAX));
            assert!(q.is_full());
            assert_eq!(q.pop(), Some(lap));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn array_queue_capacity_one_under_contention() {
        let q = Arc::new(ArrayQueue::new(1));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let mut v = p * 500 + i;
                        while let Err(back) = q.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2000 {
            match q.pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..2000).collect::<Vec<u64>>());
    }

    #[test]
    fn array_queue_wraps_many_laps() {
        let q = ArrayQueue::new(3);
        for i in 0..1000 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn array_queue_drops_remaining_elements() {
        let v = Arc::new(());
        {
            let q = ArrayQueue::new(4);
            q.push(Arc::clone(&v)).unwrap();
            q.push(Arc::clone(&v)).unwrap();
        }
        assert_eq!(Arc::strong_count(&v), 1);
    }

    #[test]
    fn array_queue_mpmc_stress() {
        let q = Arc::new(ArrayQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < 1000 {
                        match q.pop() {
                            Some(v) => got.push(v),
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..4000).collect::<Vec<u64>>());
    }
}
