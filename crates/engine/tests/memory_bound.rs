//! Engine-matrix plumbing for the memory-bounded page cache: a host booted
//! through [`boot_host_with`] with a deliberately tiny `page_cache_limit`
//! runs real containers whose combined writes exceed the ceiling several
//! times over — residency must stay bounded and every byte must survive
//! the writeback-then-evict path.

use cntr_engine::runtime::boot_host_with;
use cntr_engine::{ContainerRuntime, EngineKind, ImageBuilder, Registry};
use cntr_kernel::kernel::KernelConfig;
use cntr_types::{Mode, OpenFlags, SimClock};
use std::sync::Arc;

const PAGE: usize = 4096;
const CEILING_PAGES: usize = 256; // 1 MiB
const CONTAINERS: usize = 8;
const PAGES_PER_CONTAINER: usize = 128; // 8 × 128 = 4× the ceiling

fn registry_with_image() -> Arc<Registry> {
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("db", "1")
            .layer("base")
            .binary("/bin/sh", 100_000, &[])
            .entrypoint("/bin/sh")
            .build(),
    );
    registry
}

fn payload(container: usize, page: usize) -> Vec<u8> {
    (0..PAGE)
        .map(|i| (container * 37 + page * 13 + i) as u8 ^ 0x5C)
        .collect()
}

#[test]
fn containers_under_a_tight_ceiling_stay_bounded_and_lossless() {
    let kernel = boot_host_with(
        SimClock::new(),
        KernelConfig {
            page_cache_limit: (CEILING_PAGES * PAGE) as u64,
            dirty_bytes: (64 * PAGE) as u64,
            background_writeback: false,
            ..KernelConfig::default()
        },
    );
    let limit = kernel.page_cache_capacity_pages();
    assert_eq!(limit, CEILING_PAGES, "the config must reach the cache");

    let rt = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry_with_image());
    let pids: Vec<_> = (0..CONTAINERS)
        .map(|i| rt.run(&format!("c{i}"), "db:1").unwrap().pid)
        .collect();

    // Each container streams its upper-layer writes through the shared
    // page cache; the bound must hold at every step, not just at the end.
    for (i, &pid) in pids.iter().enumerate() {
        let fd = kernel
            .open(
                pid,
                "/tmp/data",
                OpenFlags::RDWR.with(OpenFlags::CREAT),
                Mode::RW_R__R__,
            )
            .unwrap();
        for page in 0..PAGES_PER_CONTAINER {
            kernel
                .pwrite(pid, fd, (page * PAGE) as u64, &payload(i, page))
                .unwrap();
            let resident = kernel.page_cache_resident_pages();
            assert!(
                resident <= limit,
                "resident {resident} > ceiling {limit} (container {i}, page {page})"
            );
        }
        kernel.close(pid, fd).unwrap();
    }
    let stats = kernel.page_cache_stats();
    assert!(stats.evictions > 0, "4× overcommit must evict");
    assert!(stats.flushed_pages > 0, "dirty pages shrink via write-back");

    // Byte-identical readback per container — the upper layers are
    // private, so cross-container page mixups would surface here too.
    let mut buf = vec![0u8; PAGE];
    for (i, &pid) in pids.iter().enumerate() {
        let fd = kernel
            .open(pid, "/tmp/data", OpenFlags::RDONLY, Mode::RW_R__R__)
            .unwrap();
        for page in 0..PAGES_PER_CONTAINER {
            assert_eq!(
                kernel
                    .pread(pid, fd, (page * PAGE) as u64, &mut buf)
                    .unwrap(),
                PAGE
            );
            assert_eq!(buf, payload(i, page), "container {i} page {page} corrupted");
            assert!(kernel.page_cache_resident_pages() <= limit);
        }
        kernel.close(pid, fd).unwrap();
    }
}
