//! Namespace lifecycle leak check over the engine matrix.
//!
//! The paper's lightweight-container claim (§2.3, §4) only holds if a
//! container costs nothing once it is gone. This test creates and tears
//! down **1000 containers** across all four engine flavours — with socket
//! churn, live overlap, and nested container-in-container — and asserts
//! the kernel returns exactly to its boot baseline: the mount-namespace
//! registry holds only the root namespace, the hostname map only the
//! host's name, the socket-node map is empty, the per-namespace refcount
//! table is back to init's seven entries, and every per-container cgroup
//! node is gone. CI runs this as the release-mode leak-check step.

use cntr_engine::image::ImageBuilder;
use cntr_engine::runtime::boot_host;
use cntr_engine::{ContainerRuntime, Registry};
use cntr_kernel::{CgroupPath, Kernel, NamespaceId, NamespaceKind};
use cntr_types::{Errno, Pid, SimClock};

const TOTAL: usize = 1000;
const BATCH: usize = 25;

fn setup() -> (Kernel, Vec<ContainerRuntime>) {
    let kernel = boot_host(SimClock::new());
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "1.0")
            .layer("base")
            .binary("/bin/sh", 50_000, &[])
            .layer("app")
            .binary("/usr/bin/app", 200_000, &[])
            .text("/etc/app.conf", "listen=/tmp/app.sock\n")
            .entrypoint("/usr/bin/app")
            .build(),
    );
    // All four engines on one kernel, sharing one blob store — the matrix.
    let runtimes = ContainerRuntime::matrix(kernel.clone(), registry);
    (kernel, runtimes)
}

fn baseline(kernel: &Kernel) -> (Vec<NamespaceId>, usize, usize, usize, Vec<Pid>) {
    (
        kernel.mount_ns_ids(),
        kernel.hostname_count(),
        kernel.socket_node_count(),
        kernel.ns_ref_entries(),
        kernel.pids(),
    )
}

#[test]
fn thousand_containers_leave_no_namespace_behind() {
    let (kernel, runtimes) = setup();
    let boot = baseline(&kernel);
    assert_eq!(boot.0, vec![NamespaceId(1)]);
    assert_eq!((boot.1, boot.2, boot.3), (1, 0, 7));

    let mut launched = 0usize;
    let mut batch_no = 0usize;
    let mut sampled_cgroups: Vec<String> = Vec::new();
    while launched < TOTAL {
        // A batch of containers lives concurrently, round-robined over
        // the four engines, before the whole batch is stopped.
        let n = BATCH.min(TOTAL - launched);
        let mut live = Vec::with_capacity(n);
        for i in 0..n {
            let rt = &runtimes[(launched + i) % runtimes.len()];
            let name = format!("c{batch_no}-{i}");
            let c = rt.run(&name, "app:1.0").expect("run container");
            // Every container unshared six namespace kinds; its mount
            // namespace must be registered and singly referenced.
            let ns = kernel.proc_info(c.pid).expect("container info").ns;
            assert_eq!(kernel.ns_refcount(NamespaceKind::Mount, ns.mount), 1);
            // Exercise socket GC: a listener bound inside the container.
            kernel
                .bind_listener(c.pid, "/tmp/app.sock")
                .expect("bind in container");
            live.push((rt, name, c));
        }
        // Registry grew by exactly the live batch.
        assert_eq!(kernel.mount_ns_ids().len(), 1 + n);
        for (rt, name, c) in live {
            if sampled_cgroups.len() < 8 {
                sampled_cgroups.push(c.cgroup.clone());
            }
            rt.stop(&name).expect("stop container");
        }
        launched += n;
        batch_no += 1;
    }

    // Nested container-in-container: the inner container's namespaces
    // live inside the outer's; stopping inner then outer must unwind both.
    let rt = &runtimes[0];
    rt.run("outer", "app:1.0").expect("run outer");
    rt.run_nested("outer", "inner", "app:1.0")
        .expect("run inner");
    assert_eq!(kernel.mount_ns_ids().len(), 3);
    rt.stop("inner").expect("stop inner");
    assert_eq!(kernel.mount_ns_ids().len(), 2);
    rt.stop("outer").expect("stop outer");

    // The machine is back to its boot baseline: nothing leaked.
    assert_eq!(baseline(&kernel), boot, "kernel state must return to boot");
    // Dead containers were purged from cgroup bookkeeping too.
    for cg in &sampled_cgroups {
        assert_eq!(
            kernel.cgroup_members(&CgroupPath(cg.clone())),
            Err(Errno::ENOENT),
            "cgroup {cg} should have been removed on stop"
        );
    }
}
