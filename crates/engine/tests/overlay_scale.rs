//! The scaling property the overlay subsystem exists for: N containers of
//! one image share their lower-layer blobs, so total blob-store bytes grow
//! with **upper-layer writes**, not with N × image size.

use cntr_engine::runtime::boot_host;
use cntr_engine::{ContainerRuntime, EngineKind, ImageBuilder, Registry};
use cntr_types::{Mode, OpenFlags, SimClock};
use std::sync::Arc;

const CHUNK: u64 = 4096;

fn write_all(k: &cntr_kernel::Kernel, pid: cntr_types::Pid, path: &str, data: &[u8]) {
    let fd = k
        .open(pid, path, OpenFlags::create(), Mode::RW_R__R__)
        .unwrap();
    let mut off = 0;
    while off < data.len() {
        off += k.write_fd(pid, fd, &data[off..]).unwrap();
    }
    k.close(pid, fd).unwrap();
    let _ = k.sync();
}

fn registry_with_image() -> Arc<Registry> {
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("db", "1")
            .layer("base")
            .binary("/bin/sh", 100_000, &[])
            .text("/etc/base.conf", &"base configuration ".repeat(600))
            .layer("app")
            .binary("/usr/sbin/dbd", 5_000_000, &[])
            .text("/etc/app.conf", &"application settings ".repeat(700))
            .entrypoint("/usr/sbin/dbd")
            .build(),
    );
    registry
}

#[test]
fn n_containers_cost_o_of_upper_writes() {
    let k = boot_host(SimClock::new());
    let rt = ContainerRuntime::new(EngineKind::Docker, k.clone(), registry_with_image());

    rt.run("c0", "db:1").unwrap();
    let after_one = rt.blob_store().stats().physical_bytes;
    assert!(
        after_one > 0,
        "the image's literal content lives in the store"
    );

    for i in 1..8 {
        rt.run(&format!("c{i}"), "db:1").unwrap();
    }
    let after_eight = rt.blob_store().stats().physical_bytes;
    assert_eq!(
        after_eight, after_one,
        "8 containers of one image must not duplicate lower-layer blobs"
    );

    // The binaries are sparse: 5.1 MB of image size, no physical bytes.
    assert!(
        after_one < 64 * 1024,
        "only the literal configs are materialized, got {after_one}"
    );

    // Upper-layer writes grow the store by (roughly) what was written.
    let c3 = rt.get("c3").unwrap();
    // Distinct content per chunk — uniform data would (correctly) collapse
    // into a single deduplicated chunk.
    let payload: Vec<u8> = (0..16 * CHUNK as usize)
        .map(|i| (i / CHUNK as usize * 31 + i * 7) as u8)
        .collect();
    write_all(&k, c3.pid, "/tmp/scratch", &payload);
    let after_write = rt.blob_store().stats().physical_bytes;
    let grown = after_write - after_eight;
    assert!(
        (16 * CHUNK..=20 * CHUNK).contains(&grown),
        "store grew by {grown}, expected ~{}",
        16 * CHUNK
    );

    // An identical write in another container dedups against c3's upper.
    let c5 = rt.get("c5").unwrap();
    write_all(&k, c5.pid, "/tmp/scratch", &payload);
    assert_eq!(
        rt.blob_store().stats().physical_bytes,
        after_write,
        "identical upper content dedups across containers"
    );
}

#[test]
fn engines_sharing_a_store_dedup_across_flavours() {
    let k = boot_host(SimClock::new());
    let registry = registry_with_image();
    let store = cntr_overlay::BlobStore::new();
    let docker = ContainerRuntime::with_store(
        EngineKind::Docker,
        k.clone(),
        registry.clone(),
        Arc::clone(&store),
    );
    let lxc = ContainerRuntime::with_store(EngineKind::Lxc, k, registry, Arc::clone(&store));

    docker.run("a", "db:1").unwrap();
    let after_docker = store.stats().physical_bytes;
    lxc.run("b", "db:1").unwrap();
    assert_eq!(
        store.stats().physical_bytes,
        after_docker,
        "the same image under another engine adds no physical bytes"
    );
    assert!(store.stats().dedup_hits > 0);
}

#[test]
fn stopped_containers_release_upper_but_not_lowers() {
    let k = boot_host(SimClock::new());
    let rt = ContainerRuntime::new(EngineKind::Rkt, k.clone(), registry_with_image());
    rt.run("tmp", "db:1").unwrap();
    let baseline = rt.blob_store().stats().physical_bytes;
    rt.stop("tmp").unwrap();
    // Lower layers stay cached for the next container; nothing leaked,
    // nothing was torn down.
    assert_eq!(rt.blob_store().stats().physical_bytes, baseline);
    rt.run("again", "db:1").unwrap();
    assert_eq!(rt.blob_store().stats().physical_bytes, baseline);
}

#[test]
fn layers_with_equal_ids_but_different_content_do_not_collide() {
    let k = boot_host(SimClock::new());
    let registry = Registry::new();
    // Both images name their layer "base", but the contents differ.
    registry.push(
        ImageBuilder::new("a", "1")
            .layer("base")
            .text("/etc/only-in-a", "AAAA")
            .entrypoint("/etc/only-in-a")
            .build(),
    );
    registry.push(
        ImageBuilder::new("b", "1")
            .layer("base")
            .text("/etc/only-in-b", "BBBB")
            .entrypoint("/etc/only-in-b")
            .build(),
    );
    let rt = ContainerRuntime::new(EngineKind::Docker, k.clone(), registry);
    let ca = rt.run("ca", "a:1").unwrap();
    let cb = rt.run("cb", "b:1").unwrap();
    assert!(k.stat(ca.pid, "/etc/only-in-a").unwrap().is_file());
    assert!(k.stat(ca.pid, "/etc/only-in-b").is_err());
    assert!(k.stat(cb.pid, "/etc/only-in-b").unwrap().is_file());
    assert!(k.stat(cb.pid, "/etc/only-in-a").is_err());
}
