//! The container substrate: images, a registry, and container engines.
//!
//! CNTR supports "all container implementations (i.e., Docker, rkt, LXC,
//! systemd-nspawn)" by resolving engine-specific container names to process
//! ids and then working purely through kernel interfaces (paper §3.2.1,
//! §4: ~70 LoC of engine-specific code each). This crate provides those
//! engines over the simulated kernel:
//!
//! * [`image`] — layered container images with a builder API, file-level
//!   dependency metadata (for Docker Slim's static analysis), and size
//!   accounting,
//! * [`registry`] — an image registry with layer deduplication and a
//!   deployment-time model (downloads dominate container deployment; §1
//!   cites 92% of deployment time),
//! * [`runtime`] — container lifecycle: materialize a rootfs, unshare all
//!   seven namespaces, mount `/proc` and `/dev`, chroot, drop credentials,
//!   apply the image environment; plus the four engine flavours with their
//!   distinct naming schemes.

pub mod image;
pub mod registry;
pub mod runtime;

pub use image::{Content, FileEntry, Image, ImageBuilder, Layer, NodeSpec};
pub use registry::{DeployReport, DeploymentModel, Registry};
pub use runtime::{Container, ContainerRuntime, EngineKind};
