//! Container images: ordered layers of file entries.
//!
//! Layers materialize in two ways: flattened into one filesystem (the
//! legacy path, still used as the oracle in equivalence tests) or **one
//! filesystem per layer** ([`Layer::materialize_into`]) so the runtime can
//! stack them read-only under a per-container `OverlayFs` and share them
//! across every container of the image.

use cntr_fs::{Filesystem, FsContext, MemFs};
use cntr_overlay::BlobHandle;
use cntr_types::{FileType, Ino, Mode, OpenFlags, SysResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// File content specification.
///
/// Large synthetic files use [`Content::Sparse`] so a 500 MB "binary"
/// costs no real memory: the size is metadata, reads return zeroes.
/// Real payloads live in a content-addressed blob store and are referenced
/// by a [`Content::Blob`] handle — the bytes are not inlined in the image
/// manifest, and identical content across layers and images is stored once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Literal bytes (small configs, scripts).
    Bytes(Vec<u8>),
    /// `size` bytes of zeroes, stored sparsely.
    Sparse(u64),
    /// Content-addressed data in a shared `BlobStore`.
    Blob(BlobHandle),
}

impl Content {
    /// Logical size in bytes. Blob content reports its handle's length —
    /// never the physically stored (deduplicated) size, so sparse and
    /// shared files keep their apparent size everywhere this is summed.
    pub fn len(&self) -> u64 {
        match self {
            Content::Bytes(b) => b.len() as u64,
            Content::Sparse(n) => *n,
            Content::Blob(h) => h.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What one image entry creates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// A directory.
    Dir {
        /// Permissions.
        mode: Mode,
    },
    /// A regular file.
    File {
        /// Permissions (executables carry the x bits).
        mode: Mode,
        /// Content.
        content: Content,
        /// Paths of shared libraries this binary needs (Docker Slim's
        /// static analysis follows these).
        deps: Vec<String>,
    },
    /// A symbolic link.
    Symlink {
        /// Link target.
        target: String,
    },
}

/// One path in a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Absolute path inside the image.
    pub path: String,
    /// What to create there.
    pub node: NodeSpec,
}

/// One image layer: an ordered set of entries (later layers win).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Content-address-ish identity (shared base layers deduplicate in the
    /// registry).
    pub id: String,
    /// The files.
    pub entries: Vec<FileEntry>,
}

impl Layer {
    /// Total logical bytes in this layer.
    pub fn size_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match &e.node {
                NodeSpec::File { content, .. } => content.len(),
                _ => 0,
            })
            .sum()
    }
}

/// Image-level configuration (a slice of the OCI config).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImageConfig {
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Path of the entrypoint binary.
    pub entrypoint: String,
    /// Working directory.
    pub workdir: String,
}

/// A container image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `"mysql"`.
    pub name: String,
    /// Tag, e.g. `"8.0"`.
    pub tag: String,
    /// Ordered layers, base first.
    pub layers: Vec<Layer>,
    /// Runtime configuration.
    pub config: ImageConfig,
}

impl Image {
    /// `name:tag`.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }

    /// Total logical size across layers.
    pub fn size_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::size_bytes).sum()
    }

    /// Every file entry, in application order (base layer first).
    pub fn all_entries(&self) -> impl Iterator<Item = &FileEntry> {
        self.layers.iter().flat_map(|l| l.entries.iter())
    }

    /// The effective file set after layering (later layers shadow earlier
    /// ones at the same path).
    pub fn effective_files(&self) -> BTreeMap<&str, &NodeSpec> {
        let mut map = BTreeMap::new();
        for e in self.all_entries() {
            map.insert(e.path.as_str(), &e.node);
        }
        map
    }

    /// Looks up one effective entry.
    pub fn entry(&self, path: &str) -> Option<&NodeSpec> {
        self.effective_files().get(path).copied()
    }

    /// Materializes the image **flattened** into a fresh rootfs (the
    /// pre-overlay representation; still the oracle for the overlay
    /// equivalence property tests).
    ///
    /// Parent directories are created implicitly; `/proc`, `/dev`, `/etc`
    /// and `/tmp` always exist so the runtime can mount over them.
    pub fn materialize(&self, fs: &MemFs) -> SysResult<()> {
        let ctx = FsContext::root();
        for dir in ROOTFS_SKELETON {
            mkdir_p(fs, dir, &ctx)?;
        }
        for e in self.all_entries() {
            apply_entry(fs, e, &ctx)?;
        }
        Ok(())
    }
}

/// Directories every container rootfs must have so the runtime can mount
/// over them (`/proc`, `/dev`) and CNTR can bind under them
/// (`/var/lib/cntr`).
pub const ROOTFS_SKELETON: &[&str] = &[
    "/proc",
    "/dev",
    "/etc",
    "/tmp",
    "/var",
    "/var/lib",
    "/var/lib/cntr",
];

impl Layer {
    /// Content digest over everything that affects materialization (paths,
    /// node kinds, modes, data identity, symlink targets, deps). The
    /// runtime's layer cache keys on this **in addition to the id**, so an
    /// id reused across images with different content can never serve the
    /// wrong rootfs.
    pub fn content_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for e in &self.entries {
            e.path.hash(&mut h);
            match &e.node {
                NodeSpec::Dir { mode } => {
                    0u8.hash(&mut h);
                    mode.bits().hash(&mut h);
                }
                NodeSpec::File {
                    mode,
                    content,
                    deps,
                } => {
                    1u8.hash(&mut h);
                    mode.bits().hash(&mut h);
                    deps.hash(&mut h);
                    match content {
                        Content::Bytes(b) => {
                            0u8.hash(&mut h);
                            b.hash(&mut h);
                        }
                        Content::Sparse(n) => {
                            1u8.hash(&mut h);
                            n.hash(&mut h);
                        }
                        Content::Blob(handle) => {
                            2u8.hash(&mut h);
                            handle.len().hash(&mut h);
                            handle.chunks().hash(&mut h);
                        }
                    }
                }
                NodeSpec::Symlink { target } => {
                    2u8.hash(&mut h);
                    target.hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Materializes **this layer alone** into `fs` — the read-only lower
    /// filesystem the runtime shares across all containers of the image.
    /// Parent directories are created implicitly (as the directory entries
    /// of an OCI layer tar would); shadowing across layers is the
    /// overlay's job, not performed here.
    pub fn materialize_into(&self, fs: &dyn Filesystem) -> SysResult<()> {
        let ctx = FsContext::root();
        for e in &self.entries {
            apply_entry(fs, e, &ctx)?;
        }
        Ok(())
    }
}

/// Creates one image entry (and its parent directories) in `fs`, replacing
/// an existing entry at the same path.
fn apply_entry(fs: &dyn Filesystem, e: &FileEntry, ctx: &FsContext) -> SysResult<()> {
    match &e.node {
        NodeSpec::Dir { mode } => {
            mkdir_p(fs, &e.path, ctx)?;
            if let Ok((parent, name)) = split_parent(&e.path) {
                let pino = resolve_dir(fs, parent)?;
                if let Ok(st) = fs.lookup(pino, name) {
                    let _ = fs.setattr(st.ino, &cntr_types::SetAttr::chmod(*mode), ctx);
                }
            }
        }
        NodeSpec::File { mode, content, .. } => {
            let (parent, name) = split_parent(&e.path)?;
            mkdir_p(fs, parent, ctx)?;
            let pino = resolve_dir(fs, parent)?;
            // Later entries replace earlier files at the same path.
            let _ = fs.unlink(pino, name);
            let st = fs.mknod(pino, name, FileType::Regular, *mode, 0, ctx)?;
            write_content(fs, st.ino, content, ctx)?;
            // Restore the mode: writes strip setuid/setgid.
            fs.setattr(st.ino, &cntr_types::SetAttr::chmod(*mode), ctx)?;
        }
        NodeSpec::Symlink { target } => {
            let (parent, name) = split_parent(&e.path)?;
            mkdir_p(fs, parent, ctx)?;
            let pino = resolve_dir(fs, parent)?;
            let _ = fs.unlink(pino, name);
            fs.symlink(pino, name, target, ctx)?;
        }
    }
    Ok(())
}

/// Writes a [`Content`] into a freshly created file.
///
/// Sparse content is a bare truncate (no pages are allocated), and blob
/// content is streamed chunk-wise — on a blob-backed filesystem each chunk
/// write re-addresses into the shared store and degenerates to a refcount
/// bump, so materializing a layer never duplicates bytes the store already
/// holds.
fn write_content(
    fs: &dyn Filesystem,
    ino: Ino,
    content: &Content,
    ctx: &FsContext,
) -> SysResult<()> {
    match content {
        Content::Bytes(b) if !b.is_empty() => {
            let fh = fs.open(ino, OpenFlags::WRONLY)?;
            fs.write(ino, fh, 0, b)?;
            fs.release(ino, fh)?;
        }
        Content::Bytes(_) => {}
        Content::Sparse(n) => {
            fs.setattr(ino, &cntr_types::SetAttr::truncate(*n), ctx)?;
        }
        Content::Blob(h) => {
            let fh = fs.open(ino, OpenFlags::WRONLY)?;
            for &(page, id) in h.chunks() {
                let bytes = h.store().chunk(id);
                let off = page * cntr_overlay::blob::CHUNK_SIZE as u64;
                let end = (off + bytes.len() as u64).min(h.len());
                let take = (end.saturating_sub(off)) as usize;
                if take > 0 {
                    fs.write(ino, fh, off, &bytes[..take])?;
                }
            }
            fs.release(ino, fh)?;
            // Holes and a sparse tail are restored by sizing the file last.
            fs.setattr(ino, &cntr_types::SetAttr::truncate(h.len()), ctx)?;
        }
    }
    Ok(())
}

fn split_parent(path: &str) -> SysResult<(&str, &str)> {
    let path = path.trim_end_matches('/');
    match path.rsplit_once('/') {
        Some(("", name)) => Ok(("/", name)),
        Some((dir, name)) => Ok((dir, name)),
        None => Err(cntr_types::Errno::EINVAL),
    }
}

/// Resolves an absolute directory path component-wise.
pub fn resolve_dir(fs: &dyn Filesystem, path: &str) -> SysResult<Ino> {
    let mut ino = Ino::ROOT;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        ino = fs.lookup(ino, comp)?.ino;
    }
    Ok(ino)
}

/// Creates a directory chain (`mkdir -p`).
pub fn mkdir_p(fs: &dyn Filesystem, path: &str, ctx: &FsContext) -> SysResult<()> {
    let mut ino = Ino::ROOT;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        ino = match fs.lookup(ino, comp) {
            Ok(st) => st.ino,
            Err(cntr_types::Errno::ENOENT) => fs.mkdir(ino, comp, Mode::RWXR_XR_X, ctx)?.ino,
            Err(e) => return Err(e),
        };
    }
    Ok(())
}

/// Fluent image construction.
pub struct ImageBuilder {
    image: Image,
    current: Layer,
}

impl ImageBuilder {
    /// Starts an image `name:tag` with one open layer.
    pub fn new(name: &str, tag: &str) -> ImageBuilder {
        ImageBuilder {
            image: Image {
                name: name.to_string(),
                tag: tag.to_string(),
                layers: Vec::new(),
                config: ImageConfig::default(),
            },
            current: Layer {
                id: format!("{name}-{tag}-l0"),
                entries: Vec::new(),
            },
        }
    }

    /// Seals the current layer and opens a new one with the given id.
    /// Layers with equal ids deduplicate in the registry.
    #[must_use]
    pub fn layer(mut self, id: &str) -> ImageBuilder {
        if !self.current.entries.is_empty() {
            self.image.layers.push(self.current);
        }
        self.current = Layer {
            id: id.to_string(),
            entries: Vec::new(),
        };
        self
    }

    /// Adds a directory.
    #[must_use]
    pub fn dir(mut self, path: &str) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::Dir {
                mode: Mode::RWXR_XR_X,
            },
        });
        self
    }

    /// Adds a sparse (size-only) regular file.
    #[must_use]
    pub fn file(mut self, path: &str, size: u64) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::File {
                mode: Mode::RW_R__R__,
                content: Content::Sparse(size),
                deps: Vec::new(),
            },
        });
        self
    }

    /// Adds an executable with a dependency closure.
    #[must_use]
    pub fn binary(mut self, path: &str, size: u64, deps: &[&str]) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::File {
                mode: Mode::RWXR_XR_X,
                content: Content::Sparse(size),
                deps: deps.iter().map(|s| s.to_string()).collect(),
            },
        });
        self
    }

    /// Adds a file with literal bytes (configs).
    #[must_use]
    pub fn text(mut self, path: &str, content: &str) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::File {
                mode: Mode::RW_R__R__,
                content: Content::Bytes(content.as_bytes().to_vec()),
                deps: Vec::new(),
            },
        });
        self
    }

    /// Adds a file whose data lives in a content-addressed blob store.
    /// Identical payloads across layers and images share physical chunks.
    #[must_use]
    pub fn blob(mut self, path: &str, content: BlobHandle) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::File {
                mode: Mode::RW_R__R__,
                content: Content::Blob(content),
                deps: Vec::new(),
            },
        });
        self
    }

    /// Adds a symlink.
    #[must_use]
    pub fn symlink(mut self, path: &str, target: &str) -> ImageBuilder {
        self.current.entries.push(FileEntry {
            path: path.to_string(),
            node: NodeSpec::Symlink {
                target: target.to_string(),
            },
        });
        self
    }

    /// Sets an environment variable.
    #[must_use]
    pub fn env(mut self, key: &str, value: &str) -> ImageBuilder {
        self.image
            .config
            .env
            .insert(key.to_string(), value.to_string());
        self
    }

    /// Sets the entrypoint binary path.
    #[must_use]
    pub fn entrypoint(mut self, path: &str) -> ImageBuilder {
        self.image.config.entrypoint = path.to_string();
        self
    }

    /// Sets the working directory.
    #[must_use]
    pub fn workdir(mut self, path: &str) -> ImageBuilder {
        self.image.config.workdir = path.to_string();
        self
    }

    /// Finishes the image.
    pub fn build(mut self) -> Arc<Image> {
        if !self.current.entries.is_empty() {
            self.image.layers.push(self.current);
        }
        Arc::new(self.image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_types::{DevId, SimClock};

    fn sample() -> Arc<Image> {
        ImageBuilder::new("mysql", "8.0")
            .layer("base-debian")
            .dir("/usr/bin")
            .binary("/bin/sh", 100_000, &["/lib/libc.so"])
            .file("/lib/libc.so", 2_000_000)
            .layer("mysql-app")
            .binary("/usr/sbin/mysqld", 50_000_000, &["/lib/libc.so"])
            .text("/etc/my.cnf", "[mysqld]\ndatadir=/var/lib/mysql\n")
            .symlink("/usr/bin/mysqld", "/usr/sbin/mysqld")
            .env("MYSQL_ROOT_PASSWORD", "secret")
            .entrypoint("/usr/sbin/mysqld")
            .build()
    }

    #[test]
    fn builder_structure() {
        let img = sample();
        assert_eq!(img.reference(), "mysql:8.0");
        assert_eq!(img.layers.len(), 2);
        assert_eq!(img.layers[0].id, "base-debian");
        assert_eq!(img.size_bytes(), 100_000 + 2_000_000 + 50_000_000 + 32);
        assert!(img.entry("/usr/sbin/mysqld").is_some());
    }

    #[test]
    fn later_layers_shadow_earlier() {
        let img = ImageBuilder::new("t", "1")
            .layer("a")
            .text("/etc/conf", "old")
            .layer("b")
            .text("/etc/conf", "new")
            .build();
        match img.entry("/etc/conf").unwrap() {
            NodeSpec::File { content, .. } => {
                assert_eq!(content, &Content::Bytes(b"new".to_vec()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn materialize_creates_tree() {
        let img = sample();
        let fs = memfs(DevId(5), SimClock::new());
        img.materialize(&fs).unwrap();
        let bin = resolve_dir(fs.as_ref(), "/usr/sbin").unwrap();
        let st = fs.lookup(bin, "mysqld").unwrap();
        assert_eq!(st.size, 50_000_000);
        assert!(st.mode.bits() & 0o111 != 0, "binary is executable");
        // Sparse: no real pages allocated for the 50 MB binary.
        assert!(fs.used_bytes() < 1 << 20);
        // Config has literal content.
        let etc = resolve_dir(fs.as_ref(), "/etc").unwrap();
        let conf = fs.lookup(etc, "my.cnf").unwrap();
        assert_eq!(conf.size, 32);
        // Standard mountpoint dirs exist.
        assert!(resolve_dir(fs.as_ref(), "/proc").is_ok());
        assert!(resolve_dir(fs.as_ref(), "/dev").is_ok());
        assert!(resolve_dir(fs.as_ref(), "/var/lib/cntr").is_ok());
    }

    #[test]
    fn materialize_overwrites_shadowed_files() {
        let img = ImageBuilder::new("t", "1")
            .layer("a")
            .text("/etc/conf", "old-longer-content")
            .layer("b")
            .text("/etc/conf", "new")
            .build();
        let fs = memfs(DevId(5), SimClock::new());
        img.materialize(&fs).unwrap();
        let etc = resolve_dir(fs.as_ref(), "/etc").unwrap();
        assert_eq!(fs.lookup(etc, "conf").unwrap().size, 3);
    }

    #[test]
    fn blob_content_reports_length_and_dedups_across_images() {
        use cntr_overlay::{blobfs, BlobStore};
        let store = BlobStore::new();
        // 3 chunks of data followed by a 2-chunk hole: the handle keeps the
        // sparse tail as a hole, and `len` reports the logical size.
        let mut payload = vec![0u8; 5 * 4096];
        for (i, b) in payload.iter_mut().take(3 * 4096).enumerate() {
            // Mix in the chunk number so the three chunks are distinct.
            *b = (i * 17 + i / 4096 * 31) as u8;
        }
        let handle = store.ingest(&payload);
        assert_eq!(handle.len(), 5 * 4096);
        assert!(!handle.is_empty());

        let img_a = ImageBuilder::new("a", "1")
            .layer("a-data")
            .blob("/opt/data.bin", handle.clone())
            .build();
        let img_b = ImageBuilder::new("b", "1")
            .layer("b-data")
            .blob("/srv/copy.bin", handle)
            .build();
        // Content::len goes through the handle, so layer accounting sees
        // the logical size.
        assert_eq!(img_a.size_bytes(), 5 * 4096);

        // Materializing both images into blob-backed layers stores the
        // shared chunks once.
        let clock = SimClock::new();
        let before = store.stats().physical_bytes;
        assert_eq!(before, 3 * 4096, "ingest stored only the data chunks");
        for (img, dev) in [(&img_a, 101), (&img_b, 102)] {
            let fs = blobfs(DevId(dev), clock.clone(), store.clone());
            img.layers[0].materialize_into(fs.as_ref()).unwrap();
            let root = resolve_dir(fs.as_ref(), "/").unwrap();
            let dir = fs.readdir(root).unwrap();
            assert_eq!(dir.len(), 1);
        }
        assert_eq!(
            store.stats().physical_bytes,
            before,
            "materializing blob content is refcount bumps, not copies"
        );
        // The materialized file reads back with the hole intact.
        let fs = blobfs(DevId(103), clock, store.clone());
        img_a.layers[0].materialize_into(fs.as_ref()).unwrap();
        let opt = resolve_dir(fs.as_ref(), "/opt").unwrap();
        let st = fs.lookup(opt, "data.bin").unwrap();
        assert_eq!(st.size, 5 * 4096);
        let fh = fs.open(st.ino, OpenFlags::RDONLY).unwrap();
        let mut buf = vec![1u8; 4096];
        fs.read(st.ino, fh, 4 * 4096, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "sparse tail reads zero");
    }
}
