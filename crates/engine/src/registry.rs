//! The image registry and the deployment-time model.
//!
//! The paper's motivation (§1) rests on deployment cost: "downloading
//! container images account\[s\] for 92% of the deployment time", so every
//! byte shaved off an image translates into startup latency. The registry
//! tracks which layers a host already has (Docker's layer cache) and
//! charges virtual time for the rest.

use crate::image::Image;
use cntr_types::{Errno, SysResult, Timespec};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Network/IO parameters of a deployment.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentModel {
    /// Registry download bandwidth (bytes/second).
    pub bandwidth_bps: u64,
    /// Per-layer round trip (manifest + blob request).
    pub layer_rtt_ns: u64,
    /// Fixed container start cost after the image is local (namespace
    /// setup, runtime init).
    pub start_ns: u64,
}

impl DeploymentModel {
    /// A typical datacenter link: 1 Gbit/s, 20 ms per layer fetch, 300 ms
    /// runtime start.
    pub const fn datacenter() -> DeploymentModel {
        DeploymentModel {
            bandwidth_bps: 125_000_000,
            layer_rtt_ns: 20_000_000,
            start_ns: 300_000_000,
        }
    }
}

/// What one deployment cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployReport {
    /// Bytes actually transferred (missing layers only).
    pub bytes_pulled: u64,
    /// Layers transferred.
    pub layers_pulled: usize,
    /// Layers served from the local cache.
    pub layers_cached: usize,
    /// Total virtual time: download + start.
    pub total_time: Timespec,
    /// Download portion.
    pub download_time: Timespec,
}

impl DeployReport {
    /// Fraction of deployment time spent downloading (the paper's 92%).
    pub fn download_fraction(&self) -> f64 {
        if self.total_time.as_nanos() == 0 {
            return 0.0;
        }
        self.download_time.as_nanos() as f64 / self.total_time.as_nanos() as f64
    }
}

/// An image registry plus per-host layer caches.
pub struct Registry {
    images: Mutex<HashMap<String, Arc<Image>>>,
    /// Layers already present per host.
    host_layers: Mutex<HashMap<String, HashSet<String>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            images: Mutex::new_class("engine.registry.images", HashMap::new()),
            host_layers: Mutex::new_class("engine.registry.host_layers", HashMap::new()),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    /// Publishes an image under `name:tag`.
    pub fn push(&self, image: Arc<Image>) {
        self.images.lock().insert(image.reference(), image);
    }

    /// Fetches an image manifest.
    pub fn get(&self, reference: &str) -> SysResult<Arc<Image>> {
        self.images
            .lock()
            .get(reference)
            .cloned()
            .ok_or(Errno::ENOENT)
    }

    /// Lists published references (sorted).
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.images.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Simulates pulling `reference` onto `host`, reusing cached layers.
    pub fn deploy(
        &self,
        host: &str,
        reference: &str,
        model: DeploymentModel,
    ) -> SysResult<DeployReport> {
        let image = self.get(reference)?;
        let mut hosts = self.host_layers.lock();
        let cache = hosts.entry(host.to_string()).or_default();
        let mut bytes = 0u64;
        let mut pulled = 0usize;
        let mut cached = 0usize;
        for layer in &image.layers {
            if cache.contains(&layer.id) {
                cached += 1;
            } else {
                bytes += layer.size_bytes();
                pulled += 1;
                cache.insert(layer.id.clone());
            }
        }
        let download_ns = pulled as u64 * model.layer_rtt_ns
            + bytes.saturating_mul(1_000_000_000) / model.bandwidth_bps;
        let total_ns = download_ns + model.start_ns;
        Ok(DeployReport {
            bytes_pulled: bytes,
            layers_pulled: pulled,
            layers_cached: cached,
            total_time: Timespec::from_nanos(total_ns),
            download_time: Timespec::from_nanos(download_ns),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;

    fn fat_image() -> Arc<Image> {
        ImageBuilder::new("app", "fat")
            .layer("base")
            .file("/lib/libc.so", 2_000_000)
            .layer("tools")
            .binary("/usr/bin/gdb", 80_000_000, &[])
            .binary("/usr/bin/strace", 1_500_000, &[])
            .layer("app")
            .binary("/usr/bin/app", 10_000_000, &[])
            .build()
    }

    fn slim_image() -> Arc<Image> {
        ImageBuilder::new("app", "slim")
            .layer("base")
            .file("/lib/libc.so", 2_000_000)
            .layer("app-slim")
            .binary("/usr/bin/app", 10_000_000, &[])
            .build()
    }

    #[test]
    fn push_get_list() {
        let r = Registry::new();
        r.push(fat_image());
        r.push(slim_image());
        assert_eq!(r.list(), vec!["app:fat", "app:slim"]);
        assert!(r.get("app:fat").is_ok());
        assert_eq!(r.get("nope:latest").map(|_| ()), Err(Errno::ENOENT));
    }

    #[test]
    fn slim_deploys_faster_than_fat() {
        let r = Registry::new();
        r.push(fat_image());
        r.push(slim_image());
        let m = DeploymentModel::datacenter();
        let fat = r.deploy("host-a", "app:fat", m).unwrap();
        let slim = r.deploy("host-b", "app:slim", m).unwrap();
        assert!(slim.total_time < fat.total_time);
        assert!(fat.bytes_pulled > slim.bytes_pulled);
        // Downloads dominate deployment (the paper's 92% motivation).
        assert!(fat.download_fraction() > 0.5, "{}", fat.download_fraction());
    }

    #[test]
    fn layer_cache_deduplicates() {
        let r = Registry::new();
        r.push(fat_image());
        r.push(slim_image());
        let m = DeploymentModel::datacenter();
        let first = r.deploy("host", "app:fat", m).unwrap();
        assert_eq!(first.layers_pulled, 3);
        // The slim image shares the base layer: only the app layer moves...
        let second = r.deploy("host", "app:slim", m).unwrap();
        assert_eq!(second.layers_cached, 1, "base layer reused");
        assert_eq!(second.layers_pulled, 1);
        // Re-deploying is nearly free.
        let third = r.deploy("host", "app:fat", m).unwrap();
        assert_eq!(third.bytes_pulled, 0);
        assert_eq!(third.layers_cached, 3);
    }
}
