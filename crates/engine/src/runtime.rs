//! Container lifecycle and the four engine flavours.
//!
//! `run()` performs what Docker/LXC/rkt/systemd-nspawn do on the real
//! kernel: materialize a rootfs, fork, unshare all seven namespaces, mark
//! mounts private, mount the rootfs plus `/proc` and `/dev`, chroot, set
//! the image environment, confine credentials (Docker's default bounding
//! set + an AppArmor profile), and hand the pid back. CNTR only ever needs
//! the *name → pid* mapping from an engine (paper §3.2.1) — everything
//! else it reads from the kernel.

use crate::image::{mkdir_p as fs_mkdir_p, Image, Layer, ROOTFS_SKELETON};
use crate::registry::Registry;
use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_kernel::cred::Credentials;
use cntr_kernel::devfs;
use cntr_kernel::{CacheMode, CgroupPath, Kernel, MountFlags, NamespaceKind};
use cntr_overlay::{blobfs, BlobFs, BlobStore, OverlayFs};
use cntr_types::{DevId, Errno, Mode, Pid, SysResult};
use obs::{LazyCounter, LazyGauge, LazyHistogram, Subsystem, Timed};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Lifecycle observability, aggregated over every runtime instance. Spawn
// covers the whole `run()` path (rootfs assembly through creds); reap
// covers `stop()` (exit, reap, cgroup and bookkeeping teardown).
static OBS_SPAWNS: LazyCounter = LazyCounter::new(Subsystem::Engine, "engine.spawn.count");
static OBS_SPAWN_NS: LazyHistogram =
    LazyHistogram::new(Subsystem::Engine, "engine.spawn.latency-ns");
static OBS_REAPS: LazyCounter = LazyCounter::new(Subsystem::Engine, "engine.reap.count");
static OBS_REAP_NS: LazyHistogram = LazyHistogram::new(Subsystem::Engine, "engine.reap.latency-ns");
static OBS_RUNNING: LazyGauge = LazyGauge::new(Subsystem::Engine, "engine.containers.running");

// Device-number allocator for every filesystem an engine assembles
// (lowers, uppers, overlay roots). Process-global, not per-runtime: the
// kernel's socket-node registry keys on `(fs_id, ino)`, so two engines
// on one machine handing out the same `DevId` would alias unrelated
// inodes — with the four-engine matrix, container N of one engine could
// steal Unix-socket connections bound in container N of another.
static NEXT_DEV: AtomicU64 = AtomicU64::new(1000);

/// The supported container engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Docker: containers named, ids are 64 hex chars.
    Docker,
    /// LXC: containers are plain names.
    Lxc,
    /// rkt: pod UUIDs.
    Rkt,
    /// systemd-nspawn: machine names.
    SystemdNspawn,
}

impl EngineKind {
    /// Every supported engine, in matrix order — the four flavours the
    /// paper's evaluation covers.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Docker,
        EngineKind::Lxc,
        EngineKind::Rkt,
        EngineKind::SystemdNspawn,
    ];

    /// The engine's name as a path component (`/var/lib/<engine>`).
    pub const fn dir_name(self) -> &'static str {
        match self {
            EngineKind::Docker => "docker",
            EngineKind::Lxc => "lxc",
            EngineKind::Rkt => "rkt",
            EngineKind::SystemdNspawn => "machines",
        }
    }

    /// Formats an engine-specific container id from a sequence number —
    /// the per-engine difference CNTR has to understand (~70 LoC each in
    /// the paper's implementation).
    pub fn format_id(self, seq: u64, name: &str) -> String {
        match self {
            EngineKind::Docker => {
                // 64 hex chars derived from the sequence number.
                let mut id = format!("{seq:016x}");
                while id.len() < 64 {
                    let next = format!(
                        "{:016x}",
                        seq.wrapping_mul(0x9E3779B97F4A7C15) ^ id.len() as u64
                    );
                    id.push_str(&next);
                }
                id.truncate(64);
                id
            }
            EngineKind::Lxc => name.to_string(),
            EngineKind::Rkt => format!(
                "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                seq,
                seq & 0xFFFF,
                0x4000 | (seq & 0xFFF),
                0x8000 | (seq & 0xFFF),
                seq
            ),
            EngineKind::SystemdNspawn => format!("{name}.machine"),
        }
    }
}

/// A running (or exited) container.
#[derive(Debug, Clone)]
pub struct Container {
    /// Engine-specific id.
    pub id: String,
    /// User-supplied name.
    pub name: String,
    /// Image reference it was created from.
    pub image: String,
    /// Pid of the main process.
    pub pid: Pid,
    /// Cgroup the container runs in.
    pub cgroup: String,
    /// Engine managing it.
    pub engine: EngineKind,
}

/// A container engine instance over a simulated kernel.
///
/// Storage model: every image layer materializes **once** as a shared
/// read-only [`BlobFs`] (content-addressed against the runtime's
/// [`BlobStore`]); each container mounts a cheap [`OverlayFs`] — those
/// shared lowers plus a private writable upper — so N containers of one
/// image cost O(upper writes), not O(N × image size).
pub struct ContainerRuntime {
    kind: EngineKind,
    kernel: Kernel,
    registry: Arc<Registry>,
    containers: Mutex<HashMap<String, Container>>,
    store: Arc<BlobStore>,
    /// `(layer id, content digest)` → shared read-only lower filesystem.
    layers: Mutex<HashMap<(String, u64), Arc<BlobFs>>>,
    /// Container name → its overlay root (for slimming and diagnostics).
    overlays: Mutex<HashMap<String, Arc<OverlayFs>>>,
    next_seq: AtomicU64,
}

impl ContainerRuntime {
    /// Creates an engine of `kind` on `kernel`, pulling from `registry`,
    /// with a private blob store.
    pub fn new(kind: EngineKind, kernel: Kernel, registry: Arc<Registry>) -> ContainerRuntime {
        Self::with_store(kind, kernel, registry, BlobStore::new())
    }

    /// Creates an engine sharing `store` — engines on one machine share
    /// one store so identical layers dedup across engine flavours too.
    pub fn with_store(
        kind: EngineKind,
        kernel: Kernel,
        registry: Arc<Registry>,
        store: Arc<BlobStore>,
    ) -> ContainerRuntime {
        ContainerRuntime {
            kind,
            kernel,
            registry,
            containers: Mutex::new_class("engine.containers", HashMap::new()),
            store,
            layers: Mutex::new_class("engine.layers", HashMap::new()),
            overlays: Mutex::new_class("engine.overlays", HashMap::new()),
            next_seq: AtomicU64::new(1),
        }
    }

    /// The full engine matrix on one machine: one runtime per
    /// [`EngineKind`], all driving `kernel` and pulling from `registry`
    /// through a single shared blob store (identical layers dedup
    /// across engine flavours, as on a real host).
    pub fn matrix(kernel: Kernel, registry: Arc<Registry>) -> Vec<ContainerRuntime> {
        let store = BlobStore::new();
        EngineKind::ALL
            .iter()
            .map(|&kind| {
                ContainerRuntime::with_store(
                    kind,
                    kernel.clone(),
                    Arc::clone(&registry),
                    Arc::clone(&store),
                )
            })
            .collect()
    }

    /// The engine flavour.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The kernel this engine drives.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The content-addressed store backing every layer and upper.
    pub fn blob_store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// The overlay root filesystem of a running container.
    pub fn overlay_of(&self, name: &str) -> SysResult<Arc<OverlayFs>> {
        self.overlays.lock().get(name).cloned().ok_or(Errno::ESRCH)
    }

    /// Returns the shared read-only filesystem of `layer`, materializing
    /// it on first use. All containers (of all images) referencing the
    /// same layer content share one instance. The lock is held across
    /// materialization so a concurrent first use neither duplicates the
    /// work nor races the insertion.
    fn lower_for(&self, layer: &Layer) -> SysResult<Arc<BlobFs>> {
        let key = (layer.id.clone(), layer.content_digest());
        let mut layers = self.layers.lock();
        if let Some(fs) = layers.get(&key) {
            return Ok(Arc::clone(fs));
        }
        let dev = DevId(NEXT_DEV.fetch_add(1, Ordering::Relaxed));
        let fs = blobfs(dev, self.kernel.clock().clone(), Arc::clone(&self.store));
        layer.materialize_into(fs.as_ref())?;
        layers.insert(key, Arc::clone(&fs));
        Ok(fs)
    }

    /// Assembles a fresh overlay rootfs for one container of `image`:
    /// shared lowers (topmost layer first), private blob-backed upper.
    fn overlay_rootfs(&self, image: &Image) -> SysResult<Arc<OverlayFs>> {
        let mut lowers: Vec<Arc<dyn Filesystem>> = Vec::with_capacity(image.layers.len());
        for layer in image.layers.iter().rev() {
            lowers.push(self.lower_for(layer)?);
        }
        let clock = self.kernel.clock().clone();
        let upper = blobfs(
            DevId(NEXT_DEV.fetch_add(1, Ordering::Relaxed)),
            clock,
            Arc::clone(&self.store),
        );
        let rootfs = OverlayFs::new(
            DevId(NEXT_DEV.fetch_add(1, Ordering::Relaxed)),
            lowers,
            upper,
        );
        // Mountpoint/runtime skeleton lives in the upper layer.
        let ctx = FsContext::root();
        for dir in ROOTFS_SKELETON {
            fs_mkdir_p(rootfs.as_ref(), dir, &ctx)?;
        }
        Ok(rootfs)
    }

    /// Creates and starts a container from `image_ref`.
    pub fn run(&self, name: &str, image_ref: &str) -> SysResult<Container> {
        self.run_from(Pid::INIT, name, image_ref)
    }

    /// Starts a container **inside** an existing container (nested
    /// container-in-container): the child forks from the parent
    /// container's init and its rootfs/bookkeeping live in the parent's
    /// mount namespace.
    pub fn run_nested(&self, parent: &str, name: &str, image_ref: &str) -> SysResult<Container> {
        let parent_pid = self.resolve(parent)?;
        self.run_from(parent_pid, name, image_ref)
    }

    fn run_from(&self, parent_pid: Pid, name: &str, image_ref: &str) -> SysResult<Container> {
        let _timed = Timed::new(OBS_SPAWN_NS.get());
        if self.containers.lock().contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let image = self.registry.get(image_ref)?;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = self.kind.format_id(seq, name);
        let k = &self.kernel;

        // Assemble the copy-on-write rootfs over shared image layers.
        let rootfs = self.overlay_rootfs(&image)?;
        let dev = DevId(NEXT_DEV.fetch_add(1, Ordering::Relaxed));

        // Host-side bookkeeping directory (in the parent's namespace).
        let host_dir = format!("/var/lib/{}/{}", self.kind.dir_name(), id);
        mkdir_p(k, parent_pid, &host_dir)?;

        // Fork and isolate. The setup phase (unshare, mounts, pivot_root)
        // needs full privileges even when the parent is a confined
        // container init — the nested-engine equivalent of running the
        // inner daemon privileged; the final `set_creds` below re-confines
        // the container to its bounding set.
        let pid = k.fork(parent_pid)?;
        k.set_creds(pid, Credentials::host_root())?;
        k.unshare(
            pid,
            &[
                NamespaceKind::Mount,
                NamespaceKind::Pid,
                NamespaceKind::Net,
                NamespaceKind::Ipc,
                NamespaceKind::Uts,
                NamespaceKind::Cgroup,
            ],
        )?;
        // Container runtimes mount everything private so host mounts do not
        // leak in and container mounts do not leak out (paper §2.3).
        k.make_rprivate(pid)?;
        k.mount_fs(
            pid,
            &host_dir,
            Arc::clone(&rootfs) as Arc<dyn Filesystem>,
            CacheMode::native(),
            MountFlags::default(),
        )?;
        k.pivot_root(pid, &host_dir)?;
        k.mount_procfs(pid, "/proc")?;
        devfs::mount_devfs(k, pid, "/dev", DevId(dev.0 + 500_000))?;

        // Cgroup: /<engine>/<id>.
        let engine_root = format!("/{}", self.kind.dir_name());
        let _ = k.cgroup_create(&engine_root);
        let cg = k.cgroup_create(&format!("{engine_root}/{id}"))?;
        k.cgroup_attach(pid, &cg)?;

        // Identity: container hostname, image env, entrypoint name,
        // confined credentials.
        let short: String = id.chars().take(12).collect();
        k.sethostname(pid, &short)?;
        let mut env = image.config.env.clone();
        env.entry("PATH".to_string())
            .or_insert_with(|| "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin".to_string());
        env.insert("HOSTNAME".to_string(), short);
        k.set_environ(pid, env)?;
        let entry_name = image
            .config
            .entrypoint
            .rsplit('/')
            .next()
            .unwrap_or("app")
            .to_string();
        k.set_name(pid, &entry_name)?;
        if !image.config.workdir.is_empty() {
            let _ = k.chdir(pid, &image.config.workdir);
        }
        let profile = format!("{}-default", self.kind.dir_name());
        k.set_creds(pid, Credentials::container_root(&profile))?;

        let container = Container {
            id: id.clone(),
            name: name.to_string(),
            image: image.reference(),
            pid,
            cgroup: cg.0.clone(),
            engine: self.kind,
        };
        self.containers
            .lock()
            .insert(name.to_string(), container.clone());
        self.overlays.lock().insert(name.to_string(), rootfs);
        OBS_SPAWNS.inc();
        OBS_RUNNING.inc();
        Ok(container)
    }

    /// Resolves a container *name or id* to its main pid — the only
    /// engine-specific operation CNTR needs.
    pub fn resolve(&self, name_or_id: &str) -> SysResult<Pid> {
        let containers = self.containers.lock();
        if let Some(c) = containers.get(name_or_id) {
            return Ok(c.pid);
        }
        containers
            .values()
            .find(|c| c.id == name_or_id || c.id.starts_with(name_or_id))
            .map(|c| c.pid)
            .ok_or(Errno::ESRCH)
    }

    /// Looks a container up by name.
    pub fn get(&self, name: &str) -> SysResult<Container> {
        self.containers
            .lock()
            .get(name)
            .cloned()
            .ok_or(Errno::ESRCH)
    }

    /// Lists containers (sorted by name).
    pub fn list(&self) -> Vec<Container> {
        let mut v: Vec<Container> = self.containers.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Stops and removes a container. Reaping the container's init is what
    /// actually frees its namespaces: the kernel's refcount-driven GC
    /// drops the mount table (and the rootfs `Arc` it pinned), the
    /// hostname, and any sockets bound inside — the engine only cleans up
    /// what it created *outside* the container: the cgroup node and the
    /// host-side bookkeeping directory. The shared lower layers stay
    /// cached for future containers; only the private upper is dropped.
    pub fn stop(&self, name: &str) -> SysResult<()> {
        let container = self.containers.lock().remove(name).ok_or(Errno::ESRCH)?;
        let _timed = Timed::new(OBS_REAP_NS.get());
        OBS_REAPS.inc();
        OBS_RUNNING.dec();
        self.overlays.lock().remove(name);
        self.kernel.exit(container.pid)?;
        self.kernel.reap(container.pid)?;
        // Purge the dead container from cgroup bookkeeping (members were
        // detached at exit; EBUSY only if someone attached a foreign pid).
        let _ = self
            .kernel
            .cgroup_remove(&CgroupPath(container.cgroup.clone()));
        // The bookkeeping dir lives in the *parent's* namespace — for a
        // nested container that namespace may already be gone; best-effort.
        let host_dir = format!("/var/lib/{}/{}", self.kind.dir_name(), container.id);
        let _ = self.kernel.rmdir(Pid::INIT, &host_dir);
        Ok(())
    }
}

fn mkdir_p(k: &Kernel, pid: Pid, path: &str) -> SysResult<()> {
    let mut cur = String::new();
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        cur.push('/');
        cur.push_str(comp);
        match k.mkdir(pid, &cur, Mode::RWXR_XR_X) {
            Ok(()) | Err(Errno::EEXIST) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Builds a host kernel suitable for container workloads: a tmpfs root with
/// the standard directory skeleton and mounted `/proc`.
pub fn boot_host(clock: cntr_types::SimClock) -> Kernel {
    boot_host_with(clock, cntr_kernel::kernel::KernelConfig::default())
}

/// [`boot_host`] with an explicit [`cntr_kernel::kernel::KernelConfig`] —
/// the memory-bound stress tests shrink `page_cache_limit` and flip
/// `background_writeback` through here.
pub fn boot_host_with(
    clock: cntr_types::SimClock,
    config: cntr_kernel::kernel::KernelConfig,
) -> Kernel {
    let root = memfs(DevId(1), clock.clone());
    let k = Kernel::with_clock(clock, root, CacheMode::native(), config);
    for d in [
        "/proc", "/dev", "/etc", "/var", "/var/lib", "/tmp", "/usr", "/usr/bin", "/run",
    ] {
        k.mkdir(Pid::INIT, d, Mode::RWXR_XR_X).expect("fresh root");
    }
    k.mount_procfs(Pid::INIT, "/proc").expect("fresh root");
    devfs::populate_dev(&k, Pid::INIT, "/dev").expect("fresh root");
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use cntr_types::{OpenFlags, SimClock};

    fn setup(kind: EngineKind) -> (ContainerRuntime, Kernel) {
        let clock = SimClock::new();
        let k = boot_host(clock);
        let registry = Registry::new();
        registry.push(
            ImageBuilder::new("mysql", "8.0")
                .layer("base")
                .binary("/bin/sh", 100_000, &[])
                .layer("app")
                .binary("/usr/sbin/mysqld", 5_000_000, &[])
                .text("/etc/my.cnf", "[mysqld]\n")
                .env("MYSQL_HOST", "db")
                .entrypoint("/usr/sbin/mysqld")
                .build(),
        );
        (ContainerRuntime::new(kind, k.clone(), registry), k)
    }

    #[test]
    fn run_isolates_and_populates() {
        let (rt, k) = setup(EngineKind::Docker);
        let c = rt.run("db", "mysql:8.0").unwrap();
        // Namespaces differ from the host in every unshared kind.
        let host_ns = k.proc_info(Pid::INIT).unwrap().ns;
        let cont_ns = k.proc_info(c.pid).unwrap().ns;
        assert!(host_ns.diff(&cont_ns).len() >= 6);
        // The container sees its image as /, with /proc and /dev mounted.
        assert!(k.stat(c.pid, "/usr/sbin/mysqld").unwrap().is_file());
        assert!(k.stat(c.pid, "/proc/1/status").is_ok());
        assert!(k.stat(c.pid, "/dev/null").is_ok());
        // The host does not see the container root at its own /.
        assert_eq!(k.stat(Pid::INIT, "/usr/sbin/mysqld"), Err(Errno::ENOENT));
        // Environment and identity applied.
        assert_eq!(
            k.getenv(c.pid, "MYSQL_HOST").unwrap().as_deref(),
            Some("db")
        );
        assert!(k.getenv(c.pid, "PATH").unwrap().is_some());
        let info = k.proc_info(c.pid).unwrap();
        assert_eq!(info.name, "mysqld");
        assert!(!info.creds.caps.has(cntr_types::Capability::SysAdmin));
        assert!(info.creds.lsm_profile.is_some());
        assert!(info.cgroup.0.starts_with("/docker/"));
    }

    #[test]
    fn container_writes_stay_inside() {
        let (rt, k) = setup(EngineKind::Lxc);
        let c = rt.run("web", "mysql:8.0").unwrap();
        let fd = k
            .open(c.pid, "/tmp/state", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(c.pid, fd, b"container data").unwrap();
        k.close(c.pid, fd).unwrap();
        assert!(k.stat(c.pid, "/tmp/state").unwrap().is_file());
        assert_eq!(k.stat(Pid::INIT, "/tmp/state"), Err(Errno::ENOENT));
    }

    #[test]
    fn id_formats_differ_per_engine() {
        let docker = EngineKind::Docker.format_id(1, "db");
        assert_eq!(docker.len(), 64);
        assert!(docker.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(EngineKind::Lxc.format_id(1, "db"), "db");
        let rkt = EngineKind::Rkt.format_id(1, "db");
        assert_eq!(rkt.split('-').count(), 5);
        assert_eq!(EngineKind::SystemdNspawn.format_id(1, "db"), "db.machine");
    }

    #[test]
    fn resolve_by_name_and_id_prefix() {
        let (rt, _) = setup(EngineKind::Docker);
        let c = rt.run("db", "mysql:8.0").unwrap();
        assert_eq!(rt.resolve("db").unwrap(), c.pid);
        assert_eq!(rt.resolve(&c.id).unwrap(), c.pid);
        assert_eq!(rt.resolve(&c.id[..12]).unwrap(), c.pid);
        assert_eq!(rt.resolve("ghost"), Err(Errno::ESRCH));
    }

    #[test]
    fn stop_removes_and_reaps() {
        let (rt, k) = setup(EngineKind::Rkt);
        let c = rt.run("tmp", "mysql:8.0").unwrap();
        assert!(k.is_alive(c.pid));
        rt.stop("tmp").unwrap();
        assert!(!k.is_alive(c.pid));
        assert_eq!(rt.resolve("tmp"), Err(Errno::ESRCH));
        assert_eq!(rt.stop("tmp"), Err(Errno::ESRCH));
        // Name can be reused.
        rt.run("tmp", "mysql:8.0").unwrap();
    }

    #[test]
    fn duplicate_name_rejected() {
        let (rt, _) = setup(EngineKind::SystemdNspawn);
        rt.run("a", "mysql:8.0").unwrap();
        assert_eq!(rt.run("a", "mysql:8.0").map(|_| ()), Err(Errno::EEXIST));
    }

    #[test]
    fn missing_image_is_enoent() {
        let (rt, _) = setup(EngineKind::Docker);
        assert_eq!(rt.run("x", "nope:1").map(|_| ()), Err(Errno::ENOENT));
    }
}
