//! Benchmark harness regenerating every table and figure of the CNTR paper.
//!
//! One binary per artifact:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig2_phoronix` | Figure 2 — relative Phoronix overheads |
//! | `fig3_optimizations` | Figure 3 — per-optimization ablations |
//! | `fig4_multithreading` | Figure 4 — throughput vs worker threads |
//! | `fig5_docker_slim` | Figure 5 + §5.3 — Top-50 size reductions |
//! | `tab_xfstests` | §5.1 — the 90/94 xfstests table |
//!
//! `cargo bench` additionally runs criterion microbenchmarks over the FUSE
//! request path and full figure regenerations on wall-clock time.
