//! Regenerates Figure 5 and the §5.3 statistics: Docker Slim on the Top-50.

use cntr_slim::corpus::{figure5_stats, run_figure5_detailed};

fn main() {
    let (reports, store_stats) = run_figure5_detailed();
    println!("Figure 5 — container size reduction, Top-50 images (docker-slim)");
    println!("{:-<66}", "");
    // Histogram in 10%-wide buckets, as the paper plots it.
    let mut buckets = [0u32; 10];
    for r in &reports {
        let b = (r.reduction_percent() / 10.0).floor().clamp(0.0, 9.0) as usize;
        buckets[b] += 1;
    }
    for (i, count) in buckets.iter().enumerate() {
        println!(
            "{:>3}-{:>3}% | {:<3} {}",
            i * 10,
            i * 10 + 10,
            count,
            "#".repeat(*count as usize)
        );
    }
    println!("{:-<66}", "");
    let stats = figure5_stats(&reports);
    println!(
        "mean reduction: {:.1}% (paper: 66.6%)\nimages below 10%: {} (paper: 6, the Go single-binary images)\nfraction reduced 60-97%: {:.0}% (paper: >75%)",
        stats.mean_reduction,
        stats.below_10,
        stats.frac_60_to_97 * 100.0
    );
    let mut sorted: Vec<_> = reports.iter().collect();
    sorted.sort_by(|a, b| {
        a.reduction_percent()
            .partial_cmp(&b.reduction_percent())
            .unwrap()
    });
    println!("\nsmallest reductions:");
    for r in sorted.iter().take(6) {
        println!(
            "  {:<18} {:>6.1}%  ({} -> {} bytes)",
            r.reference,
            r.reduction_percent(),
            r.original_bytes,
            r.slim_bytes
        );
    }
    // The whole Top-50 ran over content-addressed overlay layers.
    println!(
        "\nblob store across the 50 overlay-backed containers: {} B physical, \
         {} B ingested, {:.1}x dedup, {} unique chunks",
        store_stats.physical_bytes,
        store_stats.ingested_bytes,
        store_stats.dedup_ratio(),
        store_stats.unique_chunks
    );
}
