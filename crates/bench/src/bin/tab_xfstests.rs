//! Regenerates the §5.1 xfstests result (90 of 94 pass on CntrFS).

use cntr_xfstests::harness::run_suite;
use cntr_xfstests::{all_tests, cntrfs_over_tmpfs, native_tmpfs};

fn main() {
    let cases = all_tests();
    let cntr = run_suite(&cntrfs_over_tmpfs(), &cases);
    let native = run_suite(&native_tmpfs(), &cases);
    println!("xfstests generic group (paper §5.1)");
    println!("{:-<60}", "");
    println!(
        "CntrFS over tmpfs : {:>3}/{} pass ({:.2}%)   paper: 90/94 (95.74%)",
        cntr.passed(),
        cntr.results.len(),
        100.0 * cntr.passed() as f64 / cntr.results.len() as f64
    );
    println!(
        "native tmpfs      : {:>3}/{} pass (control)",
        native.passed(),
        native.results.len()
    );
    println!("\nCntrFS failures (all expected):");
    for case in cases.iter().filter(|c| cntr.failed_ids().contains(&c.id)) {
        println!(
            "  generic/{:03} — {}",
            case.id,
            case.expected_cntrfs_failure.unwrap_or("UNEXPECTED")
        );
    }
}
