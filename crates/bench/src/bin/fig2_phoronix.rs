//! Regenerates Figure 2: relative CntrFS overhead for the Phoronix suite.

use cntr_phoronix::figure2;

fn main() {
    println!("Figure 2 — relative performance overhead (CntrFS / native, virtual time)");
    println!("{:-<78}", "");
    println!(
        "{:<24}{:>10}{:>10}{:>12}  times (native / cntrfs)",
        "benchmark", "measured", "paper", "in band?"
    );
    let rows = figure2();
    let mut in_band = 0;
    for r in &rows {
        if r.in_band() {
            in_band += 1;
        }
        println!(
            "{:<24}{:>9.2}x{:>9.1}x{:>12}  {} / {}",
            r.name,
            r.overhead(),
            r.paper,
            if r.in_band() { "yes" } else { "NO" },
            r.native,
            r.cntrfs
        );
    }
    println!("{:-<78}", "");
    let below = rows.iter().filter(|r| r.overhead() < 1.5).count();
    println!(
        "{in_band}/{} rows within their accepted band; {below}/{} below 1.5x (paper: 13/20)",
        rows.len(),
        rows.len()
    );
}
