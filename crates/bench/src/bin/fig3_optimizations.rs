//! Regenerates Figure 3: the effectiveness of the §3.3 optimizations.

use cntr_phoronix::figure3;

fn main() {
    println!("Figure 3 — effectiveness of the CntrFS optimizations");
    println!("{:-<74}", "");
    let paper = [
        "~10x (threaded read)",
        "+65% (seq write)",
        "2.5x (compile read)",
        "~5% (seq read)",
    ];
    for (row, paper) in figure3().iter().zip(paper) {
        println!(
            "{} {:<42} before={} after={}  speedup={:.2}x (paper: {})",
            row.panel,
            row.optimization,
            row.before,
            row.after,
            row.speedup(),
            paper
        );
    }
}
