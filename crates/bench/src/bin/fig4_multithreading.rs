//! Regenerates Figure 4: sequential-read throughput vs CntrFS threads.

use cntr_phoronix::figure4;

fn main() {
    println!("Figure 4 — IOzone sequential read vs CntrFS worker threads");
    println!("(paper: throughput drops by up to ~8% from 1 to 16 threads)");
    println!("(each point: real OS worker threads via ThreadedTransport)");
    println!("{:-<54}", "");
    let rows = figure4();
    let base = rows[0].throughput_mb_s;
    for r in &rows {
        let delta = 100.0 * (r.throughput_mb_s / base - 1.0);
        println!(
            "{:>3} threads: {:>8.0} MB/s  ({:+.1}% vs 1 thread) {}",
            r.threads,
            r.throughput_mb_s,
            delta,
            "#".repeat((r.throughput_mb_s / base * 30.0) as usize)
        );
    }
}
