//! `reclaim`: page-cache behavior under a memory ceiling.
//!
//! Two experiments against the two-list LRU:
//!
//! 1. **Hit rate vs working-set size.** Sequential re-reads over working
//!    sets from half the ceiling to 4× it. Below the ceiling the re-read
//!    passes should be all hits; above it, reclaim has to evict and the
//!    hit rate collapses (sequential scans are LRU's worst case). The
//!    interesting regression signal is the sub-ceiling rows dropping
//!    below ~100%: that means reclaim is evicting pages it didn't need
//!    to, or the active list is failing to protect the working set.
//!
//! 2. **Sustained write throughput vs dirty accounting.** The same 32 MiB
//!    write stream under three regimes: dirty limits above the stream
//!    (never throttled), a tight limit drained inline by the writer
//!    (stop-world `flush_until` stalls), and the same tight limit with
//!    the background flusher on (the writer pays at most the paced
//!    quota). Background write-back must beat the inline drain — that is
//!    the reason the flusher thread exists — and the stall counters show
//!    where the time went.

use cntr_fs::memfs::memfs;
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, ThreadedTransport, Transport};
use cntr_kernel::kernel::KernelConfig;
use cntr_kernel::{CacheMode, Kernel, MountFlags};
use cntr_types::{DevId, Mode, OpenFlags, Pid, SimClock};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

const PAGE: usize = 4096;

/// Boots a kernel whose page cache is the experiment variable, plus one
/// workload process and one open scratch file.
fn boot(config: KernelConfig) -> (Kernel, Pid, u32) {
    let clock = SimClock::new();
    let root = memfs(DevId(1), clock.clone());
    let kernel = Kernel::with_clock(clock, root, CacheMode::native(), config);
    let pid = kernel.fork(Pid::INIT).expect("fork");
    let fd = kernel
        .open(
            pid,
            "/data",
            OpenFlags::RDWR.with(OpenFlags::CREAT),
            Mode::RW_R__R__,
        )
        .expect("open /data");
    (kernel, pid, fd)
}

/// Writes `pages` pages of deterministic bytes through the cache in
/// `chunk_pages`-sized pwrites; returns wall-clock seconds spent.
fn write_stream(kernel: &Kernel, pid: Pid, fd: u32, pages: usize, chunk_pages: usize) -> f64 {
    let chunk = vec![0x5Au8; chunk_pages * PAGE];
    let start = Instant::now();
    let mut page = 0usize;
    while page < pages {
        let n = chunk_pages.min(pages - page);
        kernel
            .pwrite(pid, fd, (page * PAGE) as u64, &chunk[..n * PAGE])
            .expect("pwrite");
        page += n;
    }
    start.elapsed().as_secs_f64()
}

/// Sequentially reads `pages` pages; returns wall-clock seconds.
fn read_stream(kernel: &Kernel, pid: Pid, fd: u32, pages: usize) -> f64 {
    let mut buf = vec![0u8; PAGE];
    let start = Instant::now();
    for page in 0..pages {
        black_box(
            kernel
                .pread(pid, fd, (page * PAGE) as u64, &mut buf)
                .expect("pread"),
        );
    }
    start.elapsed().as_secs_f64()
}

/// Hit rate of sequential re-reads as the working set grows past the
/// ceiling.
fn bench_hit_rate(_c: &mut Criterion) {
    const CEILING_PAGES: usize = 1024; // 4 MiB
    const PASSES: usize = 4;
    println!("reclaim: sequential re-read hit rate, ceiling {CEILING_PAGES} pages");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "working set", "ws/ceil", "hit rate", "evictions", "ns/page"
    );
    for ws in [
        CEILING_PAGES / 2,
        CEILING_PAGES,
        2 * CEILING_PAGES,
        4 * CEILING_PAGES,
    ] {
        let (kernel, pid, fd) = boot(KernelConfig {
            page_cache_limit: (CEILING_PAGES * PAGE) as u64,
            // Keep dirty throttling out of the read experiment.
            dirty_bytes: (8 * CEILING_PAGES * PAGE) as u64,
            background_writeback: false,
            ..KernelConfig::default()
        });
        write_stream(&kernel, pid, fd, ws, 16);
        kernel.fsync(pid, fd, false).expect("fsync");
        let before = kernel.page_cache_stats();
        let mut secs = 0.0;
        for _ in 0..PASSES {
            secs += read_stream(&kernel, pid, fd, ws);
        }
        let after = kernel.page_cache_stats();
        let lookups = (after.hits + after.misses) - (before.hits + before.misses);
        let hits = after.hits - before.hits;
        println!(
            "{:<14} {:>10.2} {:>9.1}% {:>10} {:>12.0}",
            format!("{ws} pages"),
            ws as f64 / CEILING_PAGES as f64,
            100.0 * hits as f64 / lookups.max(1) as f64,
            after.evictions - before.evictions,
            secs * 1e9 / (PASSES * ws) as f64,
        );
    }
}

/// Boots a kernel with a CntrFS mount over a real worker-thread FUSE
/// transport at `/mnt` — the backing store the write experiment flushes
/// to. Every flushed run is a genuine cross-thread round trip, the cost
/// profile background write-back exists to hide (on a memcpy-speed
/// backing store there is nothing to overlap and the flusher is pure
/// lock traffic).
fn boot_fuse(config: KernelConfig) -> (Kernel, Pid, u32) {
    let clock = SimClock::new();
    let root = memfs(DevId(1), clock.clone());
    let kernel = Kernel::with_clock(clock.clone(), root, CacheMode::native(), config);
    let pid = kernel.fork(Pid::INIT).expect("fork");
    let backing = memfs(DevId(7), clock.clone());
    let handler = FsHandler::new(backing);
    let transport: Arc<dyn Transport> = Arc::new(ThreadedTransport::new(handler, 2));
    let client = FuseClientFs::mount(
        DevId(0xCAFE),
        clock,
        kernel.cost(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("mount cntrfs");
    let flags = client.effective_flags();
    let cache = CacheMode {
        writeback: flags.writeback_cache,
        keep_cache: flags.keep_cache,
        synthetic: false,
    };
    kernel.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
    kernel
        .mount_fs(pid, "/mnt", client, cache, MountFlags::default())
        .expect("mount cntrfs at /mnt");
    let fd = kernel
        .open(
            pid,
            "/mnt/data",
            OpenFlags::RDWR.with(OpenFlags::CREAT),
            Mode::RW_R__R__,
        )
        .expect("open /mnt/data");
    (kernel, pid, fd)
}

/// Sustained write throughput onto the CntrFS mount: unthrottled vs
/// inline drain vs background flusher, same stream, same tight dirty
/// limits for the throttled rows.
fn bench_write_throughput(_c: &mut Criterion) {
    const STREAM_PAGES: usize = 8192; // 32 MiB
    const RUNS: usize = 3;
    // The ceiling stays above the stream so dirty accounting — not LRU
    // eviction — is the only thing standing between the writer and memcpy
    // speed.
    let roomy = (2 * STREAM_PAGES * PAGE) as u64;
    let tight_hard = (1024 * PAGE) as u64; // 4 MiB: 1/8 of the stream
    let tight_bg = (512 * PAGE) as u64;
    let regimes: [(&str, KernelConfig); 3] = [
        (
            "unthrottled",
            KernelConfig {
                page_cache_limit: roomy,
                dirty_bytes: roomy,
                background_writeback: false,
                ..KernelConfig::default()
            },
        ),
        (
            "inline-drain",
            KernelConfig {
                page_cache_limit: roomy,
                dirty_bytes: tight_hard,
                dirty_background_bytes: tight_bg,
                background_writeback: false,
                ..KernelConfig::default()
            },
        ),
        (
            "bg-flusher",
            KernelConfig {
                page_cache_limit: roomy,
                dirty_bytes: tight_hard,
                dirty_background_bytes: tight_bg,
                background_writeback: true,
                ..KernelConfig::default()
            },
        ),
    ];
    println!("reclaim: 32 MiB write stream onto CntrFS, best of {RUNS} runs");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "regime", "MiB/s", "stalls", "wakeups", "flushed"
    );
    for (name, config) in regimes {
        let mut best = f64::MAX;
        let mut stats = None;
        for _ in 0..RUNS {
            let (kernel, pid, fd) = boot_fuse(config);
            let secs = write_stream(&kernel, pid, fd, STREAM_PAGES, 16);
            kernel.sync().expect("sync");
            if secs < best {
                best = secs;
                stats = Some(kernel.page_cache_stats());
            }
        }
        let s = stats.expect("at least one run");
        println!(
            "{:<14} {:>10.1} {:>10} {:>10} {:>10}",
            name,
            (STREAM_PAGES * PAGE) as f64 / (1024.0 * 1024.0) / best,
            s.throttle_stalls,
            s.writeback_wakeups,
            s.flushed_pages,
        );
    }
}

/// Criterion-timed fast path: a 4 KiB cached read well inside the
/// ceiling — reclaim bookkeeping must not tax the hit path.
fn bench_cached_read(c: &mut Criterion) {
    let (kernel, pid, fd) = boot(KernelConfig {
        page_cache_limit: (1024 * PAGE) as u64,
        ..KernelConfig::default()
    });
    write_stream(&kernel, pid, fd, 256, 16);
    let mut buf = vec![0u8; PAGE];
    let mut page = 0u64;
    let mut group = c.benchmark_group("reclaim");
    group.bench_function("cached_4k_read_hit", |b| {
        b.iter(|| {
            let off = (page % 256) * PAGE as u64;
            black_box(kernel.pread(pid, fd, off, &mut buf).expect("pread"));
            page = page.wrapping_add(1);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cached_read,
    bench_hit_rate,
    bench_write_throughput
);
criterion_main!(benches);
