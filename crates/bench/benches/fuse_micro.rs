//! Criterion microbenchmarks over the FUSE request path (wall-clock).
//!
//! These measure the *implementation* (real time per simulated operation),
//! complementing the virtual-time figure regenerations.

use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, InlineTransport};
use cntr_types::{CostModel, DevId, FileType, Ino, Mode, OpenFlags, SimClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn mounted() -> Arc<FuseClientFs> {
    let clock = SimClock::new();
    let backing = memfs(DevId(1), clock.clone());
    let transport = InlineTransport::new(FsHandler::new(backing));
    FuseClientFs::mount(
        DevId(100),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("mount")
}

fn bench_lookup(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    for i in 0..64 {
        fs.mkdir(Ino::ROOT, &format!("d{i}"), Mode::RWXR_XR_X, &ctx)
            .unwrap();
    }
    let mut i = 0u64;
    c.bench_function("fuse_lookup_cached", |b| {
        b.iter(|| {
            i += 1;
            fs.lookup(Ino::ROOT, &format!("d{}", i % 64)).unwrap()
        })
    });
}

fn bench_read_cached(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "f", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    fs.write(st.ino, fh, 0, &vec![7u8; 1 << 20]).unwrap();
    let mut buf = vec![0u8; 4096];
    let mut off = 0u64;
    c.bench_function("fuse_read_4k_readahead", |b| {
        b.iter(|| {
            let n = fs.read(st.ino, fh, off % (1 << 20), &mut buf).unwrap();
            off += n as u64;
            n
        })
    });
}

fn bench_write(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "w", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
    let data = vec![1u8; 4096];
    let mut off = 0u64;
    c.bench_function("fuse_write_4k", |b| {
        b.iter(|| {
            let n = fs.write(st.ino, fh, off % (8 << 20), &data).unwrap();
            off += n as u64;
            n
        })
    });
}

fn bench_getxattr_uncached(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "x", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    c.bench_function("fuse_getxattr_roundtrip", |b| {
        b.iter(|| fs.getxattr(st.ino, "security.capability").is_err())
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_read_cached,
    bench_write,
    bench_getxattr_uncached
);
criterion_main!(benches);
