//! Criterion microbenchmarks over the FUSE request path (wall-clock).
//!
//! These measure the *implementation* (real time per simulated operation),
//! complementing the virtual-time figure regenerations.

use bytes::Bytes;
use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, InitFlags, InlineTransport};
use cntr_kernel::pagecache::{FileRef, PageCache};
use cntr_kernel::CacheMode;
use cntr_types::{CostModel, DevId, FileType, Ino, Mode, OpenFlags, SimClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn mounted() -> Arc<FuseClientFs> {
    mounted_with(FuseConfig::optimized())
}

fn mounted_with(config: FuseConfig) -> Arc<FuseClientFs> {
    let clock = SimClock::new();
    let backing = memfs(DevId(1), clock.clone());
    let transport = InlineTransport::new(FsHandler::new(backing));
    FuseClientFs::mount(
        DevId(100),
        clock,
        CostModel::calibrated(),
        config,
        transport,
    )
    .expect("mount")
}

fn bench_lookup(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    for i in 0..64 {
        fs.mkdir(Ino::ROOT, &format!("d{i}"), Mode::RWXR_XR_X, &ctx)
            .unwrap();
    }
    let mut i = 0u64;
    c.bench_function("fuse_lookup_cached", |b| {
        b.iter(|| {
            i += 1;
            fs.lookup(Ino::ROOT, &format!("d{}", i % 64)).unwrap()
        })
    });
}

fn bench_read_cached(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "f", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    fs.write(st.ino, fh, 0, &vec![7u8; 1 << 20]).unwrap();
    let mut buf = vec![0u8; 4096];
    let mut off = 0u64;
    c.bench_function("fuse_read_4k_readahead", |b| {
        b.iter(|| {
            let n = fs.read(st.ino, fh, off % (1 << 20), &mut buf).unwrap();
            off += n as u64;
            n
        })
    });
}

fn bench_write(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "w", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
    let data = vec![1u8; 4096];
    let mut off = 0u64;
    c.bench_function("fuse_write_4k", |b| {
        b.iter(|| {
            let n = fs.write(st.ino, fh, off % (8 << 20), &data).unwrap();
            off += n as u64;
            n
        })
    });
}

/// Large-read wall-clock: splice (the reply allocation is handed through
/// by reference) vs copy (memcpy at the boundary). Two far-apart offsets
/// alternate so every read misses the readahead window and crosses the
/// transport.
fn bench_read_1m_splice_vs_copy(c: &mut Criterion) {
    let run = |label: &str, splice: bool, c: &mut Criterion| {
        let mut flags = InitFlags::cntr_default();
        flags.splice_read = splice;
        let fs = mounted_with(FuseConfig::optimized().with_flags(flags));
        let ctx = FsContext::root();
        let st = fs
            .mknod(Ino::ROOT, "r", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        fs.write(st.ino, fh, 0, &vec![7u8; 8 << 20]).unwrap();
        let mut toggle = 0u64;
        c.bench_function(label, |b| {
            b.iter(|| {
                toggle ^= 4 << 20;
                fs.read_bytes(st.ino, fh, toggle, 1 << 20).unwrap().len()
            })
        });
    };
    run("fuse_read_1m_splice", true, c);
    run("fuse_read_1m_copy", false, c);
}

/// Large-write wall-clock: splice-write passes the caller's `Bytes`
/// through (blob-style servers retain it); without it the payload is
/// memcpy'd at the boundary.
fn bench_write_1m_splice_vs_copy(c: &mut Criterion) {
    let run = |label: &str, splice: bool, c: &mut Criterion| {
        let mut flags = InitFlags::cntr_default();
        flags.splice_write = splice;
        let fs = mounted_with(FuseConfig::optimized().with_flags(flags));
        let ctx = FsContext::root();
        let st = fs
            .mknod(Ino::ROOT, "w", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
        let payload = Bytes::from(vec![3u8; 1 << 20]);
        c.bench_function(label, |b| {
            b.iter(|| fs.write_bytes(st.ino, fh, 0, payload.clone()).unwrap())
        });
    };
    run("fuse_write_1m_splice", true, c);
    run("fuse_write_1m_copy", false, c);
}

/// Write-back flush throughput over a FUSE mount: 256 contiguous dirty
/// pages flushed as one coalesced (spliced) WRITE request vs 256 per-page
/// requests — the round-trip amortization behind the Figure 2 FIO win.
fn bench_flush_batched_vs_unbatched(c: &mut Criterion) {
    let run = |label: &str, coalesce: bool, c: &mut Criterion| {
        let fs = mounted();
        let ctx = FsContext::root();
        let st = fs
            .mknod(Ino::ROOT, "wb", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        let file = Arc::new(FileRef {
            fs: Arc::clone(&fs) as Arc<dyn Filesystem>,
            ino: st.ino,
            fh,
        });
        let cache = PageCache::new(SimClock::new(), CostModel::calibrated(), 256 << 20, 1 << 30)
            .with_coalesce(coalesce);
        let dev = DevId(2);
        let data = vec![1u8; 256 * 4096];
        c.bench_function(label, |b| {
            b.iter(|| {
                cache
                    .write(dev, CacheMode::native(), &file, 0, &data)
                    .unwrap();
                cache.flush_file(dev, file.ino).unwrap();
            })
        });
    };
    run("pagecache_flush_256p_batched", true, c);
    run("pagecache_flush_256p_unbatched", false, c);
}

/// Raw transport throughput, ring vs threaded: `depth` submitter threads
/// (the effective queue depth) hammer `transport.call` with small LOOKUPs
/// for a fixed window. At depth 1 the ring degenerates to one wakeup per
/// request and should match the threaded channel; at depth ≥ 8 batched
/// doorbells and multi-reap amortize the per-request synchronization and
/// the ring should pull ahead.
fn bench_transport_ring_vs_threaded(_c: &mut Criterion) {
    use cntr_fuse::conn::ThreadedTransport;
    use cntr_fuse::proto::{Request, RequestCtx};
    use cntr_fuse::{RingTransport, Transport};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    const WINDOW: Duration = Duration::from_millis(120);

    fn handler() -> FsHandler {
        FsHandler::new(memfs(DevId(9), SimClock::new()))
    }

    fn drive(transport: Arc<dyn Transport>, depth: usize) -> f64 {
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(depth + 1));
        let mut handles = Vec::new();
        for _ in 0..depth {
            let transport = Arc::clone(&transport);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    transport.call(Request::Lookup {
                        parent: Ino::ROOT,
                        name: "probe".into(),
                        ctx: RequestCtx::default(),
                    });
                    n += 1;
                }
                n
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(WINDOW);
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .sum();
        let ops = total as f64 / start.elapsed().as_secs_f64();
        transport.shutdown();
        ops
    }

    println!("fuse transport: LOOKUP round-trips/sec, threaded vs ring");
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>8}",
        "workers", "depth", "threaded", "ring", "ring/thr"
    );
    for &workers in &[1usize, 2, 4, 8] {
        for &depth in &[1usize, 8, 64] {
            let threaded = drive(Arc::new(ThreadedTransport::new(handler(), workers)), depth);
            // Batch scales with the expected per-ring queue depth:
            // submitters round-robin across `workers` rings, so each
            // ring sees ~depth/workers outstanding requests.
            let ring = drive(
                Arc::new(RingTransport::new(
                    handler(),
                    workers,
                    depth,
                    (depth / workers).clamp(1, 16),
                )),
                depth,
            );
            println!(
                "{:<8} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                workers,
                depth,
                threaded,
                ring,
                ring / threaded.max(1.0)
            );
        }
    }
}

fn bench_getxattr_uncached(c: &mut Criterion) {
    let fs = mounted();
    let ctx = FsContext::root();
    let st = fs
        .mknod(Ino::ROOT, "x", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    c.bench_function("fuse_getxattr_roundtrip", |b| {
        b.iter(|| fs.getxattr(st.ino, "security.capability").is_err())
    });
}

/// Runs last: dumps the observability registry so every bench run leaves a
/// `name value` snapshot of what the workload actually did (per-opcode
/// counts, latency quantiles, cache behaviour) next to its timing numbers.
fn report_metrics_snapshot(_c: &mut Criterion) {
    println!("fuse_micro metrics snapshot:");
    print!("{}", obs::render());
}

criterion_group!(
    benches,
    bench_lookup,
    bench_read_cached,
    bench_write,
    bench_read_1m_splice_vs_copy,
    bench_write_1m_splice_vs_copy,
    bench_flush_batched_vs_unbatched,
    bench_transport_ring_vs_threaded,
    bench_getxattr_uncached,
    report_metrics_snapshot
);
criterion_main!(benches);
