//! Criterion wrappers around the figure regenerations: wall-clock cost of
//! reproducing each experiment end to end (sample size kept minimal — each
//! iteration builds machines and runs full workloads).

use cntr_fuse::FuseConfig;
use cntr_phoronix::{run_workload, Workload};
use cntr_xfstests::harness::run_suite;
use cntr_xfstests::{all_tests, cntrfs_over_tmpfs};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workload_compile_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_compilebench_read_pair", |b| {
        b.iter(|| run_workload(Workload::CompileBenchRead, FuseConfig::optimized()).overhead())
    });
    g.bench_function("fig2_postmark_pair", |b| {
        b.iter(|| run_workload(Workload::Postmark, FuseConfig::optimized()).overhead())
    });
    g.finish();
}

fn bench_xfstests(c: &mut Criterion) {
    let mut g = c.benchmark_group("suites");
    g.sample_size(10);
    let cases = all_tests();
    g.bench_function("xfstests_cntrfs_full", |b| {
        b.iter(|| {
            let env = cntrfs_over_tmpfs();
            run_suite(&env, &cases).passed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_workload_compile_read, bench_xfstests);
criterion_main!(benches);
