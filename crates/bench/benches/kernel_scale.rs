//! `kernel_scale`: wall-clock syscall throughput of the sharded kernel.
//!
//! The scaling experiment drives metadata-heavy syscalls (`setenv`,
//! `getenv`, `stat`, `proc_info`) from N OS threads, each thread acting as
//! one container: its own process (own pid shard), its own mount namespace
//! and its own filesystem. With the old giant `Mutex<KState>` every one of
//! those syscalls serialized; with the sharded tables (16 shards by
//! default) threads only contend on the subsystems they actually share.
//!
//! Output is a table of ops/sec per `(shards, threads)` cell plus the 1→N
//! scaling factor. On a multi-core host the 16-shard table scales with the
//! thread count while the 1-shard configuration flatlines; on a single-core
//! host both curves are flat (there is no parallel hardware to win on) and
//! the informative signal is the per-cell throughput delta between the two
//! shard counts.

use cntr_fs::memfs::memfs;
use cntr_kernel::kernel::KernelConfig;
use cntr_kernel::{CacheMode, Kernel, MountFlags, NamespaceKind};
use cntr_types::{DevId, Mode, OpenFlags, Pid, SimClock};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One simulated container: a process in its own mount namespace with a
/// private filesystem mounted at `/c<i>` and a few files to stat.
struct Container {
    pid: Pid,
    dir: String,
}

fn boot(shards: usize, containers: usize) -> (Kernel, Vec<Container>) {
    let clock = SimClock::new();
    let root = memfs(DevId(1), clock.clone());
    let config = KernelConfig {
        proc_shards: shards,
        ..KernelConfig::default()
    };
    let kernel = Kernel::with_clock(clock.clone(), root, CacheMode::native(), config);
    let mut out = Vec::with_capacity(containers);
    for i in 0..containers {
        let pid = kernel.fork(Pid::INIT).expect("fork container");
        kernel
            .unshare(pid, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .expect("unshare");
        let dir = format!("/c{i}");
        kernel.mkdir(pid, &dir, Mode::RWXR_XR_X).expect("mkdir");
        let fs = memfs(DevId(100 + i as u64), clock.clone());
        kernel
            .mount_fs(pid, &dir, fs, CacheMode::native(), MountFlags::default())
            .expect("mount");
        for f in 0..4 {
            let fd = kernel
                .open(
                    pid,
                    &format!("{dir}/f{f}"),
                    OpenFlags::create(),
                    Mode::RW_R__R__,
                )
                .expect("create");
            kernel.close(pid, fd).expect("close");
        }
        out.push(Container { pid, dir });
    }
    (kernel, out)
}

/// One unit of per-container work: the metadata mix a busy container issues
/// (environment churn, path resolution, `/proc`-style introspection).
fn syscall_mix(kernel: &Kernel, c: &Container, round: usize) {
    kernel
        .setenv(c.pid, "ROUND", &round.to_string())
        .expect("setenv");
    black_box(kernel.getenv(c.pid, "ROUND").expect("getenv"));
    black_box(
        kernel
            .stat(c.pid, &format!("{}/f{}", c.dir, round % 4))
            .expect("stat"),
    );
    black_box(kernel.proc_info(c.pid).expect("proc_info"));
}

const OPS_PER_MIX: u64 = 4;

/// Runs `threads` worker threads hammering the kernel for `window`,
/// returning total syscalls per second.
fn throughput(kernel: &Kernel, containers: &[Container], threads: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let per_thread = containers.len() / threads;
    let mut handles = Vec::new();
    for t in 0..threads {
        let kernel = kernel.clone();
        let own: Vec<Container> = containers[t * per_thread..(t + 1) * per_thread]
            .iter()
            .map(|c| Container {
                pid: c.pid,
                dir: c.dir.clone(),
            })
            .collect();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut rounds = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for c in &own {
                    syscall_mix(&kernel, c, rounds);
                }
                rounds += 1;
            }
            rounds as u64 * own.len() as u64 * OPS_PER_MIX
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    total as f64 / start.elapsed().as_secs_f64()
}

/// The headline experiment: ops/sec for 1-shard (giant-lock equivalent)
/// vs 16-shard tables at 1..=8 threads over 64 containers.
fn bench_shard_scaling(_c: &mut Criterion) {
    const CONTAINERS: usize = 64;
    const WINDOW: Duration = Duration::from_millis(250);
    let threads = [1usize, 2, 4, 8];
    println!("kernel_scale: {CONTAINERS} containers, metadata syscall mix");
    println!(
        "{:<10} {:>8} {:>14} {:>10}",
        "shards", "threads", "ops/sec", "vs 1thr"
    );
    for &shards in &[1usize, 16] {
        let (kernel, containers) = boot(shards, CONTAINERS);
        let mut base = 0.0f64;
        for &t in &threads {
            let ops = throughput(&kernel, &containers, t, WINDOW);
            if t == 1 {
                base = ops;
            }
            println!(
                "{:<10} {:>8} {:>14.0} {:>9.2}x",
                kernel.proc_shard_count(),
                t,
                ops,
                ops / base.max(1.0)
            );
        }
    }
}

/// FUSE dispatch scaling: a 4 KiB write+read mix through a mounted
/// `FuseClientFs` at 1..=8 client threads (workers matched to threads),
/// threaded channel vs io_uring-style ring. The ring's batched doorbells
/// and multi-reap only pay off when several requests are in flight, so
/// the interesting cells are the multi-threaded ones.
fn bench_fuse_transport_scaling(_c: &mut Criterion) {
    use cntr_fs::Filesystem;
    use cntr_fuse::conn::ThreadedTransport;
    use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, RingTransport, Transport};
    use cntr_types::{CostModel, FileType, Ino};

    const WINDOW: Duration = Duration::from_millis(200);

    fn ops_per_sec(ring: bool, threads: usize, window: Duration) -> f64 {
        let clock = SimClock::new();
        let backing = memfs(DevId(50), clock.clone());
        let handler = FsHandler::new(backing);
        let transport: Arc<dyn Transport> = if ring {
            Arc::new(RingTransport::new(handler, threads, 64, 8))
        } else {
            Arc::new(ThreadedTransport::new(handler, threads))
        };
        let client = FuseClientFs::mount(
            DevId(0xBE),
            clock,
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .expect("mount");
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let mut handles = Vec::new();
        for t in 0..threads {
            let client = Arc::clone(&client);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let ctx = cntr_fs::FsContext::root();
                let st = client
                    .mknod(
                        Ino::ROOT,
                        &format!("b{t}"),
                        FileType::Regular,
                        Mode::RW_R__R__,
                        0,
                        &ctx,
                    )
                    .expect("mknod");
                let fh = client.open(st.ino, OpenFlags::RDWR).expect("open");
                let payload = vec![t as u8; 4096];
                let mut buf = [0u8; 4096];
                barrier.wait();
                let mut ops = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let off = (i % 64) * 4096;
                    client.write(st.ino, fh, off, &payload).expect("write");
                    client.read(st.ino, fh, off, &mut buf).expect("read");
                    ops += 2;
                    i += 1;
                }
                client.release(st.ino, fh).expect("release");
                ops
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
        total as f64 / start.elapsed().as_secs_f64()
    }

    println!("kernel_scale: FUSE 4k write+read ops/sec, threaded vs ring");
    println!(
        "{:<8} {:>14} {:>14} {:>8}",
        "threads", "threaded", "ring", "ring/thr"
    );
    for &t in &[1usize, 2, 4, 8] {
        let threaded = ops_per_sec(false, t, WINDOW);
        let ring = ops_per_sec(true, t, WINDOW);
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>7.2}x",
            t,
            threaded,
            ring,
            ring / threaded.max(1.0)
        );
    }
}

/// Single-thread syscall latency on the sharded table (criterion-timed),
/// the sanity check that fine-grained locking did not tax the fast path.
fn bench_syscall_latency(c: &mut Criterion) {
    let (kernel, containers) = boot(16, 1);
    let mut group = c.benchmark_group("kernel_scale");
    let mut round = 0usize;
    group.bench_function("syscall_mix_1thread_16shards", |b| {
        b.iter(|| {
            syscall_mix(&kernel, &containers[0], round);
            round = round.wrapping_add(1);
        })
    });
    group.finish();
}

/// Runs last: dumps the observability registry so every bench run leaves a
/// `name value` snapshot of what the workload actually did (cache hit
/// rates, request counts, latency quantiles) next to its timing numbers.
fn report_metrics_snapshot(_c: &mut Criterion) {
    println!("kernel_scale metrics snapshot:");
    print!("{}", obs::render());
}

criterion_group!(
    benches,
    bench_syscall_latency,
    bench_shard_scaling,
    bench_fuse_transport_scaling,
    report_metrics_snapshot
);
criterion_main!(benches);
