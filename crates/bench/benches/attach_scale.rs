//! `attach_scale`: wall-clock cost of the shared attach plane.
//!
//! Two questions the epoll rebuild answers (ISSUE: concurrent attach
//! plane at scale), measured in real time over the simulated kernel:
//!
//! 1. **Setup latency** — what one more attach session costs while a
//!    plane already hosts many: container launch + full attach
//!    workflow + socket-forward registration on the live loop.
//! 2. **Streaming throughput** — bytes/sec through the plane while 10,
//!    100, and 1000 sessions each round-trip payloads over their
//!    forwarded sockets. The single event loop makes this scale with
//!    live *traffic*, not with the total endpoint population: idle
//!    sessions cost nothing per wait.
//!
//! CI tees the output into the bench artifact next to the other
//! criterion runs.

use cntr_core::{Cntr, CntrOptions};
use cntr_engine::image::ImageBuilder;
use cntr_engine::runtime::boot_host;
use cntr_engine::{ContainerRuntime, Registry};
use cntr_kernel::Kernel;
use cntr_types::{Mode, OpenFlags, Pid, SimClock};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

const SVC_PATH: &str = "/run/bench-svc.sock";

fn host() -> Kernel {
    let kernel = boot_host(SimClock::new());
    let fd = kernel
        .open(
            Pid::INIT,
            "/usr/bin/ls",
            OpenFlags::create(),
            Mode::RWXR_XR_X,
        )
        .unwrap();
    kernel.write_fd(Pid::INIT, fd, b"tool").unwrap();
    kernel.close(Pid::INIT, fd).unwrap();
    kernel.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
    kernel
}

fn registry() -> Arc<Registry> {
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "slim")
            .layer("app")
            .binary("/usr/local/bin/app", 500_000, &[])
            .entrypoint("/usr/local/bin/app")
            .build(),
    );
    registry
}

/// A fleet of `n` attach sessions on one plane, each with a forwarded
/// socket dialed by its in-container client and accepted by the shared
/// host service.
struct Fleet {
    kernel: Kernel,
    _runtimes: Vec<ContainerRuntime>,
    cntr: Cntr,
    /// `(app pid, client fd, host-side conn fd)` per session; sessions
    /// are kept alive for the fleet's lifetime.
    lanes: Vec<(Pid, u32, u32)>,
    _sessions: Vec<cntr_core::AttachSession>,
}

fn fleet(n: usize) -> Fleet {
    let kernel = host();
    let runtimes = ContainerRuntime::matrix(kernel.clone(), registry());
    let svc = kernel.bind_listener(Pid::INIT, SVC_PATH).unwrap();
    let cntr = Cntr::new(kernel.clone());
    let mut sessions = Vec::with_capacity(n);
    let mut lanes = Vec::with_capacity(n);
    for i in 0..n {
        let rt = &runtimes[i % runtimes.len()];
        let c = rt.run(&format!("c{i}"), "app:slim").unwrap();
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        session
            .forward_socket("/var/lib/cntr/tmp/app.sock", SVC_PATH)
            .unwrap();
        let client = kernel.connect(c.pid, "/tmp/app.sock").unwrap();
        lanes.push((c.pid, client, 0));
        sessions.push(session);
    }
    cntr.plane().unwrap().pump_until_quiet().unwrap();
    for lane in &mut lanes {
        lane.2 = kernel.accept(Pid::INIT, svc).unwrap();
    }
    Fleet {
        kernel,
        _runtimes: runtimes,
        cntr,
        lanes,
        _sessions: sessions,
    }
}

/// One round: every lane sends `payload`, the plane forwards it, the
/// host drains it. Returns bytes moved end to end.
fn stream_round(f: &Fleet, payload: &[u8], buf: &mut [u8]) -> usize {
    let plane = f.cntr.plane().unwrap();
    for (pid, client, _) in &f.lanes {
        let mut sent = 0;
        while sent < payload.len() {
            match f.kernel.write_fd(*pid, *client, &payload[sent..]) {
                Ok(n) => sent += n,
                Err(_) => {
                    plane.pump_until_quiet().unwrap();
                }
            }
        }
    }
    plane.pump_until_quiet().unwrap();
    let mut received = 0;
    for (_, _, conn) in &f.lanes {
        while let Ok(n) = f.kernel.read_fd(Pid::INIT, *conn, buf) {
            if n == 0 {
                break;
            }
            received += n;
        }
    }
    received
}

/// Cost of attaching one more session (and registering its forwarded
/// socket) while the plane already hosts a populated fleet.
fn bench_session_setup(c: &mut Criterion) {
    let f = fleet(100);
    let rt = &f._runtimes[0];
    let mut i = 0usize;
    c.bench_function("attach_setup_on_busy_plane", |b| {
        b.iter(|| {
            i += 1;
            let cont = rt.run(&format!("extra{i}"), "app:slim").unwrap();
            let session = f.cntr.attach(cont.pid, CntrOptions::default()).unwrap();
            let proxy = session
                .forward_socket("/var/lib/cntr/tmp/extra.sock", SVC_PATH)
                .unwrap();
            black_box(&proxy);
            session.detach().unwrap();
            rt.stop(&format!("extra{i}")).unwrap();
        })
    });
}

/// Streaming throughput with 10 / 100 / 1000 concurrent sessions.
fn bench_streaming_throughput(c: &mut Criterion) {
    let payload = vec![0x42u8; 4096];
    let mut buf = vec![0u8; 65536];
    for n in [10usize, 100, 1000] {
        let f = fleet(n);
        c.bench_function(&format!("plane_stream_4k_x{n}_sessions"), |b| {
            b.iter(|| {
                let got = stream_round(&f, &payload, &mut buf);
                assert_eq!(got, payload.len() * f.lanes.len());
                black_box(got)
            })
        });
        // Aggregate figure next to the per-iteration timing: one timed
        // burst, reported as MiB/s through the plane.
        let start = Instant::now();
        let mut moved = 0usize;
        for _ in 0..8 {
            moved += stream_round(&f, &payload, &mut buf);
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "plane_throughput sessions={n} bytes={moved} mib_per_s={:.1}",
            moved as f64 / (1 << 20) as f64 / secs
        );
    }
}

/// Counters the loop maintained during the runs, next to the timings.
fn report_metrics_snapshot(_c: &mut Criterion) {
    println!("attach_scale metrics snapshot:");
    for metric in [
        "core.attach.loop-polls",
        "core.proxy.accepted",
        "core.proxy.forwarded-bytes",
        "core.proxy.dial-errors",
    ] {
        if let Some(v) = obs::counter_value(metric) {
            println!("{metric} {v}");
        }
    }
}

criterion_group!(
    benches,
    bench_session_setup,
    bench_streaming_throughput,
    report_metrics_snapshot
);
criterion_main!(benches);
