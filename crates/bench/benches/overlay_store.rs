//! Criterion microbenchmarks over the overlay subsystem: blob-store dedup
//! throughput, copy-up latency, and merged-directory operations.
//!
//! The dedup-ratio numbers these print (via `--nocapture`-style stdout) are
//! the ones ROADMAP records for the "hundreds of containers" scaling story.

use cntr_engine::runtime::boot_host;
use cntr_engine::{ContainerRuntime, EngineKind, ImageBuilder, Registry};
use cntr_fs::{Filesystem, FsContext};
use cntr_overlay::{blobfs, BlobStore, OverlayFs};
use cntr_types::{DevId, FileType, Ino, Mode, OpenFlags, SimClock};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const CHUNK: usize = 4096;

fn bench_blob_ingest(c: &mut Criterion) {
    let store = BlobStore::new();
    // 1 MiB payload with 64 distinct chunks.
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i / CHUNK + i * 13) as u8).collect();
    let mut group = c.benchmark_group("blob_store");
    group.bench_function("ingest_1mib_cold", |b| {
        b.iter(|| {
            // Distinct content each iteration (vary one byte per chunk).
            let mut p = payload.clone();
            p[0] = p[0].wrapping_add(1);
            black_box(store.ingest(&p))
        })
    });
    let warm = store.ingest(&payload);
    group.bench_function("ingest_1mib_dedup_hit", |b| {
        b.iter(|| black_box(store.ingest(&payload)))
    });
    drop(warm);
    group.finish();
}

/// Lower layer with `n` files of `chunks` chunks each, plus the overlay.
fn overlay_with_lower_files(n: usize, chunks: usize) -> (Arc<OverlayFs>, Vec<Ino>) {
    let clock = SimClock::new();
    let store = BlobStore::new();
    let ctx = FsContext::root();
    let lower = blobfs(DevId(1), clock.clone(), store.clone());
    let payload: Vec<u8> = (0..chunks * CHUNK).map(|i| (i * 31) as u8).collect();
    for i in 0..n {
        let st = lower
            .mknod(
                Ino::ROOT,
                &format!("file{i}"),
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &ctx,
            )
            .unwrap();
        let fh = lower.open(st.ino, OpenFlags::WRONLY).unwrap();
        lower.write(st.ino, fh, 0, &payload).unwrap();
        lower.release(st.ino, fh).unwrap();
    }
    let upper = blobfs(DevId(2), clock, store);
    let overlay = OverlayFs::new(DevId(3), vec![lower], upper);
    let inos: Vec<Ino> = (0..n)
        .map(|i| overlay.lookup(Ino::ROOT, &format!("file{i}")).unwrap().ino)
        .collect();
    (overlay, inos)
}

fn bench_copy_up(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    // Each iteration copy-ups a fresh 256 KiB lower file via a 1-byte write.
    // (The pool is large enough that criterion's calibration never wraps.)
    let (overlay, inos) = overlay_with_lower_files(8192, 64);
    let mut i = 0usize;
    group.bench_function("copy_up_256k_first_write", |b| {
        b.iter(|| {
            let ino = inos[i % inos.len()];
            i += 1;
            let fh = overlay.open(ino, OpenFlags::WRONLY).unwrap();
            overlay.write(ino, fh, 0, b"!").unwrap();
            overlay.release(ino, fh).unwrap();
        })
    });
    // Steady-state write to an already-copied-up file, for contrast.
    let ino = inos[0];
    let fh = overlay.open(ino, OpenFlags::WRONLY).unwrap();
    group.bench_function("write_4k_after_copy_up", |b| {
        let buf = vec![7u8; CHUNK];
        let mut off = 0u64;
        b.iter(|| {
            off = (off + CHUNK as u64) % (64 * CHUNK as u64);
            overlay.write(ino, fh, off, &buf).unwrap()
        })
    });
    overlay.release(ino, fh).unwrap();
    group.finish();
}

fn bench_merged_readdir_and_lookup(c: &mut Criterion) {
    let (overlay, _) = overlay_with_lower_files(256, 1);
    let mut group = c.benchmark_group("overlay");
    group.bench_function("merged_readdir_256", |b| {
        b.iter(|| black_box(overlay.readdir(Ino::ROOT).unwrap().len()))
    });
    let mut i = 0u64;
    group.bench_function("merged_lookup", |b| {
        b.iter(|| {
            i += 1;
            overlay
                .lookup(Ino::ROOT, &format!("file{}", i % 256))
                .unwrap()
        })
    });
    group.finish();
}

/// An overlay of `layers` lowers where only the bottom layer holds the
/// files: the worst case for uncached lookups (every layer consulted per
/// miss) and the best showcase for the dentry + negative-lookup cache.
fn overlay_deep_stack(layers: usize, files: usize) -> Arc<OverlayFs> {
    let clock = SimClock::new();
    let store = BlobStore::new();
    let ctx = FsContext::root();
    let mut lowers: Vec<Arc<dyn Filesystem>> = Vec::new();
    for l in 0..layers {
        let fs = blobfs(DevId(10 + l as u64), clock.clone(), store.clone());
        if l == layers - 1 {
            for i in 0..files {
                fs.mknod(
                    Ino::ROOT,
                    &format!("file{i}"),
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &ctx,
                )
                .unwrap();
            }
        }
        lowers.push(fs);
    }
    let upper = blobfs(DevId(9), clock, store);
    OverlayFs::new(DevId(8), lowers, upper)
}

/// Hot lookups on an 8-layer stack: positive hits cost one `getattr`
/// against the primary realization, negative hits cost nothing — neither
/// pays the O(layers) per-layer `lookup` of the cold path.
fn bench_dentry_cache(c: &mut Criterion) {
    let overlay = overlay_deep_stack(8, 64);
    let mut group = c.benchmark_group("overlay");
    let mut i = 0u64;
    group.bench_function("lookup_8layers_hot", |b| {
        b.iter(|| {
            i += 1;
            overlay
                .lookup(Ino::ROOT, &format!("file{}", i % 64))
                .unwrap()
        })
    });
    group.bench_function("negative_lookup_8layers_hot", |b| {
        b.iter(|| {
            i += 1;
            black_box(overlay.lookup(Ino::ROOT, &format!("absent{}", i % 64)))
        })
    });
    group.finish();
}

/// Not a timing benchmark: prints the dedup ratio for N containers of one
/// image, the headline number of the subsystem.
fn report_container_dedup(_c: &mut Criterion) {
    let k = boot_host(SimClock::new());
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "1")
            .layer("base")
            .text("/etc/base.conf", &"shared base content ".repeat(2000))
            .layer("app")
            .text("/etc/app.conf", &"application payload ".repeat(3000))
            .entrypoint("/bin/app")
            .build(),
    );
    let rt = ContainerRuntime::new(EngineKind::Docker, k, registry);
    const N: usize = 100;
    for i in 0..N {
        rt.run(&format!("c{i}"), "app:1").unwrap();
    }
    let stats = rt.blob_store().stats();
    let image_bytes = rt.registry().get("app:1").unwrap().size_bytes();
    let flat = N as u64 * image_bytes;
    println!(
        "container_dedup: {N} containers, physical={} B vs {} B flattened \
         ({:.0}x saving), image={} B, ingest-dedup ratio={:.1}x",
        stats.physical_bytes,
        flat,
        flat as f64 / stats.physical_bytes.max(1) as f64,
        image_bytes,
        stats.dedup_ratio()
    );
}

criterion_group!(
    benches,
    bench_blob_ingest,
    bench_copy_up,
    bench_merged_readdir_and_lookup,
    bench_dentry_cache,
    report_container_dedup
);
criterion_main!(benches);
