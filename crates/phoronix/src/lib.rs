//! A reproduction of the paper's Phoronix disk-suite evaluation (§5.2).
//!
//! The paper runs 20 disk benchmarks from the Phoronix Test Suite on an EC2
//! m4.xlarge against ext4-on-EBS-gp2, once natively and once through
//! CntrFS, and reports the relative overhead per benchmark (Figure 2). This
//! crate implements each workload's I/O pattern against the simulated stack
//! and measures virtual time for both targets:
//!
//! * the slow outliers come from CntrFS's architecture: cold lookups
//!   (Compilebench, PostMark), per-write `security.capability` round trips
//!   (Apachebench, IOzone write), and serialized formerly-async requests
//!   (AIO-Stress);
//! * the *faster-than-native* outliers (FIO, PGBench, Threaded-I/O write)
//!   come from the writeback cache "delaying the sync operation" (§3.3):
//!   `fdatasync` through CntrFS is absorbed by background writeback, while
//!   the native run pays the device barrier;
//! * the rest are bounded by the page cache or the disk on both sides and
//!   land near 1.0×.
//!
//! [`mod@env`] builds the two targets; [`suite`] implements the workloads and
//! the Figure 2/3/4 runners.

pub mod env;
pub mod suite;

pub use env::{PerfEnv, Target};
pub use suite::{
    figure2, figure3, figure4, run_workload, BenchRow, Figure3Row, Figure4Row, Workload,
    ALL_WORKLOADS,
};
