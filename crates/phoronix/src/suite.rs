//! The 20 Phoronix workloads and the figure runners.
//!
//! Workload sizes are scaled down ~8× from the paper's (virtual time is
//! exact regardless; real memory and wall-clock stay laptop-friendly). Each
//! workload reproduces the I/O *pattern* the paper identifies as that
//! benchmark's bottleneck — see the per-workload comments.

use crate::env::{PerfEnv, Target};
use cntr_fuse::{FuseConfig, InitFlags};
use cntr_types::cost::CpuCosts;
use cntr_types::{OpenFlags, SysResult, Timespec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// One Phoronix benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 128 MB of 64 KiB asynchronous writes. Native uses `O_DIRECT` + aio;
    /// CntrFS rejects `O_DIRECT`, so requests fall back to synchronous
    /// buffered writes with periodic fsync (paper: 2.6×).
    AioStress,
    /// 20 K http requests: CPU + cached content read + a small access-log
    /// append, which costs an uncached `security.capability` lookup per
    /// write on FUSE (paper: 1.5×).
    ApacheBench,
    /// Compile a kernel module: read sources, write objects, compile CPU
    /// (paper: 2.3×).
    CompileBenchCompile,
    /// Unpack-like creation of a source tree (paper: 7.3×).
    CompileBenchCreate,
    /// Recursively read a cold source tree: pure lookup storm (paper: 13.3×).
    CompileBenchRead,
    /// File-server op mix with N clients; mostly cache-served after warmup
    /// (paper: 1.4× at 1 client, ~1.0× at 12/48/128).
    Dbench(u32),
    /// 200 × 1 MB file creates with fsync — disk bound on both sides
    /// (paper: 1.0×).
    FsMark,
    /// Fileserver profile: 80% random reads / 20% random writes on a warm
    /// file, fdatasync at intervals. The writeback cache absorbs the syncs
    /// (paper: 0.2× — CntrFS *faster*).
    Fio,
    /// Read 192 MB, compress (CPU-bound), write back (paper: 1.0×).
    Gzip,
    /// Sequential 4 KiB-record reads of a cold file (paper: 2.1×).
    IozoneRead,
    /// Sequential 4 KiB-record writes with final fsync (paper: 1.2×).
    IozoneWrite,
    /// Mail-server transactions on small files: create/delete-heavy, lookup
    /// dominated (paper: 7.1×).
    Postmark,
    /// OLTP transactions: CPU + cached table reads + WAL appends with group
    /// commits via fdatasync (paper: 0.4× — CntrFS faster).
    PgBench,
    /// Row inserts each followed by a *full* fsync and a journal-file
    /// create/delete cycle (paper: 1.9×).
    Sqlite,
    /// 4 reader threads over a warm 64 MB file (paper: 1.1×).
    ThreadedIoRead,
    /// 4 writer threads, fdatasync at the end of each stream (paper: 0.3×
    /// — CntrFS faster).
    ThreadedIoWrite,
    /// Unpack a tarball: one large sequential read, many small creates
    /// (paper: 1.2×).
    UnpackTarball,
}

/// The Figure 2 row order (as in the paper's plot).
pub const ALL_WORKLOADS: [Workload; 20] = [
    Workload::AioStress,
    Workload::ApacheBench,
    Workload::CompileBenchCompile,
    Workload::CompileBenchCreate,
    Workload::CompileBenchRead,
    Workload::Dbench(1),
    Workload::Dbench(12),
    Workload::Dbench(128),
    Workload::Dbench(48),
    Workload::FsMark,
    Workload::Fio,
    Workload::Gzip,
    Workload::IozoneRead,
    Workload::IozoneWrite,
    Workload::Postmark,
    Workload::PgBench,
    Workload::Sqlite,
    Workload::ThreadedIoRead,
    Workload::ThreadedIoWrite,
    Workload::UnpackTarball,
];

impl Workload {
    /// Display name matching the paper's x-axis.
    pub fn name(&self) -> String {
        match self {
            Workload::AioStress => "AIO-Stress".into(),
            Workload::ApacheBench => "Apachebench".into(),
            Workload::CompileBenchCompile => "Compileb.: Comp.".into(),
            Workload::CompileBenchCreate => "Compileb.: Create".into(),
            Workload::CompileBenchRead => "Compileb.: Read".into(),
            Workload::Dbench(n) => format!("Dbench: {n} Clients"),
            Workload::FsMark => "FS-Mark".into(),
            Workload::Fio => "FIO".into(),
            Workload::Gzip => "Gzip".into(),
            Workload::IozoneRead => "IOzone: Read".into(),
            Workload::IozoneWrite => "IOzone: Write".into(),
            Workload::Postmark => "PostMark".into(),
            Workload::PgBench => "Pgbench".into(),
            Workload::Sqlite => "SQlite".into(),
            Workload::ThreadedIoRead => "Threaded I/O: Read".into(),
            Workload::ThreadedIoWrite => "Threaded I/O: Write".into(),
            Workload::UnpackTarball => "Unpack tarball".into(),
        }
    }

    /// The relative overhead the paper reports for this benchmark (Figure 2).
    pub fn paper_overhead(&self) -> f64 {
        match self {
            Workload::AioStress => 2.6,
            Workload::ApacheBench => 1.5,
            Workload::CompileBenchCompile => 2.3,
            Workload::CompileBenchCreate => 7.3,
            Workload::CompileBenchRead => 13.3,
            Workload::Dbench(1) => 1.4,
            Workload::Dbench(12) => 0.9,
            Workload::Dbench(128) => 1.0,
            Workload::Dbench(_) => 1.0,
            Workload::FsMark => 1.0,
            Workload::Fio => 0.2,
            Workload::Gzip => 1.0,
            Workload::IozoneRead => 2.1,
            Workload::IozoneWrite => 1.2,
            Workload::Postmark => 7.1,
            Workload::PgBench => 0.4,
            Workload::Sqlite => 1.9,
            Workload::ThreadedIoRead => 1.1,
            Workload::ThreadedIoWrite => 0.3,
            Workload::UnpackTarball => 1.2,
        }
    }

    /// The band the reproduction must land in for `cargo test` to pass.
    /// Shape-preserving, not point-exact (see EXPERIMENTS.md).
    pub fn accepted_band(&self) -> (f64, f64) {
        match self {
            Workload::AioStress => (1.4, 4.5),
            Workload::ApacheBench => (1.15, 2.4),
            Workload::CompileBenchCompile => (1.4, 4.0),
            Workload::CompileBenchCreate => (3.0, 13.0),
            Workload::CompileBenchRead => (6.0, 25.0),
            Workload::Dbench(1) => (0.9, 2.4),
            Workload::Dbench(_) => (0.7, 2.0),
            Workload::FsMark => (0.8, 1.45),
            Workload::Fio => (0.03, 0.6),
            Workload::Gzip => (0.9, 1.3),
            Workload::IozoneRead => (0.95, 3.0),
            Workload::IozoneWrite => (0.9, 2.6),
            Workload::Postmark => (3.0, 13.0),
            Workload::PgBench => (0.08, 0.8),
            Workload::Sqlite => (1.2, 3.2),
            Workload::ThreadedIoRead => (0.9, 1.7),
            Workload::ThreadedIoWrite => (0.03, 0.7),
            Workload::UnpackTarball => (0.95, 2.4),
        }
    }

    /// Runs the workload, returning virtual time spent.
    pub fn run(&self, env: &PerfEnv) -> Timespec {
        match self {
            Workload::AioStress => aio_stress(env),
            Workload::ApacheBench => apache_bench(env),
            Workload::CompileBenchCompile => compilebench_compile(env),
            Workload::CompileBenchCreate => compilebench_create(env),
            Workload::CompileBenchRead => compilebench_read(env),
            Workload::Dbench(n) => dbench(env, *n),
            Workload::FsMark => fs_mark(env),
            Workload::Fio => fio(env),
            Workload::Gzip => gzip(env),
            Workload::IozoneRead => iozone_read(env),
            Workload::IozoneWrite => iozone_write(env),
            Workload::Postmark => postmark(env),
            Workload::PgBench => pgbench(env),
            Workload::Sqlite => sqlite(env),
            Workload::ThreadedIoRead => threaded_io_read(env),
            Workload::ThreadedIoWrite => threaded_io_write(env),
            Workload::UnpackTarball => unpack_tarball(env),
        }
    }
}

// ---------------------------------------------------------------------
// Workload implementations
// ---------------------------------------------------------------------

fn aio_stress(env: &PerfEnv) -> Timespec {
    env.measure(|e| {
        let total = 48 * MB;
        let block = 64 * KB as usize;
        match e.try_open_direct("aio.dat") {
            Ok(fd) => {
                // Native: async direct writes stream at device speed.
                let mut off = 0u64;
                while off < total {
                    e.pwrite_zeroes(fd, off, block)?;
                    off += block as u64;
                }
                e.close(fd)
            }
            Err(_) => {
                // CntrFS: no O_DIRECT → synchronous buffered fallback with
                // periodic full fsync ("all requests are, in fact, processed
                // synchronously", §5.2.2).
                let fd = e.open("aio.dat", OpenFlags::create())?;
                let mut off = 0u64;
                let mut ops = 0u32;
                while off < total {
                    e.pwrite_zeroes(fd, off, block)?;
                    off += block as u64;
                    ops += 1;
                    if ops.is_multiple_of(4) {
                        e.fsync(fd)?;
                    }
                }
                e.fsync(fd)?;
                e.close(fd)
            }
        }
    })
}

fn apache_bench(env: &PerfEnv) -> Timespec {
    let cpu = CpuCosts::calibrated();
    // Content corpus, served warm.
    for i in 0..16 {
        env.create_file(&format!("htdocs-{i}.html"), 3 * KB)
            .unwrap();
    }
    for i in 0..16 {
        let fd = env
            .open(&format!("htdocs-{i}.html"), OpenFlags::RDONLY)
            .unwrap();
        env.pread_discard(fd, 0, 3 * KB as usize).unwrap();
        env.close(fd).unwrap();
    }
    env.measure(|e| {
        let log = e.open("access.log", OpenFlags::append())?;
        let mut log_off = 0u64;
        for i in 0..6_000u64 {
            e.cpu(cpu.http_request_ns / 2);
            let fd = e.open(&format!("htdocs-{}.html", i % 16), OpenFlags::RDONLY)?;
            e.pread_discard(fd, 0, 3 * KB as usize)?;
            e.close(fd)?;
            // The ~90-byte access-log line: on FUSE each write costs an
            // uncached security.capability round trip.
            e.pwrite_zeroes(log, log_off, 90)?;
            log_off += 90;
        }
        e.close(log)
    })
}

fn make_tree(env: &PerfEnv, dirs: u32, files: u32, file_size: u64) -> SysResult<()> {
    for d in 0..dirs {
        env.mkdir(&format!("tree-{d}"))?;
        env.mkdir(&format!("tree-{d}/kernel"))?;
        env.mkdir(&format!("tree-{d}/kernel/sched"))?;
        for f in 0..files {
            env.create_file(&format!("tree-{d}/kernel/sched/src-{f}.c"), file_size)?;
        }
    }
    Ok(())
}

fn compilebench_compile(env: &PerfEnv) -> Timespec {
    let cpu = CpuCosts::calibrated();
    make_tree(env, 8, 10, 8 * KB).unwrap();
    env.kernel.sync().unwrap();
    env.drop_meta_caches();
    env.measure(|e| {
        for d in 0..8 {
            for f in 0..10 {
                let dir = format!("tree-{d}/kernel/sched");
                let src = e.open(&format!("{dir}/src-{f}.c"), OpenFlags::RDONLY)?;
                e.pread_discard(src, 0, 8 * KB as usize)?;
                e.close(src)?;
                e.cpu(cpu.compile_file_ns / 32);
                let obj = e.open(&format!("{dir}/src-{f}.o"), OpenFlags::create())?;
                e.pwrite_zeroes(obj, 0, 12 * KB as usize)?;
                e.close(obj)?;
            }
        }
        Ok(())
    })
}

fn compilebench_create(env: &PerfEnv) -> Timespec {
    env.measure(|e| make_tree(e, 20, 15, 16 * KB))
}

fn compilebench_read(env: &PerfEnv) -> Timespec {
    make_tree(env, 20, 15, 4 * KB).unwrap();
    env.kernel.sync().unwrap();
    env.drop_meta_caches();
    env.measure(|e| {
        // Recursive cold read: readdir + per-file lookup + read — the
        // lookup storm that makes this the paper's worst case (13.3×).
        // Every CntrFS lookup costs a round trip plus the server-side
        // open+stat pair; native lookups are dcache hits.
        for d in 0..20 {
            let dir = format!("tree-{d}/kernel/sched");
            let entries = e.kernel.readdir(e.pid, &e.p(&dir))?;
            for entry in entries.iter().filter(|x| x.name.starts_with("src")) {
                let rel = format!("{dir}/{}", entry.name);
                e.stat(&rel)?;
                let fd = e.open(&rel, OpenFlags::RDONLY)?;
                e.pread_discard(fd, 0, 4 * KB as usize)?;
                e.close(fd)?;
            }
        }
        Ok(())
    })
}

fn dbench(env: &PerfEnv, clients: u32) -> Timespec {
    let mut rng = SmallRng::seed_from_u64(7);
    // Warm per-client working sets.
    for c in 0..clients {
        env.mkdir(&format!("client-{c}")).unwrap();
        for f in 0..8 {
            env.create_file(&format!("client-{c}/f{f}"), 64 * KB)
                .unwrap();
        }
    }
    env.measure(|e| {
        // dbench clients open their working set once and issue many ops on
        // the open handles, which is why the paper sees ~1.0× at scale:
        // with warm caches CntrFS serves the mix from the kernel too.
        for c in 0..clients {
            let fds: Vec<u32> = (0..8)
                .map(|f| e.open(&format!("client-{c}/f{f}"), OpenFlags::RDWR))
                .collect::<SysResult<_>>()?;
            for _ in 0..100 {
                let fd = fds[rng.gen_range(0..fds.len())];
                match rng.gen_range(0..10) {
                    0 => {
                        e.pwrite_zeroes(fd, rng.gen_range(0..32 * KB), 4 * KB as usize)?;
                    }
                    1 => {
                        e.stat(&format!("client-{c}/f{}", rng.gen_range(0..8)))?;
                    }
                    _ => {
                        e.pread_discard(fd, rng.gen_range(0..32 * KB), 8 * KB as usize)?;
                    }
                }
            }
            for fd in fds {
                e.close(fd)?;
            }
        }
        Ok(())
    })
}

fn fs_mark(env: &PerfEnv) -> Timespec {
    env.measure(|e| {
        for i in 0..50 {
            let rel = format!("mark-{i}");
            let fd = e.open(&rel, OpenFlags::create())?;
            let mut off = 0u64;
            while off < MB {
                e.pwrite_zeroes(fd, off, 16 * KB as usize)?;
                off += 16 * KB;
            }
            // fs_mark's default is fsync-per-file: disk bound on both sides.
            e.fsync(fd)?;
            e.close(fd)?;
        }
        Ok(())
    })
}

fn fio(env: &PerfEnv) -> Timespec {
    let mut rng = SmallRng::seed_from_u64(11);
    let file_size = 128 * MB;
    env.create_file("fio.dat", file_size).unwrap();
    // The dataset is warm (fio lays the file out first), as in the paper's
    // fileserver profile.
    env.measure(|e| {
        let fd = e.open("fio.dat", OpenFlags::RDWR)?;
        let block = 140 * KB as usize;
        for op in 0..800u32 {
            let off = rng.gen_range(0..(file_size - block as u64));
            if rng.gen_range(0..10) < 8 {
                e.pread_discard(fd, off, block)?;
            } else {
                e.pwrite_zeroes(fd, off, block)?;
            }
            if op % 256 == 255 {
                // fdatasync: honoured natively, absorbed by CNTR's delayed
                // sync under the writeback cache (§3.3).
                e.fdatasync(fd)?;
            }
        }
        e.fdatasync(fd)?;
        e.close(fd)
    })
}

fn gzip(env: &PerfEnv) -> Timespec {
    let cpu = CpuCosts::calibrated();
    env.create_file("big.bin", 64 * MB).unwrap();
    env.kernel.sync().unwrap();
    env.drop_caches().unwrap();
    env.measure(|e| {
        let src = e.open("big.bin", OpenFlags::RDONLY)?;
        let dst = e.open("big.bin.gz", OpenFlags::create())?;
        let mut off = 0u64;
        let mut out = 0u64;
        while off < 64 * MB {
            e.pread_discard(src, off, 128 * KB as usize)?;
            e.cpu(cpu.gzip(128 * KB));
            e.pwrite_zeroes(dst, out, 32 * KB as usize)?;
            off += 128 * KB;
            out += 32 * KB;
        }
        e.close(src)?;
        e.close(dst)
    })
}

fn iozone_read(env: &PerfEnv) -> Timespec {
    // Read-after-write, as iozone does: the native copy of the file still
    // fits in the page cache, but CntrFS's double-buffered copies (client
    // pages + server pages) do not — early pages were evicted by the time
    // the read pass returns to them (the paper's 8 GB / 16 GB RAM case).
    let size = 96 * MB;
    env.create_file("ioz.dat", size).unwrap();
    env.kernel.sync().unwrap();
    env.measure(|e| {
        let fd = e.open("ioz.dat", OpenFlags::RDONLY)?;
        let mut off = 0u64;
        while off < size {
            e.pread_discard(fd, off, 4 * KB as usize)?;
            off += 4 * KB;
        }
        e.close(fd)
    })
}

fn iozone_write(env: &PerfEnv) -> Timespec {
    env.measure(|e| {
        let size = 96 * MB;
        let fd = e.open("ioz-w.dat", OpenFlags::create())?;
        let mut off = 0u64;
        while off < size {
            e.pwrite_zeroes(fd, off, 4 * KB as usize)?;
            off += 4 * KB;
        }
        // IOzone includes flush in the write timing (-e).
        e.fsync(fd)?;
        e.close(fd)
    })
}

fn postmark(env: &PerfEnv) -> Timespec {
    let mut rng = SmallRng::seed_from_u64(13);
    env.mkdir("mail").unwrap();
    for i in 0..150 {
        env.create_file(&format!("mail/m{i}"), rng.gen_range(4 * KB..32 * KB))
            .unwrap();
    }
    env.measure(|e| {
        let mut next_id = 150u32;
        let mut live: Vec<u32> = (0..150).collect();
        for _ in 0..1000 {
            match rng.gen_range(0..10) {
                0..=2 => {
                    let rel = format!("mail/m{next_id}");
                    e.create_file(&rel, rng.gen_range(4 * KB..32 * KB))?;
                    live.push(next_id);
                    next_id += 1;
                }
                3..=4 => {
                    if live.len() > 10 {
                        let idx = rng.gen_range(0..live.len());
                        let id = live.swap_remove(idx);
                        // Deleted before ever being synced: under CntrFS the
                        // data never reaches the disk at all.
                        e.unlink(&format!("mail/m{id}"))?;
                    }
                }
                5..=7 => {
                    let id = live[rng.gen_range(0..live.len())];
                    let fd = e.open(&format!("mail/m{id}"), OpenFlags::RDONLY)?;
                    e.pread_discard(fd, 0, 4 * KB as usize)?;
                    e.close(fd)?;
                }
                _ => {
                    let id = live[rng.gen_range(0..live.len())];
                    let fd = e.open(&format!("mail/m{id}"), OpenFlags::append())?;
                    e.pwrite_zeroes(fd, 0, KB as usize)?;
                    e.close(fd)?;
                }
            }
        }
        Ok(())
    })
}

fn pgbench(env: &PerfEnv) -> Timespec {
    let mut rng = SmallRng::seed_from_u64(17);
    env.create_file("table.dat", 32 * MB).unwrap();
    // Warm the table.
    let fd = env.open("table.dat", OpenFlags::RDONLY).unwrap();
    let mut off = 0u64;
    while off < 32 * MB {
        env.pread_discard(fd, off, 128 * KB as usize).unwrap();
        off += 128 * KB;
    }
    env.close(fd).unwrap();
    env.measure(|e| {
        let table = e.open("table.dat", OpenFlags::RDWR)?;
        let wal = e.open("wal.log", OpenFlags::append())?;
        let mut wal_off = 0u64;
        for txn in 0..800u32 {
            e.cpu(120_000); // parse/plan/execute
            for _ in 0..2 {
                let off = rng.gen_range(0..32 * MB - 8 * KB);
                e.pread_discard(table, off, 8 * KB as usize)?;
            }
            e.pwrite_zeroes(wal, wal_off, 8 * KB as usize)?;
            wal_off += 8 * KB;
            // Group commit: wal_sync_method = fdatasync, every ~16 txns.
            if txn % 16 == 15 {
                e.fdatasync(wal)?;
            }
        }
        e.fdatasync(wal)?;
        e.close(wal)?;
        e.close(table)
    })
}

fn sqlite(env: &PerfEnv) -> Timespec {
    let cpu = CpuCosts::calibrated();
    env.create_file("app.db", 4 * MB).unwrap();
    env.measure(|e| {
        let db = e.open("app.db", OpenFlags::RDWR)?;
        let mut off = 4 * MB;
        for i in 0..200u32 {
            e.cpu(cpu.sql_insert_ns);
            // Rollback journal: created, written, synced, deleted per txn.
            let journal = format!("app.db-journal-{}", i % 2);
            let jfd = e.open(&journal, OpenFlags::create())?;
            e.pwrite_zeroes(jfd, 0, 4 * KB as usize)?;
            e.fsync(jfd)?; // full fsync: honoured on both targets
            e.close(jfd)?;
            e.pwrite_zeroes(db, off, 512)?;
            off += 512;
            e.fsync(db)?;
            e.unlink(&journal)?;
        }
        e.close(db)
    })
}

fn threaded_io_read(env: &PerfEnv) -> Timespec {
    env.create_file("tio.dat", 32 * MB).unwrap();
    env.measure(|e| {
        let fd = e.open("tio.dat", OpenFlags::RDONLY)?;
        // 4 logical reader threads × 1 pass each; the first pass may be
        // cold, the rest hit the page cache.
        for _ in 0..4 {
            let mut off = 0u64;
            while off < 32 * MB {
                e.pread_discard(fd, off, 64 * KB as usize)?;
                off += 64 * KB;
            }
        }
        e.close(fd)
    })
}

fn threaded_io_write(env: &PerfEnv) -> Timespec {
    env.measure(|e| {
        for t in 0..4 {
            let fd = e.open(&format!("tio-w{t}.dat"), OpenFlags::create())?;
            let mut off = 0u64;
            while off < 32 * MB {
                e.pwrite_zeroes(fd, off, 64 * KB as usize)?;
                off += 64 * KB;
            }
            // Each stream ends with fdatasync — absorbed by CNTR's delayed
            // sync, a full device drain natively.
            e.fdatasync(fd)?;
            e.close(fd)?;
        }
        Ok(())
    })
}

fn unpack_tarball(env: &PerfEnv) -> Timespec {
    env.create_file("linux.tar", 48 * MB).unwrap();
    env.kernel.sync().unwrap();
    env.drop_caches().unwrap();
    env.measure(|e| {
        let tar = e.open("linux.tar", OpenFlags::RDONLY)?;
        e.mkdir("linux-src")?;
        let mut tar_off = 0u64;
        for i in 0..200u32 {
            e.pread_discard(tar, tar_off, 240 * KB as usize)?;
            tar_off += 240 * KB;
            let fd = e.open(&format!("linux-src/f{i}.c"), OpenFlags::create())?;
            e.pwrite_zeroes(fd, 0, 24 * KB as usize)?;
            e.close(fd)?;
        }
        e.close(tar)
    })
}

/// IOzone sequential read with a cold *client* cache but a warm server:
/// every 4 KiB record crosses the FUSE protocol (readahead batches it into
/// 128 KiB requests) without touching the disk. This is the configuration
/// where the transfer-path optimizations are visible — Figures 3(d) and 4.
fn iozone_read_fuse_cold(env: &PerfEnv) -> Timespec {
    let size = 96 * MB;
    env.create_file("ioz.dat", size).unwrap();
    env.kernel.sync().unwrap();
    env.drop_client_pages().unwrap();
    env.measure(|e| {
        let fd = e.open("ioz.dat", OpenFlags::RDONLY)?;
        let mut off = 0u64;
        while off < size {
            e.pread_discard(fd, off, 4 * KB as usize)?;
            off += 4 * KB;
        }
        e.close(fd)
    })
}

// ---------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------

/// One Figure 2 row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Native virtual time.
    pub native: Timespec,
    /// CntrFS virtual time.
    pub cntrfs: Timespec,
    /// The paper's reported overhead.
    pub paper: f64,
    /// Accepted band.
    pub band: (f64, f64),
}

impl BenchRow {
    /// Measured relative overhead (>1 = CntrFS slower).
    pub fn overhead(&self) -> f64 {
        self.cntrfs.as_nanos() as f64 / self.native.as_nanos().max(1) as f64
    }

    /// True if the measured overhead falls in the accepted band.
    pub fn in_band(&self) -> bool {
        let (lo, hi) = self.band;
        (lo..=hi).contains(&self.overhead())
    }
}

/// Builds the environment a workload runs in. IOzone's read test uses a
/// page cache sized between 1× and 2× its file (see [`Workload::IozoneRead`]).
pub fn env_for(w: Workload, target: Target) -> PerfEnv {
    let _ = w;
    PerfEnv::build(target)
}

/// Runs one workload on both targets (fresh environments each).
pub fn run_workload(w: Workload, fuse: FuseConfig) -> BenchRow {
    let native_env = env_for(w, Target::Native);
    let native = w.run(&native_env);
    let cntr_env = env_for(w, Target::Cntrfs(fuse));
    let cntrfs = w.run(&cntr_env);
    BenchRow {
        name: w.name(),
        native,
        cntrfs,
        paper: w.paper_overhead(),
        band: w.accepted_band(),
    }
}

/// Figure 2: every benchmark with CNTR's shipping configuration.
pub fn figure2() -> Vec<BenchRow> {
    ALL_WORKLOADS
        .iter()
        // Figures are calibrated against the paper's published
        // configuration (splice-write off): `FuseConfig::paper()`.
        .map(|w| run_workload(*w, FuseConfig::paper()))
        .collect()
}

/// One Figure 3 ablation panel.
#[derive(Debug, Clone)]
pub struct Figure3Row {
    /// Panel label.
    pub panel: &'static str,
    /// Optimization toggled.
    pub optimization: &'static str,
    /// Workload time with the optimization off.
    pub before: Timespec,
    /// Workload time with it on.
    pub after: Timespec,
}

impl Figure3Row {
    /// Speedup from the optimization.
    pub fn speedup(&self) -> f64 {
        self.before.as_nanos() as f64 / self.after.as_nanos().max(1) as f64
    }
}

/// Figure 3: each §3.3 optimization toggled individually.
pub fn figure3() -> Vec<Figure3Row> {
    let base = FuseConfig::paper();
    let toggle = |f: fn(&mut InitFlags)| {
        let mut flags = base.flags;
        f(&mut flags);
        base.with_flags(flags)
    };

    // (a) Read cache (FOPEN_KEEP_CACHE): threaded re-reads.
    let off = toggle(|f| f.keep_cache = false);
    let a_before = Workload::ThreadedIoRead.run(&PerfEnv::build(Target::Cntrfs(off)));
    let a_after = Workload::ThreadedIoRead.run(&PerfEnv::build(Target::Cntrfs(base)));

    // (b) Writeback cache: sequential writes.
    let off = toggle(|f| f.writeback_cache = false);
    let b_before = Workload::IozoneWrite.run(&PerfEnv::build(Target::Cntrfs(off)));
    let b_after = Workload::IozoneWrite.run(&PerfEnv::build(Target::Cntrfs(base)));

    // (c) Batching (FUSE_PARALLEL_DIROPS): compilebench read.
    let off = toggle(|f| f.parallel_dirops = false);
    let c_before = Workload::CompileBenchRead.run(&PerfEnv::build(Target::Cntrfs(off)));
    let c_after = Workload::CompileBenchRead.run(&PerfEnv::build(Target::Cntrfs(base)));

    // (d) Splice read: sequential reads served by the server's cache, so
    // the reply-transfer cost is visible (the disk would mask it).
    let off = toggle(|f| f.splice_read = false);
    let d_before = iozone_read_fuse_cold(&PerfEnv::build(Target::Cntrfs(off)));
    let d_after = iozone_read_fuse_cold(&PerfEnv::build(Target::Cntrfs(base)));

    vec![
        Figure3Row {
            panel: "(a)",
            optimization: "Read cache (FOPEN_KEEP_CACHE)",
            before: a_before,
            after: a_after,
        },
        Figure3Row {
            panel: "(b)",
            optimization: "Writeback cache (FUSE_WRITEBACK_CACHE)",
            before: b_before,
            after: b_after,
        },
        Figure3Row {
            panel: "(c)",
            optimization: "Batching (FUSE_PARALLEL_DIROPS)",
            before: c_before,
            after: c_after,
        },
        Figure3Row {
            panel: "(d)",
            optimization: "Splice read (FUSE_SPLICE_READ)",
            before: d_before,
            after: d_after,
        },
    ]
}

/// One Figure 4 point: sequential read throughput vs worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Figure4Row {
    /// CntrFS worker threads.
    pub threads: usize,
    /// Measured sequential-read throughput (MB/s, virtual).
    pub throughput_mb_s: f64,
}

/// Figure 4: IOzone sequential read with 1–16 CntrFS threads.
///
/// Each point runs over [`Target::CntrfsThreaded`]: the configured worker
/// count is a pool of **real OS threads**, and every FUSE request crosses
/// the threaded `/dev/fuse` queue to be served on a worker against the
/// sharded kernel. As in the paper's experiment the workload itself is a
/// single sequential reader, so one request is in flight at a time and the
/// thread-count *deltas* in the curve come from the virtual clock pricing
/// the per-request worker synchronization — the dispatch is real, the
/// worker-contention cost is modeled. (Real multi-threaded wall-clock
/// scaling against the sharded kernel is measured by the `kernel_scale`
/// criterion bench.)
pub fn figure4() -> Vec<Figure4Row> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&threads| {
            let cfg = FuseConfig::paper().with_workers(threads);
            let env = PerfEnv::build(Target::CntrfsThreaded(cfg));
            let t = iozone_read_fuse_cold(&env);
            let mb = 96.0;
            Figure4Row {
                threads,
                throughput_mb_s: mb / t.as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration test: every Figure 2 row must land in its
    /// accepted band, preserving the paper's shape (who wins, roughly by
    /// how much).
    #[test]
    fn figure2_shape_matches_paper() {
        let rows = figure2();
        let mut failures = Vec::new();
        for r in &rows {
            if !r.in_band() {
                failures.push(format!(
                    "{}: measured {:.2}x, paper {:.1}x, band {:?} (native={}, cntrfs={})",
                    r.name,
                    r.overhead(),
                    r.paper,
                    r.band,
                    r.native,
                    r.cntrfs
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "out-of-band rows:\n{}",
            failures.join("\n")
        );
        // Cross-row shape checks from the paper's summary (§5.2.1).
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .map(BenchRow::overhead)
                .expect("row present")
        };
        assert!(get("Compileb.: Read") > get("Compileb.: Comp."));
        assert!(get("Compileb.: Create") > get("Compileb.: Comp."));
        assert!(get("FIO") < 1.0, "FIO must be faster through CntrFS");
        assert!(get("Pgbench") < 1.0);
        assert!(get("Threaded I/O: Write") < 1.0);
        let below_1_5 = rows.iter().filter(|r| r.overhead() < 1.5).count();
        assert!(
            below_1_5 >= 10,
            "most benchmarks have moderate overhead; got {below_1_5}/20 below 1.5x"
        );
    }

    #[test]
    fn figure3_optimizations_all_help() {
        let rows = figure3();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.speedup() > 1.0,
                "{} must improve performance, got {:.2}x",
                r.optimization,
                r.speedup()
            );
        }
        // Read cache is the dominant win (paper: ~10x); splice is marginal
        // (paper: ~5%).
        assert!(
            rows[0].speedup() > 2.0,
            "keep_cache: {:.2}",
            rows[0].speedup()
        );
        assert!(
            rows[2].speedup() > 1.5,
            "parallel dirops: {:.2}",
            rows[2].speedup()
        );
        assert!(
            rows[3].speedup() < 1.35,
            "splice read must be a small win: {:.2}",
            rows[3].speedup()
        );
    }

    #[test]
    fn figure4_multithreading_costs_little() {
        let rows = figure4();
        let t1 = rows[0].throughput_mb_s;
        let t16 = rows.last().unwrap().throughput_mb_s;
        assert!(t16 < t1, "more workers must not be free");
        assert!(
            t16 > t1 * 0.80,
            "degradation stays mild (paper: up to ~8%): 1thr={t1:.0} 16thr={t16:.0}"
        );
    }
}
