//! Benchmark environments: native ext4-on-gp2 vs CntrFS over it.

use cntr_blockdev::{BlockDevice, DiskModel};
use cntr_core::CntrfsServer;
use cntr_fs::diskfs::diskfs_on;
use cntr_fs::memfs::memfs;
use cntr_fuse::{
    FuseClientFs, FuseConfig, InlineTransport, RingTransport, ThreadedTransport, Transport,
};
use cntr_kernel::kernel::KernelConfig;
use cntr_kernel::{CacheMode, Kernel, MountFlags};
use cntr_types::{DevId, Errno, Mode, OpenFlags, Pid, SimClock, SysResult, Timespec};
use std::sync::Arc;

/// Which path the workload exercises.
#[derive(Debug, Clone, Copy)]
pub enum Target {
    /// Directly on the ext4-like filesystem (the paper's baseline).
    Native,
    /// Through CntrFS mounted over the same filesystem, requests served on
    /// the calling thread (deterministic inline transport).
    Cntrfs(FuseConfig),
    /// Through CntrFS with `config.workers` **real OS worker threads**
    /// pulling requests off the `/dev/fuse` queue ([`ThreadedTransport`]) —
    /// the dispatch shape of the paper's Figure 4. Virtual-time accounting
    /// is unchanged (one request in flight per caller), so results stay
    /// deterministic while every request crosses a real thread boundary.
    CntrfsThreaded(FuseConfig),
    /// Through CntrFS over the io_uring-style [`RingTransport`]: real
    /// worker threads behind per-worker submission/completion rings with
    /// batched doorbells (`config.ring_depth`/`config.ring_batch`).
    /// Virtual-time accounting mirrors [`Target::CntrfsThreaded`] except
    /// the per-request worker-sync cost amortizes over the batch.
    CntrfsRing(FuseConfig),
}

/// A benchmark machine: gp2-backed `/data`, optionally re-exported through
/// CntrFS at `/mnt/cntr/data`.
pub struct PerfEnv {
    /// The machine.
    pub kernel: Kernel,
    /// The workload process.
    pub pid: Pid,
    /// Directory the workload runs in (on the measured filesystem).
    pub dir: String,
    /// The underlying block device (for I/O statistics).
    pub device: Arc<BlockDevice>,
    /// The FUSE client, when the target is CntrFS.
    pub client: Option<Arc<FuseClientFs>>,
}

impl PerfEnv {
    /// Builds an environment for `target`. All file content is synthetic
    /// (timing-only), so multi-gigabyte workloads cost no real memory.
    /// Runs under [`KernelConfig::paper_legacy`]: the published testbed's
    /// 12 GiB cache and inline (flusher-less) write-back, so the figure
    /// bands stay byte-exact against the paper profile.
    pub fn build(target: Target) -> PerfEnv {
        PerfEnv::build_with_cache(target, KernelConfig::paper_legacy().page_cache_limit)
    }

    /// Like [`PerfEnv::build`] with an explicit page-cache capacity — the
    /// IOzone read experiment sizes the cache between 1× and 2× the file so
    /// CntrFS's double buffering (client + server pages for the same bytes)
    /// no longer fits while the native single copy does (§5.2.2).
    pub fn build_with_cache(target: Target, page_cache_bytes: u64) -> PerfEnv {
        let clock = SimClock::new();
        let root = memfs(DevId(1), clock.clone());
        let config = KernelConfig {
            page_cache_limit: page_cache_bytes,
            ..KernelConfig::paper_legacy()
        };
        let kernel = Kernel::with_clock(clock.clone(), root, CacheMode::native(), config);
        let pid = kernel.fork(Pid::INIT).expect("fork workload proc");
        kernel
            .mkdir(pid, "/data", Mode::RWXR_XR_X)
            .expect("mkdir /data");

        let device = BlockDevice::new_synthetic(DiskModel::gp2(), clock.clone());
        let disk = diskfs_on(DevId(2), clock.clone(), Arc::clone(&device), 100 << 30);
        let mut cache = CacheMode::native();
        cache.synthetic = true;
        kernel
            .mount_fs(pid, "/data", disk, cache, MountFlags::default())
            .expect("mount /data");

        match target {
            Target::Native => PerfEnv {
                kernel,
                pid,
                dir: "/data".to_string(),
                device,
                client: None,
            },
            Target::Cntrfs(config)
            | Target::CntrfsThreaded(config)
            | Target::CntrfsRing(config) => {
                let server_pid = kernel.fork(Pid::INIT).expect("fork server");
                let server = CntrfsServer::new(kernel.clone(), server_pid);
                let transport: Arc<dyn Transport> = match target {
                    Target::CntrfsThreaded(_) => {
                        Arc::new(ThreadedTransport::new(server, config.workers))
                    }
                    Target::CntrfsRing(_) => Arc::new(RingTransport::from_config(server, &config)),
                    _ => InlineTransport::new(server),
                };
                let client =
                    FuseClientFs::mount(DevId(0xF00D), clock, kernel.cost(), config, transport)
                        .expect("mount cntrfs");
                let flags = client.effective_flags();
                let fuse_cache = CacheMode {
                    writeback: flags.writeback_cache,
                    keep_cache: flags.keep_cache,
                    synthetic: true,
                };
                kernel.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
                kernel
                    .mkdir(pid, "/mnt/cntr", Mode::RWXR_XR_X)
                    .expect("mkdir");
                kernel
                    .mount_fs(
                        pid,
                        "/mnt/cntr",
                        client.clone(),
                        fuse_cache,
                        MountFlags::default(),
                    )
                    .expect("mount");
                PerfEnv {
                    kernel,
                    pid,
                    dir: "/mnt/cntr/data".to_string(),
                    device,
                    client: Some(client),
                }
            }
        }
    }

    /// Absolute path inside the workload directory.
    pub fn p(&self, rel: &str) -> String {
        format!("{}/{rel}", self.dir)
    }

    /// Opens (optionally creating) a file.
    pub fn open(&self, rel: &str, flags: OpenFlags) -> SysResult<u32> {
        self.kernel
            .open(self.pid, &self.p(rel), flags, Mode::RW_R__R__)
    }

    /// Creates a directory.
    pub fn mkdir(&self, rel: &str) -> SysResult<()> {
        self.kernel.mkdir(self.pid, &self.p(rel), Mode::RWXR_XR_X)
    }

    /// Positional write of synthetic bytes (`len` zeroes).
    pub fn pwrite_zeroes(&self, fd: u32, offset: u64, len: usize) -> SysResult<usize> {
        // One shared zero buffer per call site would be noise; a pooled
        // thread-local keeps allocation out of the measurement loop.
        thread_local! {
            static ZEROES: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        ZEROES.with(|z| {
            let mut z = z.borrow_mut();
            if z.len() < len {
                z.resize(len, 0);
            }
            self.kernel.pwrite(self.pid, fd, offset, &z[..len])
        })
    }

    /// Positional read into a scratch buffer; returns bytes read.
    pub fn pread_discard(&self, fd: u32, offset: u64, len: usize) -> SysResult<usize> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|z| {
            let mut z = z.borrow_mut();
            if z.len() < len {
                z.resize(len, 0);
            }
            self.kernel.pread(self.pid, fd, offset, &mut z[..len])
        })
    }

    /// `fsync(2)` (full: includes the journal barrier on ext4).
    pub fn fsync(&self, fd: u32) -> SysResult<()> {
        self.kernel.fsync(self.pid, fd, false)
    }

    /// `fdatasync(2)` — the sync CNTR's writeback cache delays (§3.3).
    pub fn fdatasync(&self, fd: u32) -> SysResult<()> {
        self.kernel.fsync(self.pid, fd, true)
    }

    /// Closes a descriptor.
    pub fn close(&self, fd: u32) -> SysResult<()> {
        self.kernel.close(self.pid, fd)
    }

    /// Creates a file of `len` synthetic bytes, in 128 KiB chunks.
    pub fn create_file(&self, rel: &str, len: u64) -> SysResult<()> {
        let fd = self.open(rel, OpenFlags::create())?;
        let mut off = 0u64;
        while off < len {
            let chunk = (len - off).min(128 * 1024) as usize;
            self.pwrite_zeroes(fd, off, chunk)?;
            off += chunk as u64;
        }
        self.close(fd)
    }

    /// Deletes a file.
    pub fn unlink(&self, rel: &str) -> SysResult<()> {
        self.kernel.unlink(self.pid, &self.p(rel))
    }

    /// Stats a file.
    pub fn stat(&self, rel: &str) -> SysResult<cntr_types::Stat> {
        self.kernel.stat(self.pid, &self.p(rel))
    }

    /// Drops only metadata caches (dentries/attrs), keeping data pages warm
    /// — compilebench's "read tree" runs on a freshly created tree whose
    /// data is still cached but whose inodes have never been looked up.
    pub fn drop_meta_caches(&self) {
        if let Some(client) = &self.client {
            client.drop_caches();
        }
    }

    /// Drops the *client side* of a CntrFS double buffer: the FUSE mount's
    /// pages and the client's entry/attr caches, leaving the server's copy
    /// warm. Reads then cross the protocol on every miss without touching
    /// the disk — the configuration Figures 3(d) and 4 measure.
    pub fn drop_client_pages(&self) -> SysResult<()> {
        if let Some(client) = &self.client {
            self.kernel
                .drop_caches_for(cntr_fs::Filesystem::fs_id(client.as_ref()))?;
            client.drop_caches();
        }
        Ok(())
    }

    /// Drops all caches (between setup and a cold-read measurement phase).
    pub fn drop_caches(&self) -> SysResult<()> {
        self.kernel.drop_caches()?;
        // A fresh CntrFS attach also starts with cold client caches; the
        // readahead buffers die with handle release, but the entry/attr
        // caches must be emptied explicitly.
        if let Some(client) = &self.client {
            client.drop_caches();
        }
        Ok(())
    }

    /// Measures the virtual time consumed by `f`.
    pub fn measure(&self, f: impl FnOnce(&PerfEnv) -> SysResult<()>) -> Timespec {
        let start = self.kernel.clock().now();
        f(self).expect("workload must not fail");
        self.kernel.clock().now() - start
    }

    /// CPU work: advances the virtual clock without any I/O.
    pub fn cpu(&self, ns: u64) {
        self.kernel.clock().advance(ns);
    }

    /// Like [`PerfEnv::open`], but reporting `EINVAL` (used by AIO-Stress to
    /// detect the missing `O_DIRECT` support on CntrFS).
    pub fn try_open_direct(&self, rel: &str) -> Result<u32, Errno> {
        self.kernel.open(
            self.pid,
            &self.p(rel),
            OpenFlags::RDWR.with(OpenFlags::CREAT | OpenFlags::DIRECT),
            Mode::RW_R__R__,
        )
    }
}
