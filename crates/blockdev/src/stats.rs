//! I/O statistics counters.

use obs::{Counter, LazyCounter, Subsystem};

// Machine-wide totals, registered in the observability registry so
// `/proc/cntrstats` carries a blockdev section; the per-device `IoStats`
// cells below stay out of the registry (devices are created in bulk).
static OBS_READS: LazyCounter = LazyCounter::new(Subsystem::BlockDev, "blockdev.reads");
static OBS_WRITES: LazyCounter = LazyCounter::new(Subsystem::BlockDev, "blockdev.writes");
static OBS_BYTES_READ: LazyCounter = LazyCounter::new(Subsystem::BlockDev, "blockdev.bytes-read");
static OBS_BYTES_WRITTEN: LazyCounter =
    LazyCounter::new(Subsystem::BlockDev, "blockdev.bytes-written");
static OBS_FLUSHES: LazyCounter = LazyCounter::new(Subsystem::BlockDev, "blockdev.flushes");

/// Cumulative I/O statistics of a [`crate::BlockDevice`].
///
/// A thin view over [`obs::Counter`] cells: monotonically increasing and
/// thread-safe, mirrored into the machine-wide registered totals above.
/// Benchmarks use them to explain results: e.g. the FIO reproduction asserts
/// that the CntrFS-with-writeback run issues *fewer, larger* writes than
/// native.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: Counter,
    writes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    seq_ops: Counter,
    rand_ops: Counter,
    flushes: Counter,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Operations classified as sequential.
    pub seq_ops: u64,
    /// Operations classified as random.
    pub rand_ops: u64,
    /// Explicit cache flushes / barriers.
    pub flushes: u64,
}

impl IoSnapshot {
    /// Total operations.
    pub const fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean bytes per write, or 0 if no writes happened.
    pub fn avg_write_size(&self) -> u64 {
        self.bytes_written.checked_div(self.writes).unwrap_or(0)
    }

    /// Counter-wise difference (`self - earlier`), saturating.
    #[must_use]
    pub const fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            seq_ops: self.seq_ops.saturating_sub(earlier.seq_ops),
            rand_ops: self.rand_ops.saturating_sub(earlier.rand_ops),
            flushes: self.flushes.saturating_sub(earlier.flushes),
        }
    }
}

impl IoStats {
    /// Records a read of `len` bytes.
    pub fn record_read(&self, len: u64, sequential: bool) {
        self.reads.inc();
        self.bytes_read.add(len);
        OBS_READS.inc();
        OBS_BYTES_READ.add(len);
        self.record_kind(sequential);
    }

    /// Records a write of `len` bytes.
    pub fn record_write(&self, len: u64, sequential: bool) {
        self.writes.inc();
        self.bytes_written.add(len);
        OBS_WRITES.inc();
        OBS_BYTES_WRITTEN.add(len);
        self.record_kind(sequential);
    }

    /// Records a flush/barrier.
    pub fn record_flush(&self) {
        self.flushes.inc();
        OBS_FLUSHES.inc();
    }

    fn record_kind(&self, sequential: bool) {
        if sequential {
            self.seq_ops.inc();
        } else {
            self.rand_ops.inc();
        }
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.value(),
            writes: self.writes.value(),
            bytes_read: self.bytes_read.value(),
            bytes_written: self.bytes_written.value(),
            seq_ops: self.seq_ops.value(),
            rand_ops: self.rand_ops.value(),
            flushes: self.flushes.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_read(4096, true);
        s.record_write(8192, false);
        s.record_write(100, false);
        s.record_flush();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.bytes_written, 8292);
        assert_eq!(snap.seq_ops, 1);
        assert_eq!(snap.rand_ops, 2);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.ops(), 3);
        assert_eq!(snap.avg_write_size(), 4146);
    }

    #[test]
    fn delta_subtracts() {
        let s = IoStats::default();
        s.record_write(10, true);
        let a = s.snapshot();
        s.record_write(30, true);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 30);
    }

    #[test]
    fn avg_write_size_handles_zero() {
        assert_eq!(IoSnapshot::default().avg_write_size(), 0);
    }
}
