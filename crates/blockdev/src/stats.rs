//! I/O statistics counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O statistics of a [`crate::BlockDevice`].
///
/// All counters are monotonically increasing and thread-safe. Benchmarks use
/// them to explain results: e.g. the FIO reproduction asserts that the
/// CntrFS-with-writeback run issues *fewer, larger* writes than native.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seq_ops: AtomicU64,
    rand_ops: AtomicU64,
    flushes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Operations classified as sequential.
    pub seq_ops: u64,
    /// Operations classified as random.
    pub rand_ops: u64,
    /// Explicit cache flushes / barriers.
    pub flushes: u64,
}

impl IoSnapshot {
    /// Total operations.
    pub const fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean bytes per write, or 0 if no writes happened.
    pub fn avg_write_size(&self) -> u64 {
        self.bytes_written.checked_div(self.writes).unwrap_or(0)
    }

    /// Counter-wise difference (`self - earlier`), saturating.
    #[must_use]
    pub const fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            seq_ops: self.seq_ops.saturating_sub(earlier.seq_ops),
            rand_ops: self.rand_ops.saturating_sub(earlier.rand_ops),
            flushes: self.flushes.saturating_sub(earlier.flushes),
        }
    }
}

impl IoStats {
    /// Records a read of `len` bytes.
    pub fn record_read(&self, len: u64, sequential: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.record_kind(sequential);
    }

    /// Records a write of `len` bytes.
    pub fn record_write(&self, len: u64, sequential: bool) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(len, Ordering::Relaxed);
        self.record_kind(sequential);
    }

    /// Records a flush/barrier.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn record_kind(&self, sequential: bool) {
        if sequential {
            self.seq_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seq_ops: self.seq_ops.load(Ordering::Relaxed),
            rand_ops: self.rand_ops.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_read(4096, true);
        s.record_write(8192, false);
        s.record_write(100, false);
        s.record_flush();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.bytes_written, 8292);
        assert_eq!(snap.seq_ops, 1);
        assert_eq!(snap.rand_ops, 2);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.ops(), 3);
        assert_eq!(snap.avg_write_size(), 4146);
    }

    #[test]
    fn delta_subtracts() {
        let s = IoStats::default();
        s.record_write(10, true);
        let a = s.snapshot();
        s.record_write(30, true);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 30);
    }

    #[test]
    fn avg_write_size_handles_zero() {
        assert_eq!(IoSnapshot::default().avg_write_size(), 0);
    }
}
