//! A simulated block device with an EBS-gp2-like performance model.
//!
//! The CNTR paper's native baseline is ext4 on a 100 GB Amazon EBS gp2
//! volume (SSD-backed, network-attached, ~160 MB/s sequential, ~3000 burst
//! IOPS, sub-millisecond latency). This crate provides:
//!
//! * [`DiskModel`] — the latency/throughput/IOPS parameters,
//! * [`BlockDevice`] — a thread-safe block store that executes reads and
//!   writes, charges their cost to a shared [`cntr_types::SimClock`], and
//!   keeps I/O statistics,
//! * [`IoStats`] — counters used by benchmarks to explain *why* a
//!   configuration is fast or slow (e.g. writeback caching turning many small
//!   random writes into few large sequential ones — the FIO result in
//!   Figure 2).

mod device;
mod model;
mod stats;

pub use device::{BackgroundIo, BlockDevice};
pub use model::DiskModel;
pub use stats::IoStats;

/// Size of one device block (equal to the page size: 4 KiB).
pub const BLOCK_SIZE: usize = cntr_types::cost::PAGE_SIZE;
