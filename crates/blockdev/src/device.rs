//! The block device: storage plus the timing engine.

use crate::model::DiskModel;
use crate::stats::{IoSnapshot, IoStats};
use crate::BLOCK_SIZE;
use cntr_types::{SimClock, Timespec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One device block.
type Block = Box<[u8; BLOCK_SIZE]>;

fn zero_block() -> Block {
    Box::new([0u8; BLOCK_SIZE])
}

thread_local! {
    /// When set, I/O is *enqueued*: it occupies the device (advancing its
    /// `busy_until`) but does not advance the caller's clock — the model of
    /// background writeback, which runs off the application's critical path.
    /// A subsequent [`BlockDevice::flush`] (fsync barrier) waits for the
    /// backlog.
    static BACKGROUND_IO: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII guard marking I/O on this thread as background writeback.
pub struct BackgroundIo {
    prev: bool,
}

impl BackgroundIo {
    /// Enters background-I/O mode.
    pub fn enter() -> BackgroundIo {
        let prev = BACKGROUND_IO.with(|b| b.replace(true));
        BackgroundIo { prev }
    }
}

impl Drop for BackgroundIo {
    fn drop(&mut self) {
        BACKGROUND_IO.with(|b| b.set(self.prev));
    }
}

fn in_background() -> bool {
    BACKGROUND_IO.with(std::cell::Cell::get)
}

#[derive(Default)]
struct DeviceState {
    /// Sparse block store: unwritten blocks read as zeroes.
    blocks: HashMap<u64, Block>,
    /// Next block number that would continue the previous read sequentially.
    read_head: u64,
    /// Next block number that would continue the previous write sequentially.
    write_head: u64,
    /// Absolute virtual time at which the device becomes idle.
    busy_until: Timespec,
}

/// A thread-safe simulated block device.
///
/// Reads and writes move real bytes (so filesystems built on top are
/// functionally correct) and advance the shared [`SimClock`] according to the
/// [`DiskModel`]: the device is a single-queue resource, so an operation
/// starts no earlier than the completion of the previous one (`busy_until`),
/// which is what makes throughput caps emerge naturally from the model.
///
/// # Examples
///
/// ```
/// use cntr_blockdev::{BlockDevice, DiskModel};
/// use cntr_types::SimClock;
///
/// let clock = SimClock::new();
/// let dev = BlockDevice::new(DiskModel::gp2(), clock.clone());
/// dev.write(0, b"hello");
/// let mut buf = [0u8; 5];
/// dev.read(0, &mut buf);
/// assert_eq!(&buf, b"hello");
/// assert!(clock.now().as_nanos() > 0); // the I/O consumed virtual time
/// ```
pub struct BlockDevice {
    model: DiskModel,
    clock: SimClock,
    stats: Arc<IoStats>,
    /// When false, block contents are not materialized (benchmark mode):
    /// timing, heads and statistics behave identically, reads return zeroes.
    store_data: bool,
    state: Mutex<DeviceState>,
}

impl BlockDevice {
    /// Creates an empty device with the given performance model.
    pub fn new(model: DiskModel, clock: SimClock) -> Arc<BlockDevice> {
        Arc::new(BlockDevice {
            model,
            clock,
            stats: Arc::new(IoStats::default()),
            store_data: true,
            state: Mutex::new_class("blockdev.device_state", DeviceState::default()),
        })
    }

    /// Creates a device that models timing without storing bytes — used by
    /// the Phoronix reproduction, whose multi-gigabyte workloads would
    /// otherwise consume real memory.
    pub fn new_synthetic(model: DiskModel, clock: SimClock) -> Arc<BlockDevice> {
        Arc::new(BlockDevice {
            model,
            clock,
            stats: Arc::new(IoStats::default()),
            store_data: false,
            state: Mutex::new_class("blockdev.device_state", DeviceState::default()),
        })
    }

    /// The performance model in use.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// Unwritten regions read as zeroes (the device is thin-provisioned).
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        let first_block = offset / BLOCK_SIZE as u64;
        let sequential = first_block == st.read_head;
        self.charge(&mut st, buf.len() as u64, sequential);

        let mut pos = 0usize;
        let mut off = offset;
        while pos < buf.len() {
            let block_no = off / BLOCK_SIZE as u64;
            let in_block = (off % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_block).min(buf.len() - pos);
            match st.blocks.get(&block_no) {
                Some(b) => buf[pos..pos + n].copy_from_slice(&b[in_block..in_block + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
            off += n as u64;
        }
        st.read_head = off.div_ceil(BLOCK_SIZE as u64);
        self.stats.record_read(buf.len() as u64, sequential);
    }

    /// Writes `data` starting at byte `offset`.
    pub fn write(&self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        let first_block = offset / BLOCK_SIZE as u64;
        let sequential = first_block == st.write_head;
        self.charge(&mut st, data.len() as u64, sequential);

        if self.store_data {
            let mut pos = 0usize;
            let mut off = offset;
            while pos < data.len() {
                let block_no = off / BLOCK_SIZE as u64;
                let in_block = (off % BLOCK_SIZE as u64) as usize;
                let n = (BLOCK_SIZE - in_block).min(data.len() - pos);
                let block = st.blocks.entry(block_no).or_insert_with(zero_block);
                block[in_block..in_block + n].copy_from_slice(&data[pos..pos + n]);
                pos += n;
                off += n as u64;
            }
        }
        st.write_head = (offset + data.len() as u64).div_ceil(BLOCK_SIZE as u64);
        self.stats.record_write(data.len() as u64, sequential);
    }

    /// Discards a byte range (hole punching / file deletion reclaiming
    /// space). Only whole blocks inside the range are dropped.
    pub fn discard(&self, offset: u64, len: u64) {
        let mut st = self.state.lock();
        let first = offset.div_ceil(BLOCK_SIZE as u64);
        let last = (offset + len) / BLOCK_SIZE as u64;
        for b in first..last {
            st.blocks.remove(&b);
        }
    }

    /// A write barrier: waits (in virtual time) for all queued I/O to finish.
    pub fn flush(&self) {
        let st = self.state.lock();
        self.clock.advance_to(st.busy_until);
        self.stats.record_flush();
    }

    /// Number of blocks currently allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.state.lock().blocks.len() as u64
    }

    /// Charges one operation to the virtual clock, honouring the
    /// single-queue discipline. Background I/O only occupies the device;
    /// foreground I/O also waits for completion.
    fn charge(&self, st: &mut DeviceState, len: u64, sequential: bool) {
        let service = self.model.service_ns(len, sequential);
        let now = self.clock.now();
        let start = if st.busy_until > now {
            st.busy_until
        } else {
            now
        };
        let done = start.saturating_add_nanos(service);
        st.busy_until = done;
        if !in_background() {
            self.clock.advance_to(done);
        }
    }

    /// Nanoseconds of queued (not yet completed) work.
    pub fn backlog_ns(&self) -> u64 {
        let st = self.state.lock();
        st.busy_until.saturating_sub(self.clock.now()).as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(model: DiskModel) -> (Arc<BlockDevice>, SimClock) {
        let clock = SimClock::new();
        (BlockDevice::new(model, clock.clone()), clock)
    }

    #[test]
    fn data_roundtrip_across_block_boundaries() {
        let (d, _) = dev(DiskModel::free());
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        d.write(BLOCK_SIZE as u64 - 17, &data);
        let mut back = vec![0u8; data.len()];
        d.read(BLOCK_SIZE as u64 - 17, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn unwritten_reads_as_zero() {
        let (d, _) = dev(DiskModel::free());
        let mut buf = [7u8; 64];
        d.read(123_456, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_stream_matches_throughput() {
        let (d, clock) = dev(DiskModel::gp2());
        // Prime the head so the first op is also sequential.
        let chunk = vec![0u8; BLOCK_SIZE];
        let mut off = 0u64;
        let start = clock.now();
        for _ in 0..256 {
            d.write(off, &chunk);
            off += BLOCK_SIZE as u64;
        }
        let elapsed = (clock.now() - start).as_nanos();
        // First write is random (latency), the rest stream: total should be
        // close to 1 MiB / 160 MB/s ≈ 6.55 ms plus one latency.
        let expect = DiskModel::gp2().transfer_ns(256 * BLOCK_SIZE as u64)
            + DiskModel::gp2().random_latency_ns;
        assert!(
            elapsed >= expect * 9 / 10 && elapsed <= expect * 11 / 10,
            "elapsed={elapsed} expect={expect}"
        );
    }

    #[test]
    fn random_ops_hit_iops_cap() {
        let (d, clock) = dev(DiskModel::gp2());
        let buf = [0u8; 512];
        let start = clock.now();
        // 300 random writes at 3000 IOPS should take >= 100 ms.
        for i in 0..300u64 {
            d.write(i * 1_000_000, &buf);
        }
        let elapsed = (clock.now() - start).as_nanos();
        assert!(elapsed >= 100_000_000, "elapsed={elapsed}");
    }

    #[test]
    fn discard_releases_blocks() {
        let (d, _) = dev(DiskModel::free());
        d.write(0, &vec![1u8; 8 * BLOCK_SIZE]);
        assert_eq!(d.allocated_blocks(), 8);
        d.discard(0, 4 * BLOCK_SIZE as u64);
        assert_eq!(d.allocated_blocks(), 4);
    }

    #[test]
    fn stats_classify_sequential_vs_random() {
        let (d, _) = dev(DiskModel::free());
        let buf = [0u8; BLOCK_SIZE];
        d.write(0, &buf); // random (head at 0 -> block 0 is sequential actually)
        d.write(BLOCK_SIZE as u64, &buf); // continues -> sequential
        d.write(100 * BLOCK_SIZE as u64, &buf); // jump -> random
        let s = d.stats();
        assert_eq!(s.writes, 3);
        assert!(s.seq_ops >= 2, "{s:?}"); // first lands on head 0 too
        assert_eq!(s.rand_ops, 1);
    }

    #[test]
    fn flush_records_barrier() {
        let (d, _) = dev(DiskModel::free());
        d.flush();
        assert_eq!(d.stats().flushes, 1);
    }

    #[test]
    fn empty_io_is_free() {
        let (d, clock) = dev(DiskModel::gp2());
        d.write(0, &[]);
        let mut empty: [u8; 0] = [];
        d.read(0, &mut empty);
        assert_eq!(clock.now().as_nanos(), 0);
        assert_eq!(d.stats().ops(), 0);
    }
}
