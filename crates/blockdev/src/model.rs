//! The disk performance model.

/// Performance parameters of a simulated disk.
///
/// The model distinguishes *sequential* from *random* operations: an
/// operation is sequential if it starts at the block where the previous
/// operation of the same kind ended. Random operations pay the access
/// latency and are subject to the IOPS cap; sequential operations stream at
/// the device's throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Access latency of a random operation (ns).
    pub random_latency_ns: u64,
    /// Sustained sequential throughput (bytes per second).
    pub seq_throughput_bps: u64,
    /// Cap on random operations per second.
    pub iops: u64,
}

impl DiskModel {
    /// An EBS gp2-like SSD volume as used in the paper's testbed
    /// (100 GB gp2: 160 MB/s sequential, 3000 burst IOPS, ~0.5 ms latency).
    pub const fn gp2() -> DiskModel {
        DiskModel {
            random_latency_ns: 500_000,
            seq_throughput_bps: 160_000_000,
            iops: 3_000,
        }
    }

    /// A null model: every operation is free. Used to isolate CPU/protocol
    /// costs in ablation benches.
    pub const fn free() -> DiskModel {
        DiskModel {
            random_latency_ns: 0,
            seq_throughput_bps: u64::MAX,
            iops: u64::MAX,
        }
    }

    /// Transfer time for `len` bytes at sequential throughput (ns).
    pub const fn transfer_ns(&self, len: u64) -> u64 {
        if self.seq_throughput_bps == u64::MAX {
            return 0;
        }
        // ns = bytes * 1e9 / Bps, computed to avoid overflow for large len.
        len.saturating_mul(1_000_000_000) / self.seq_throughput_bps
    }

    /// Minimum spacing between random operations implied by the IOPS cap (ns).
    pub const fn iop_spacing_ns(&self) -> u64 {
        if self.iops == u64::MAX {
            return 0;
        }
        1_000_000_000 / self.iops
    }

    /// Service time of one operation (ns).
    ///
    /// `sequential` reflects whether the op continues the previous one.
    pub const fn service_ns(&self, len: u64, sequential: bool) -> u64 {
        let xfer = self.transfer_ns(len);
        if sequential {
            xfer
        } else {
            let latency = self.random_latency_ns;
            let spacing = self.iop_spacing_ns();
            // A random op costs its latency plus transfer, but never less
            // than the IOPS-cap spacing.
            let base = latency + xfer;
            if base > spacing {
                base
            } else {
                spacing
            }
        }
    }
}

impl Default for DiskModel {
    fn default() -> DiskModel {
        DiskModel::gp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp2_throughput_math() {
        let m = DiskModel::gp2();
        // 160 MB at 160 MB/s = 1 second.
        assert_eq!(m.transfer_ns(160_000_000), 1_000_000_000);
        // 4 KiB sequential is far below a random latency.
        assert!(m.service_ns(4096, true) < m.service_ns(4096, false));
    }

    #[test]
    fn iops_cap_floors_random_ops() {
        let m = DiskModel::gp2();
        // 3000 IOPS -> at least 333 µs between random ops.
        assert!(m.service_ns(1, false) >= 333_333);
    }

    #[test]
    fn free_model_is_free() {
        let m = DiskModel::free();
        assert_eq!(m.service_ns(1 << 30, false), 0);
        assert_eq!(m.service_ns(1 << 30, true), 0);
    }

    #[test]
    fn sequential_large_transfer_beats_random_small_ops() {
        // Writing 1 MiB sequentially must be cheaper than 256 random 4 KiB
        // writes — the mechanism behind the writeback-cache win (Fig 2 FIO).
        let m = DiskModel::gp2();
        let seq = m.service_ns(1 << 20, false); // one random seek + streaming
        let rand: u64 = (0..256).map(|_| m.service_ns(4096, false)).sum();
        assert!(seq * 10 < rand, "seq={seq} rand={rand}");
    }
}
