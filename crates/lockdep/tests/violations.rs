//! Deliberate discipline violations must die deterministically, naming the
//! classes involved — without the bad interleaving ever having to deadlock.
//!
//! Each test uses its own class names: the dependency graph is global to
//! the test process, and these tests poison it on purpose.

use lockdep::{LockKind, Shape};
use std::panic::Location;
use std::sync::{Arc, Barrier};

#[track_caller]
fn here() -> &'static Location<'static> {
    Location::caller()
}

/// Runs `f` on a fresh thread and returns the panic message it died with.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> String {
    let err = std::thread::Builder::new()
        .name("lockdep-victim".into())
        .spawn(f)
        .unwrap()
        .join()
        .expect_err("the violation must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string")
}

/// The headline check: thread 1 takes A then B and *exits cleanly*; thread
/// 2 then takes B and A. Nothing ever blocks — the cycle is caught from
/// the recorded class graph, not from an actual deadlock, so the test is
/// timing-independent.
#[test]
fn abba_inversion_panics_deterministically() {
    let a = lockdep::register(Some("test.abba.a"), here());
    let b = lockdep::register(Some("test.abba.b"), here());

    let t1 = std::thread::spawn(move || {
        lockdep::acquire(a, 0, LockKind::Mutex, here());
        lockdep::acquire(b, 0, LockKind::Mutex, here());
        lockdep::release(b, 0);
        lockdep::release(a, 0);
    });
    t1.join().unwrap(); // thread 1 is *done* before thread 2 starts

    let msg = panic_message_of(move || {
        lockdep::acquire(b, 0, LockKind::Mutex, here());
        lockdep::acquire(a, 0, LockKind::Mutex, here()); // closes the cycle
    });
    assert!(msg.contains("lock-order cycle"), "got: {msg}");
    assert!(
        msg.contains("test.abba.a") && msg.contains("test.abba.b"),
        "cycle report must name both classes: {msg}"
    );
}

/// Same inversion through real `parking_lot` shim locks, concurrently:
/// both threads run, but the checker fires before the second lock blocks,
/// so the test can never hang even when the interleaving is adversarial.
#[test]
fn abba_through_parking_lot_locks() {
    let a = Arc::new(parking_lot::Mutex::new_class("test.abba2.a", 0u32));
    let b = Arc::new(parking_lot::Mutex::new_class("test.abba2.b", 0u32));
    let gate = Arc::new(Barrier::new(2));

    let t1 = {
        let (a, b, gate) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&gate));
        std::thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
            gate.wait(); // edge a→b is now on record
        })
    };
    gate.wait();
    t1.join().unwrap();

    let msg = panic_message_of(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("test.abba2.a") && msg.contains("test.abba2.b"),
        "got: {msg}"
    );
}

#[test]
fn same_class_double_lock_panics() {
    let c = lockdep::register(Some("test.double.plain"), here());
    let msg = panic_message_of(move || {
        lockdep::acquire(c, 0, LockKind::Mutex, here());
        lockdep::acquire(c, 0, LockKind::Mutex, here());
    });
    assert!(msg.contains("same-class double acquisition"), "got: {msg}");
    assert!(msg.contains("test.double.plain"), "got: {msg}");
}

#[test]
fn sharded_class_allows_ascending_rejects_descending() {
    lockdep::set_shape("test.shard.ranked", Shape::Sharded { ascending: true });
    let c = lockdep::register(Some("test.shard.ranked"), here());

    // Ascending ranks: fine (the `lock_pair` idiom).
    lockdep::acquire(c, 2, LockKind::Mutex, here());
    lockdep::acquire(c, 5, LockKind::Mutex, here());
    lockdep::release(c, 5);
    lockdep::release(c, 2);

    // Descending: instant panic.
    let msg = panic_message_of(move || {
        lockdep::acquire(c, 5, LockKind::Mutex, here());
        lockdep::acquire(c, 2, LockKind::Mutex, here());
    });
    assert!(msg.contains("strictly ascending"), "got: {msg}");
    // Equal ranks are a double-lock too.
    let msg = panic_message_of(move || {
        lockdep::acquire(c, 5, LockKind::Mutex, here());
        lockdep::acquire(c, 5, LockKind::Mutex, here());
    });
    assert!(msg.contains("test.shard.ranked"), "got: {msg}");
}

#[test]
fn recursive_class_permits_reacquisition() {
    lockdep::set_shape("test.recursive.leaf", Shape::Recursive);
    let c = lockdep::register(Some("test.recursive.leaf"), here());
    lockdep::acquire(c, 0, LockKind::Mutex, here());
    lockdep::acquire(c, 0, LockKind::Mutex, here());
    lockdep::release(c, 0);
    lockdep::release(c, 0);
    assert!(lockdep::held_classes().is_empty());
}

#[test]
fn declared_ordering_rejects_reverse_and_peer_nesting() {
    lockdep::ordering(&[
        &["test.order.outer"],
        &["test.order.mid"],
        &["test.order.leaf_x", "test.order.leaf_y"],
    ]);
    let outer = lockdep::register(Some("test.order.outer"), here());
    let mid = lockdep::register(Some("test.order.mid"), here());
    let x = lockdep::register(Some("test.order.leaf_x"), here());
    let y = lockdep::register(Some("test.order.leaf_y"), here());

    // Documented order: fine.
    lockdep::acquire(outer, 0, LockKind::Mutex, here());
    lockdep::acquire(mid, 0, LockKind::Write, here());
    lockdep::acquire(x, 0, LockKind::Mutex, here());
    lockdep::release(x, 0);
    lockdep::release(mid, 0);
    lockdep::release(outer, 0);

    // Reverse order: panics on the *first* offence, no deadlock needed.
    let msg = panic_message_of(move || {
        lockdep::acquire(mid, 0, LockKind::Read, here());
        lockdep::acquire(outer, 0, LockKind::Mutex, here());
    });
    assert!(msg.contains("rank-order violation"), "got: {msg}");

    // Two leaves of the same group must never nest.
    let msg = panic_message_of(move || {
        lockdep::acquire(x, 0, LockKind::Mutex, here());
        lockdep::acquire(y, 0, LockKind::Mutex, here());
    });
    assert!(msg.contains("peer-subsystem nesting"), "got: {msg}");
}

#[test]
fn blocking_checkpoint_flags_held_locks() {
    let c = lockdep::register(Some("test.checkpoint.state"), here());

    // Nothing held: the checkpoint is a no-op.
    lockdep::assert_no_locks_held_except(&[]);

    // Held but explicitly allowed: still fine.
    lockdep::acquire(c, 0, LockKind::Mutex, here());
    lockdep::assert_no_locks_held_except(&["test.checkpoint.state"]);
    lockdep::release(c, 0);

    // Held and not allowed: deterministic panic naming the class.
    let msg = panic_message_of(move || {
        lockdep::acquire(c, 0, LockKind::Mutex, here());
        lockdep::assert_no_locks_held_except(&[]);
    });
    assert!(msg.contains("blocking-context violation"), "got: {msg}");
    assert!(msg.contains("test.checkpoint.state"), "got: {msg}");
}

/// A violation panic must not wedge the engine: the victim thread's guards
/// unwind cleanly and other threads keep validating.
#[test]
fn engine_survives_a_violation() {
    let c = lockdep::register(Some("test.survive.a"), here());
    let d = lockdep::register(Some("test.survive.b"), here());
    let _ = panic_message_of(move || {
        lockdep::acquire(c, 0, LockKind::Mutex, here());
        lockdep::acquire(c, 0, LockKind::Mutex, here());
    });
    // The engine still works on this thread afterwards.
    lockdep::acquire(c, 0, LockKind::Mutex, here());
    lockdep::acquire(d, 0, LockKind::Mutex, here());
    lockdep::release(d, 0);
    lockdep::release(c, 0);
    let rep = lockdep::report();
    assert!(rep
        .edges
        .iter()
        .any(|e| e.from == "test.survive.a" && e.to == "test.survive.b"));
}
