//! Runtime lock-dependency validation, modeled on Linux's lockdep.
//!
//! The sharded kernel (PR 3) replaced one giant lock with a family of
//! subsystem locks governed by a *documented* ordering discipline
//! (`cntr_kernel::table`, "Lock-ordering discipline"). This crate turns
//! that prose into machinery: every `Mutex`/`RwLock` in the workspace
//! (via the `parking_lot` shim) belongs to a **lock class**, each thread
//! keeps a stack of the classes it currently holds, and every acquisition
//! feeds a global *class dependency graph*. Three properties are checked
//! on the spot, deterministically, without needing the bad interleaving
//! to actually deadlock:
//!
//! 1. **Cycle freedom.** Acquiring `B` while holding `A` records the edge
//!    `A → B`. If the graph already proves `B →* A`, the acquisition
//!    would close a cycle — the classic ABBA inversion — and panics with
//!    both acquisition sites, even though *this* run never deadlocked.
//! 2. **Same-class double-lock.** Re-acquiring a class you already hold
//!    is refused, except for classes registered [`Shape::Sharded`] with
//!    `ascending: true` (the pid-shard `lock_pair` idiom: second
//!    acquisition must carry a strictly greater instance rank) or
//!    [`Shape::Recursive`] (per-instance leaf locks with no global order).
//! 3. **Declared rank order.** [`ordering`] encodes the documented
//!    subsystem rank table. Acquiring a class from an *earlier* group
//!    while holding one from a *later* group — or nesting two distinct
//!    classes of the *same* group ("subsystem locks never nest") — panics
//!    immediately, before the graph has even seen a conflicting run.
//!
//! Blocking-context checkpoints ([`assert_no_locks_held_except`]) guard
//! points that park the calling thread on another thread's progress (the
//! FUSE transport send/wait path): holding any kernel lock there is the
//! PR-3 writeback deadlock class, and becomes an instant panic.
//!
//! The engine is wired in through `shims/parking_lot`, which compiles the
//! instrumentation only under `debug_assertions` or its `lockdep` cargo
//! feature — release builds see plain uninstrumented locks. This crate
//! itself is always functional (it is inert if nobody calls it), so
//! `lockdep::report()` can back a `/proc/lockdep` surface unconditionally.
//!
//! This crate deliberately uses `std::sync` primitives directly: it sits
//! *below* the instrumented `parking_lot` shim and must not recurse into
//! itself. The repo lint (`tests/repo_lint.rs`) exempts it.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicI32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How acquisitions of one class may nest with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Holding one instance forbids acquiring any other of the class.
    Plain,
    /// A fixed family of instances with a total order (shard index):
    /// nested acquisition is legal iff the ranks strictly ascend
    /// (`ascending: true`) — the `ProcTable::lock_pair` idiom.
    Sharded {
        /// Nested same-class acquisitions must carry strictly increasing
        /// instance ranks.
        ascending: bool,
    },
    /// Same-class nesting is not checked (still participates in the
    /// cross-class graph). For dynamic per-instance leaf locks.
    Recursive,
}

const SHAPE_PLAIN: u8 = 0;
const SHAPE_SHARDED_ASC: u8 = 1;
const SHAPE_SHARDED_ANY: u8 = 2;
const SHAPE_RECURSIVE: u8 = 3;

impl Shape {
    fn to_u8(self) -> u8 {
        match self {
            Shape::Plain => SHAPE_PLAIN,
            Shape::Sharded { ascending: true } => SHAPE_SHARDED_ASC,
            Shape::Sharded { ascending: false } => SHAPE_SHARDED_ANY,
            Shape::Recursive => SHAPE_RECURSIVE,
        }
    }

    fn name(code: u8) -> &'static str {
        match code {
            SHAPE_SHARDED_ASC => "sharded(ascending)",
            SHAPE_SHARDED_ANY => "sharded",
            SHAPE_RECURSIVE => "recursive",
            _ => "plain",
        }
    }
}

/// The acquisition mode, recorded in the held stack and edge labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock`.
    Mutex,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LockKind::Mutex => "lock",
            LockKind::Read => "read",
            LockKind::Write => "write",
        })
    }
}

/// One lock class: every lock constructed with the same name (or at the
/// same construction site, for unnamed locks) shares a class. Leaked for
/// `'static` so the shim can cache a pointer per lock instance.
pub struct LockClass {
    id: u32,
    name: &'static str,
    /// Construction site of the first lock registered in the class.
    site: &'static str,
    shape: AtomicU8,
    /// Declared ordering group (`-1` = undeclared).
    group: AtomicI32,
    acquires: AtomicU64,
    /// Deepest held-stack depth observed at acquisition (incl. self).
    max_depth: AtomicUsize,
    /// Acquisitions that found the lock contended (`try_lock` failed and
    /// the thread had to block). Fed by [`note_contention`].
    contended: AtomicU64,
    /// Total wall-clock nanoseconds spent blocked on contended
    /// acquisitions. Fed by [`note_contention`].
    wait_ns: AtomicU64,
}

impl LockClass {
    /// Class name (auto classes are named after their construction site).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Records one contended acquisition of `class` that blocked for `wait_ns`
/// wall-clock nanoseconds. Called by the `parking_lot` shim after a failed
/// `try_lock` fast path; two relaxed atomic adds, safe anywhere.
pub fn note_contention(class: &'static LockClass, wait_ns: u64) {
    class.contended.fetch_add(1, Ordering::Relaxed);
    class.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
}

struct Edge {
    /// "while holding <holder> … acquired <acquiree>" provenance of the
    /// first observation of this edge.
    label: String,
    count: u64,
}

#[derive(Default)]
struct Registry {
    by_name: HashMap<&'static str, &'static LockClass>,
    classes: Vec<&'static LockClass>,
    /// `edges[from][to]` — "to was acquired while from was held".
    edges: HashMap<u32, HashMap<u32, Edge>>,
    /// Declarations that may arrive before the class is registered.
    pending_shape: HashMap<String, Shape>,
    pending_group: HashMap<String, i32>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    match REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
    {
        Ok(g) => g,
        // A lockdep panic (test harness catching a deliberate violation)
        // must not poison the engine for the rest of the process.
        Err(p) => p.into_inner(),
    }
}

struct HeldLock {
    class: &'static LockClass,
    rank: u32,
    kind: LockKind,
    site: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    /// Edges this thread has already pushed to the global graph — lets the
    /// hot path skip the registry mutex for dependencies seen before.
    static EDGES_SEEN: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
}

/// Registers (or looks up) the class for a lock construction site. Named
/// locks class by name; unnamed locks class by `file:line:column`.
pub fn register(name: Option<&'static str>, loc: &'static Location<'static>) -> &'static LockClass {
    let mut reg = registry();
    if let Some(n) = name {
        if let Some(c) = reg.by_name.get(n) {
            return c;
        }
    }
    let site_string = format!("{}:{}:{}", loc.file(), loc.line(), loc.column());
    if name.is_none() {
        if let Some(c) = reg.by_name.get(site_string.as_str()) {
            return c;
        }
    }
    let site: &'static str = Box::leak(site_string.into_boxed_str());
    let name = name.unwrap_or(site);
    let shape = reg.pending_shape.remove(name).map(Shape::to_u8);
    let group = reg.pending_group.remove(name);
    let class: &'static LockClass = Box::leak(Box::new(LockClass {
        id: reg.classes.len() as u32,
        name,
        site,
        shape: AtomicU8::new(shape.unwrap_or(SHAPE_PLAIN)),
        group: AtomicI32::new(group.unwrap_or(-1)),
        acquires: AtomicU64::new(0),
        max_depth: AtomicUsize::new(0),
        contended: AtomicU64::new(0),
        wait_ns: AtomicU64::new(0),
    }));
    reg.by_name.insert(name, class);
    reg.classes.push(class);
    class
}

/// Declares how same-class acquisitions of `name` may nest. May be called
/// before or after the first lock of the class is constructed; idempotent.
pub fn set_shape(name: &'static str, shape: Shape) {
    let mut reg = registry();
    match reg.by_name.get(name) {
        Some(c) => c.shape.store(shape.to_u8(), Ordering::Relaxed),
        None => {
            reg.pending_shape.insert(name.to_string(), shape);
        }
    }
}

/// Declares the documented rank order: classes in `groups[i]` may only be
/// acquired while holding classes from groups `< i`; two distinct classes
/// of the *same* group must never nest ("subsystem locks never nest").
/// Classes not mentioned anywhere are governed by the dynamic graph only.
/// Idempotent; later declarations win.
pub fn ordering(groups: &[&[&'static str]]) {
    let mut reg = registry();
    for (i, group) in groups.iter().enumerate() {
        for name in group.iter() {
            match reg.by_name.get(name) {
                Some(c) => c.group.store(i as i32, Ordering::Relaxed),
                None => {
                    reg.pending_group.insert(name.to_string(), i as i32);
                }
            }
        }
    }
}

fn held_summary(held: &[HeldLock]) -> String {
    held.iter()
        .map(|h| {
            format!(
                "  held: {} (rank {}, {} at {}, class constructed at {})",
                h.class.name, h.rank, h.kind, h.site, h.class.site
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Validates and records one acquisition. Called by the `parking_lot` shim
/// *before* blocking on the underlying lock, so a would-deadlock order
/// panics instead of hanging. Panics on any discipline violation.
pub fn acquire(
    class: &'static LockClass,
    rank: u32,
    kind: LockKind,
    site: &'static Location<'static>,
) {
    class.acquires.fetch_add(1, Ordering::Relaxed);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        class.max_depth.fetch_max(held.len() + 1, Ordering::Relaxed);
        for h in held.iter() {
            if std::ptr::eq(h.class, class) {
                check_same_class(class, rank, kind, site, h, &held);
            } else {
                check_group_order(class, kind, site, h, &held);
                record_edge(h, class, kind, site);
            }
        }
        held.push(HeldLock {
            class,
            rank,
            kind,
            site,
        });
    });
}

fn check_same_class(
    class: &'static LockClass,
    rank: u32,
    kind: LockKind,
    site: &'static Location<'static>,
    prior: &HeldLock,
    held: &[HeldLock],
) {
    match class.shape.load(Ordering::Relaxed) {
        SHAPE_RECURSIVE | SHAPE_SHARDED_ANY => {}
        SHAPE_SHARDED_ASC if rank > prior.rank => {}
        SHAPE_SHARDED_ASC => panic!(
            "lockdep: sharded class `{}` acquired out of order: rank {} ({} at {}) \
             while already holding rank {} — sharded classes must be taken in \
             strictly ascending instance order (the `lock_pair` idiom)\n{}",
            class.name,
            rank,
            kind,
            site,
            prior.rank,
            held_summary(held),
        ),
        _ => panic!(
            "lockdep: same-class double acquisition of `{}`: {} at {} while the \
             class is already held ({} at {}); this self-deadlocks (or deadlocks \
             against a peer thread) — register Shape::Sharded/Recursive if the \
             class has a real instance order\n{}",
            class.name,
            kind,
            site,
            prior.kind,
            prior.site,
            held_summary(held),
        ),
    }
}

fn check_group_order(
    class: &'static LockClass,
    kind: LockKind,
    site: &'static Location<'static>,
    holder: &HeldLock,
    held: &[HeldLock],
) {
    let g_new = class.group.load(Ordering::Relaxed);
    let g_held = holder.class.group.load(Ordering::Relaxed);
    if g_new < 0 || g_held < 0 {
        return;
    }
    if g_new < g_held {
        panic!(
            "lockdep: rank-order violation: acquiring `{}` (group {}, {} at {}) \
             while holding `{}` (group {}) — the declared ordering \
             (lockdep::ordering) requires the reverse\n{}",
            class.name,
            g_new,
            kind,
            site,
            holder.class.name,
            g_held,
            held_summary(held),
        );
    }
    if g_new == g_held {
        panic!(
            "lockdep: peer-subsystem nesting: acquiring `{}` ({} at {}) while \
             holding `{}` — both are declared in ordering group {}, and peer \
             subsystem locks must never nest (copy out, release, then acquire)\n{}",
            class.name,
            kind,
            site,
            holder.class.name,
            g_new,
            held_summary(held),
        );
    }
}

/// Records `holder.class → class` in the global graph, panicking if the
/// reverse dependency is already provable (an ABBA cycle).
fn record_edge(
    holder: &HeldLock,
    class: &'static LockClass,
    kind: LockKind,
    site: &'static Location<'static>,
) {
    let key = (holder.class.id, class.id);
    let seen = EDGES_SEEN.with(|s| s.borrow().contains(&key));
    if seen {
        return;
    }
    let mut reg = registry();
    if let Some(edge) = reg.edges.get_mut(&key.0).and_then(|m| m.get_mut(&key.1)) {
        edge.count += 1;
    } else {
        // New dependency: adding holder→class closes a cycle iff the graph
        // already proves class →* holder.
        if let Some(path) = find_path(&reg, class.id, holder.class.id) {
            let chain = describe_path(&reg, &path);
            drop(reg);
            panic!(
                "lockdep: lock-order cycle: acquiring `{}` ({} at {}) while \
                 holding `{}` ({} at {}, class constructed at {}) would create \
                 `{}` → `{}`, but the reverse order was already observed:\n{}\n\
                 (two threads taking these in opposite orders can deadlock)",
                class.name,
                kind,
                site,
                holder.class.name,
                holder.kind,
                holder.site,
                holder.class.site,
                holder.class.name,
                class.name,
                chain,
            );
        }
        let label = format!(
            "`{}` ({} at {}) acquired while holding `{}` ({} at {}) [thread {}]",
            class.name,
            kind,
            site,
            holder.class.name,
            holder.kind,
            holder.site,
            std::thread::current().name().unwrap_or("<unnamed>"),
        );
        reg.edges
            .entry(key.0)
            .or_default()
            .insert(key.1, Edge { label, count: 1 });
    }
    drop(reg);
    EDGES_SEEN.with(|s| {
        s.borrow_mut().insert(key);
    });
}

/// BFS path `from →* to` over the recorded edges.
fn find_path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to];
            while let Some(&p) = parent.get(path.last().unwrap()) {
                path.push(p);
            }
            path.reverse();
            return Some(path);
        }
        if let Some(next) = reg.edges.get(&node) {
            for &n in next.keys() {
                if n != from && !parent.contains_key(&n) {
                    parent.insert(n, node);
                    queue.push_back(n);
                }
            }
        }
    }
    None
}

fn describe_path(reg: &Registry, path: &[u32]) -> String {
    path.windows(2)
        .map(|w| {
            let label = reg
                .edges
                .get(&w[0])
                .and_then(|m| m.get(&w[1]))
                .map(|e| e.label.as_str())
                .unwrap_or("<edge>");
            format!("  {}", label)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Pops one acquisition. Called from guard `Drop`; tolerates out-of-LIFO
/// release (`ShardPair` drops its guards in field order) and never panics
/// (it runs during unwinding after a violation).
pub fn release(class: &'static LockClass, rank: u32) {
    // `try_with`: a guard dropped during thread teardown (after TLS
    // destruction) must not abort the process.
    let _ = HELD.try_with(|held| {
        let mut held = held.borrow_mut();
        if let Some(i) = held
            .iter()
            .rposition(|h| std::ptr::eq(h.class, class) && h.rank == rank)
        {
            held.remove(i);
        }
    });
}

/// Blocking-context checkpoint: panics if the calling thread holds any
/// lock whose class name is not in `allowed`. Declared at points that
/// park the thread on another thread's progress (FUSE transport
/// send/wait): holding a kernel lock there reproduces the PR-3 writeback
/// deadlock, so it dies deterministically here instead of hanging.
#[track_caller]
pub fn assert_no_locks_held_except(allowed: &[&str]) {
    let here = Location::caller();
    HELD.with(|held| {
        let held = held.borrow();
        let offending: Vec<&HeldLock> = held
            .iter()
            .filter(|h| !allowed.contains(&h.class.name))
            .collect();
        if !offending.is_empty() {
            panic!(
                "lockdep: blocking-context violation at {}: this call parks the \
                 thread on another thread's progress, but {} lock(s) are held — \
                 a worker that re-enters this path while holding them deadlocks \
                 the pool (the PR-3 FUSE writeback bug class)\n{}",
                here,
                offending.len(),
                held_summary(&held),
            );
        }
    });
}

/// Names of the classes the calling thread currently holds (outermost
/// first). Diagnostic helper for tests.
pub fn held_classes() -> Vec<&'static str> {
    HELD.with(|held| held.borrow().iter().map(|h| h.class.name).collect())
}

/// One class's row in [`Report`].
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Class name.
    pub name: &'static str,
    /// Construction site of the first instance.
    pub site: &'static str,
    /// Same-class nesting policy.
    pub shape: &'static str,
    /// Declared ordering group, if any.
    pub group: Option<u32>,
    /// Total acquisitions.
    pub acquires: u64,
    /// Deepest held-stack depth observed at acquisition (incl. self).
    pub max_depth: usize,
    /// Acquisitions that had to block (contended).
    pub contended: u64,
    /// Total nanoseconds spent blocked on contended acquisitions.
    pub wait_ns: u64,
}

/// One observed dependency in [`Report`].
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// Class held at the time.
    pub from: &'static str,
    /// Class acquired under it.
    pub to: &'static str,
    /// Observation count.
    pub count: u64,
    /// Provenance of the first observation.
    pub label: String,
}

/// Snapshot of the engine: every class and every observed dependency.
/// Rendered by `/proc/lockdep` and recorded as a CI artifact so graph
/// growth is reviewable per PR.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All registered classes.
    pub classes: Vec<ClassReport>,
    /// All observed dependencies.
    pub edges: Vec<EdgeReport>,
}

impl Report {
    /// Number of distinct observed dependencies.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lock classes: {}  dependency edges: {}",
            self.classes.len(),
            self.edges.len()
        )?;
        writeln!(
            f,
            "--- classes (name shape group acquires max-depth contended wait-ns site)"
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "{} {} {} {} {} {} {} {}",
                c.name,
                c.shape,
                c.group.map(|g| g.to_string()).unwrap_or_else(|| "-".into()),
                c.acquires,
                c.max_depth,
                c.contended,
                c.wait_ns,
                c.site
            )?;
        }
        writeln!(f, "--- edges (held -> acquired, count, first observation)")?;
        for e in &self.edges {
            writeln!(f, "{} -> {} x{}: {}", e.from, e.to, e.count, e.label)?;
        }
        Ok(())
    }
}

/// Takes a snapshot of every class and observed edge.
pub fn report() -> Report {
    let reg = registry();
    let classes = reg
        .classes
        .iter()
        .map(|c| ClassReport {
            name: c.name,
            site: c.site,
            shape: Shape::name(c.shape.load(Ordering::Relaxed)),
            group: u32::try_from(c.group.load(Ordering::Relaxed)).ok(),
            acquires: c.acquires.load(Ordering::Relaxed),
            max_depth: c.max_depth.load(Ordering::Relaxed),
            contended: c.contended.load(Ordering::Relaxed),
            wait_ns: c.wait_ns.load(Ordering::Relaxed),
        })
        .collect();
    let mut edges: Vec<EdgeReport> = reg
        .edges
        .iter()
        .flat_map(|(&from, tos)| {
            let classes = &reg.classes;
            tos.iter().map(move |(&to, edge)| EdgeReport {
                from: classes[from as usize].name,
                to: classes[to as usize].name,
                count: edge.count,
                label: edge.label.clone(),
            })
        })
        .collect();
    edges.sort_by(|a, b| (a.from, a.to).cmp(&(b.from, b.to)));
    Report { classes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn loc() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn auto_class_dedups_by_site_and_name() {
        let l = loc();
        let a = register(None, l);
        let b = register(None, l);
        assert!(std::ptr::eq(a, b));
        let named = register(Some("test.unit.named"), loc());
        assert_eq!(named.name(), "test.unit.named");
        assert!(!std::ptr::eq(a, named));
    }

    #[test]
    fn edges_and_report_roundtrip() {
        let a = register(Some("test.unit.edge_a"), loc());
        let b = register(Some("test.unit.edge_b"), loc());
        acquire(a, 0, LockKind::Mutex, loc());
        acquire(b, 0, LockKind::Mutex, loc());
        release(b, 0);
        release(a, 0);
        let rep = report();
        assert!(rep
            .edges
            .iter()
            .any(|e| e.from == "test.unit.edge_a" && e.to == "test.unit.edge_b"));
        let row = rep
            .classes
            .iter()
            .find(|c| c.name == "test.unit.edge_b")
            .unwrap();
        assert_eq!(row.max_depth, 2);
        assert!(row.acquires >= 1);
        assert!(!format!("{rep}").is_empty());
    }

    #[test]
    fn out_of_lifo_release_is_tolerated() {
        let a = register(Some("test.unit.lifo_a"), loc());
        let b = register(Some("test.unit.lifo_b"), loc());
        acquire(a, 0, LockKind::Mutex, loc());
        acquire(b, 0, LockKind::Mutex, loc());
        release(a, 0); // ShardPair drops lo (acquired first) first.
        release(b, 0);
        assert!(held_classes().is_empty());
    }

    #[test]
    fn sharded_ranks_ascend() {
        let c = register(Some("test.unit.shard"), loc());
        set_shape("test.unit.shard", Shape::Sharded { ascending: true });
        acquire(c, 1, LockKind::Mutex, loc());
        acquire(c, 3, LockKind::Mutex, loc());
        release(c, 3);
        release(c, 1);
    }

    #[test]
    fn contention_accumulates_into_report() {
        let c = register(Some("test.unit.contended"), loc());
        note_contention(c, 1_500);
        note_contention(c, 500);
        let row = report()
            .classes
            .into_iter()
            .find(|r| r.name == "test.unit.contended")
            .unwrap();
        assert_eq!(row.contended, 2);
        assert_eq!(row.wait_ns, 2_000);
    }

    #[test]
    fn pending_declarations_apply_at_registration() {
        set_shape("test.unit.pending", Shape::Recursive);
        ordering(&[&["test.unit.pending_first"], &["test.unit.pending"]]);
        let c = register(Some("test.unit.pending"), loc());
        assert_eq!(c.shape.load(Ordering::Relaxed), SHAPE_RECURSIVE);
        assert_eq!(c.group.load(Ordering::Relaxed), 1);
        acquire(c, 0, LockKind::Mutex, loc());
        acquire(c, 0, LockKind::Mutex, loc()); // recursive: allowed
        release(c, 0);
        release(c, 0);
    }
}
