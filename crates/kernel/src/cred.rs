//! Process credentials: identity, capabilities, and LSM confinement.

use cntr_types::{CapSet, Gid, Uid};

/// The security context of a process.
///
/// CNTR copies all of this from the target container onto the attached
/// process (paper §3.2.1: namespaces, user/group id mapping, capabilities,
/// AppArmor/SELinux options) so that tools run with exactly the container's
/// privileges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Effective user id.
    pub uid: Uid,
    /// Effective group id.
    pub gid: Gid,
    /// Supplementary groups.
    pub groups: Vec<Gid>,
    /// Effective capability set.
    pub caps: CapSet,
    /// Capability bounding set (an upper bound `caps` can never exceed).
    pub bounding: CapSet,
    /// Mandatory-access-control profile (AppArmor profile name or SELinux
    /// label), if confined.
    pub lsm_profile: Option<String>,
}

impl Credentials {
    /// Root in the initial user namespace: all capabilities, unconfined.
    pub fn host_root() -> Credentials {
        Credentials {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            groups: Vec::new(),
            caps: CapSet::full(),
            bounding: CapSet::full(),
            lsm_profile: None,
        }
    }

    /// Root inside a default Docker container: uid 0 but the Docker bounding
    /// set and a container AppArmor profile.
    pub fn container_root(profile: &str) -> Credentials {
        Credentials {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            groups: Vec::new(),
            caps: CapSet::docker_default(),
            bounding: CapSet::docker_default(),
            lsm_profile: Some(profile.to_string()),
        }
    }

    /// Returns true if the process holds `cap`.
    pub fn has_cap(&self, cap: cntr_types::Capability) -> bool {
        self.caps.has(cap)
    }

    /// Drops the credentials to another context's bounding set and profile —
    /// what CNTR does in step #3 before handing the shell to the user
    /// ("CNTR drops the capabilities by applying the AppArmor/SELinux
    /// profile", §3.2.3).
    pub fn confine_to(&mut self, other: &Credentials) {
        self.caps = self.caps.intersect(other.bounding);
        self.bounding = self.bounding.intersect(other.bounding);
        self.lsm_profile = other.lsm_profile.clone();
    }

    /// True if the identity (not the capabilities) matches `uid`.
    pub fn is_uid(&self, uid: Uid) -> bool {
        self.uid == uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_types::Capability;

    #[test]
    fn host_root_is_all_powerful() {
        let c = Credentials::host_root();
        assert!(c.has_cap(Capability::SysAdmin));
        assert!(c.has_cap(Capability::SysPtrace));
        assert!(c.lsm_profile.is_none());
    }

    #[test]
    fn container_root_is_bounded() {
        let c = Credentials::container_root("docker-default");
        assert!(!c.has_cap(Capability::SysAdmin));
        assert!(c.has_cap(Capability::Chown));
        assert_eq!(c.lsm_profile.as_deref(), Some("docker-default"));
    }

    #[test]
    fn confine_to_never_gains_capabilities() {
        let mut attacker = Credentials::host_root();
        let container = Credentials::container_root("docker-default");
        attacker.confine_to(&container);
        assert!(!attacker.has_cap(Capability::SysAdmin));
        assert!(attacker.caps.subset_of(container.bounding));
        assert_eq!(attacker.lsm_profile.as_deref(), Some("docker-default"));
        // Confining twice is idempotent.
        let snapshot = attacker.clone();
        attacker.confine_to(&container);
        assert_eq!(attacker, snapshot);
    }
}
