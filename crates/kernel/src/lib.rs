//! An in-process model of the Linux kernel facilities CNTR builds on.
//!
//! CNTR's contribution (paper §3) is a *protocol* over kernel primitives:
//! resolve a container to its processes, read its context from `/proc`,
//! `setns` into its namespaces, create a **nested mount namespace**, mark
//! mounts private, mount a FUSE filesystem, move the old root to
//! `/var/lib/cntr`, bind `/proc`, `/dev` and selected `/etc` files, `chroot`,
//! drop capabilities, and apply the container's environment. To exercise that
//! protocol faithfully without requiring root or a real kernel, this crate
//! implements those primitives with Linux semantics:
//!
//! * processes with credentials, capabilities, environment, rlimits and an
//!   fd table ([`process`]),
//! * the seven namespace kinds with `fork`/`unshare`/`setns` inheritance
//!   rules ([`ns`]),
//! * a mount table per mount namespace with bind mounts, `MS_PRIVATE` /
//!   `MS_SHARED` propagation, move-mounts and `chroot` ([`mount`]),
//! * a VFS: path walking across mount boundaries with symlink resolution,
//!   permission checks, fd-level syscalls, and a page cache with
//!   write-through/writeback policies per mount ([`vfs`], [`pagecache`]),
//! * cgroups ([`cgroup`]), pipes with `splice` ([`pipe`]), Unix domain
//!   sockets ([`socket`]), `epoll` ([`epoll`]),
//! * synthetic `/proc` ([`procfs`]) and `/dev` ([`devfs`]).
//!
//! The entry point is [`Kernel`]: a shared handle whose methods are the
//! system calls of the simulated machine. Kernel state is decomposed into
//! independently locked subsystems — a pid-sharded process table and
//! per-namespace mount tables ([`table`]) — so syscalls from unrelated
//! processes execute concurrently on real threads; see [`table`] for the
//! lock-ordering discipline.

pub mod cgroup;
pub mod cred;
pub mod devfs;
pub mod epoll;
pub mod kernel;
pub mod mount;
pub mod ns;
pub mod pagecache;
pub mod pipe;
pub mod process;
pub mod procfs;
pub mod socket;
pub mod table;
pub mod vfs;

pub use cgroup::CgroupPath;
pub use cred::Credentials;
pub use kernel::{FanotifyEvent, Kernel, KernelConfig, ProcInfo};
pub use mount::{CacheMode, MountFlags, MountId, Propagation};
pub use ns::{NamespaceId, NamespaceKind, NamespaceSet};
pub use pagecache::PageCacheStats;
pub use process::ProcessState;
pub use table::DEFAULT_PROC_SHARDS;
