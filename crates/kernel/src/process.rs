//! Processes: credentials, namespaces, environment, and the fd table.

use crate::cgroup::CgroupPath;
use crate::cred::Credentials;
use crate::epoll::Epoll;
use crate::mount::{CacheMode, MountId};
use crate::ns::NamespaceSet;
use crate::pagecache::FileRef;
use crate::pipe::Pipe;
use crate::socket::{SocketEnd, SocketListener};
use cntr_types::{DevId, Ino, OpenFlags, Pid, RlimitSet};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A location in the VFS: a mount plus an inode within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsLoc {
    /// The mount.
    pub mount: MountId,
    /// The inode within that mount's filesystem.
    pub ino: Ino,
}

/// What an open file descriptor refers to.
pub enum FileKind {
    /// A regular file on a mounted filesystem.
    Regular {
        /// Mount it was opened through.
        mount: MountId,
        /// Filesystem id (page-cache key).
        dev: DevId,
        /// Cache policy of the mount at open time.
        cache: CacheMode,
        /// The pinned filesystem handle.
        file: Arc<FileRef>,
    },
    /// An open directory (for `readdir`).
    Directory {
        /// Mount it was opened through.
        mount: MountId,
        /// Filesystem id.
        dev: DevId,
        /// Directory inode.
        ino: Ino,
    },
    /// Read end of a pipe.
    PipeRead(Arc<Pipe>),
    /// Write end of a pipe.
    PipeWrite(Arc<Pipe>),
    /// A connected Unix stream socket.
    Socket(SocketEnd),
    /// A listening Unix socket.
    Listener(Arc<SocketListener>),
    /// An epoll instance.
    Epoll(Arc<Epoll>),
    /// `/dev/null`.
    DevNull,
    /// `/dev/zero`.
    DevZero,
    /// `/dev/urandom` (deterministic xorshift stream).
    DevUrandom,
}

/// An open file description (shared by `dup`ed descriptors).
pub struct OpenFile {
    /// What the description refers to.
    pub kind: FileKind,
    /// Flags at open.
    pub flags: OpenFlags,
    /// Seek position (shared across dups, as in Linux).
    pub offset: Mutex<u64>,
}

/// Close-time side effects run at the *true* last drop of the description
/// — exactly once, no matter where that drop happens (explicit `close`,
/// `exit` teardown, a fork rollback, or a transient clone taken by
/// `splice`/`get_file` outliving the final descriptor). Pipe ends get
/// their half-close semantics; a connected socket shuts down so the peer
/// observes EOF; a listener stops accepting, so `connect` on its socket
/// file is refused even if its `socket_nodes` registration lingers
/// briefly.
impl Drop for OpenFile {
    fn drop(&mut self) {
        match &self.kind {
            FileKind::PipeRead(p) => p.close_read(),
            FileKind::PipeWrite(p) => p.close_write(),
            FileKind::Listener(l) => l.close(),
            // Last close of a connected socket tears the connection down,
            // as in Linux: the peer drains in-flight bytes then reads EOF,
            // and its writes fail with ECONNRESET.
            FileKind::Socket(s) => s.shutdown(),
            _ => {}
        }
    }
}

/// One fd-table slot.
pub struct FdEntry {
    /// The open file description.
    pub file: Arc<OpenFile>,
    /// Close-on-exec flag.
    pub cloexec: bool,
}

impl Clone for FdEntry {
    fn clone(&self) -> FdEntry {
        FdEntry {
            file: Arc::clone(&self.file),
            cloexec: self.cloexec,
        }
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Alive.
    Running,
    /// Exited but not yet reaped.
    Zombie,
}

/// A simulated process.
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Command name (`/proc/<pid>/comm`).
    pub name: String,
    /// Security context.
    pub creds: Credentials,
    /// Namespace membership.
    pub ns: NamespaceSet,
    /// Current working directory.
    pub cwd: VfsLoc,
    /// Canonical absolute path of `cwd` within the process root (kept
    /// symlink-free by `chdir`; used to rebuild the `..` walk stack).
    pub cwd_path: String,
    /// Root directory (changed by `chroot`).
    pub root: VfsLoc,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Resource limits.
    pub rlimits: RlimitSet,
    /// File descriptor table.
    pub fds: HashMap<u32, FdEntry>,
    /// Next fd number to hand out.
    pub next_fd: u32,
    /// Cgroup membership (kept in sync with the cgroup tree).
    pub cgroup: CgroupPath,
    /// Lifecycle state.
    pub state: ProcessState,
}

impl Process {
    /// Allocates the lowest free descriptor ≥ `next_fd` for `entry`.
    pub fn install_fd(&mut self, entry: FdEntry) -> u32 {
        let mut fd = self.next_fd;
        while self.fds.contains_key(&fd) {
            fd += 1;
        }
        self.fds.insert(fd, entry);
        self.next_fd = fd + 1;
        fd
    }

    /// A fork-copy of this process with a new pid: shared open file
    /// descriptions, copied everything else.
    pub fn fork_into(&self, pid: Pid) -> Process {
        Process {
            pid,
            ppid: self.pid,
            name: self.name.clone(),
            creds: self.creds.clone(),
            ns: self.ns,
            cwd: self.cwd,
            cwd_path: self.cwd_path.clone(),
            root: self.root,
            env: self.env.clone(),
            rlimits: self.rlimits,
            fds: self.fds.clone(),
            next_fd: self.next_fd,
            cgroup: self.cgroup.clone(),
            state: ProcessState::Running,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ns::NamespaceId;

    fn proc() -> Process {
        Process {
            pid: Pid(1),
            ppid: Pid(0),
            name: "init".into(),
            creds: Credentials::host_root(),
            ns: NamespaceSet::uniform(NamespaceId(1)),
            cwd: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            cwd_path: "/".into(),
            root: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            env: BTreeMap::new(),
            rlimits: RlimitSet::default(),
            fds: HashMap::new(),
            next_fd: 0,
            cgroup: CgroupPath::root(),
            state: ProcessState::Running,
        }
    }

    #[test]
    fn install_fd_reuses_lowest_free() {
        let mut p = proc();
        let mk = || FdEntry {
            file: Arc::new(OpenFile {
                kind: FileKind::DevNull,
                flags: OpenFlags::RDWR,
                offset: Mutex::new(0),
            }),
            cloexec: false,
        };
        let a = p.install_fd(mk());
        let b = p.install_fd(mk());
        assert_eq!((a, b), (0, 1));
        p.fds.remove(&0);
        p.next_fd = 0;
        let c = p.install_fd(mk());
        assert_eq!(c, 0, "lowest free fd is reused");
    }

    #[test]
    fn fork_shares_open_file_descriptions() {
        let mut p = proc();
        let entry = FdEntry {
            file: Arc::new(OpenFile {
                kind: FileKind::DevZero,
                flags: OpenFlags::RDONLY,
                offset: Mutex::new(42),
            }),
            cloexec: false,
        };
        let fd = p.install_fd(entry);
        let child = p.fork_into(Pid(2));
        assert_eq!(child.ppid, Pid(1));
        // Same description: advancing the child's offset is visible in the parent.
        *child.fds[&fd].file.offset.lock() = 99;
        assert_eq!(*p.fds[&fd].file.offset.lock(), 99);
    }
}
