//! The unified page cache — memory-bounded, Linux-mm style.
//!
//! Reads and writes on cached mounts go through here. Two per-mount flags —
//! [`CacheMode::writeback`] and [`CacheMode::keep_cache`] — correspond to
//! the FUSE optimizations the paper evaluates in §3.3/§5.2.3: a FUSE mount
//! without `FOPEN_KEEP_CACHE` has its pages invalidated on every `open`, and
//! without `FUSE_WRITEBACK_CACHE` every write crosses into the server
//! immediately (write-through). The paper's "double buffering in the page
//! cache [is one of] the main performance bottlenecks" observation emerges
//! here naturally: a CntrFS mount and the backing filesystem's own mount
//! each consume page-cache capacity for the same bytes.
//!
//! # Memory management
//!
//! The cache is bounded by `capacity_pages` and reclaims with the kernel's
//! two-list design:
//!
//! * **Two-list LRU.** Every resident page lives on exactly one of two
//!   intrusive lists (O(1) link/unlink through slab indices — no per-access
//!   allocation, no scan-and-sort). A fresh page enters the *inactive* list
//!   head; a hit sets its referenced bit; a second hit while referenced
//!   promotes it to the *active* list. Reclaim scans the inactive tail:
//!   referenced pages get a second chance (promoted), cold clean pages are
//!   evicted, cold dirty pages are written back first (*writeback-then-
//!   evict* — an all-dirty cache still makes progress instead of silently
//!   growing past capacity). When the active list outgrows the inactive
//!   list its tail is aged down (referenced bit cleared, then demoted), so
//!   a streaming read — one touch per page — can never flush the
//!   twice-touched hot working set.
//! * **Dirty-ratio throttling.** A writer crossing the background
//!   threshold wakes the flusher; one crossing the hard dirty limit is
//!   backpressured *proportionally* in [`balance_dirty_pages`-style]:
//!   it synchronously writes back a bounded multiple of what it just
//!   dirtied, then continues. The debt is per-writer, so 64 containers
//!   crossing together each pay their own share instead of one victim
//!   stalling for everybody. Without a flusher (deterministic
//!   configurations: unit tests, the differential oracle, the paper
//!   profile) the writer drains to the background threshold itself — the
//!   old stop-world behaviour, still bounded and reproducible.
//! * **Background writeback.** A kworker-style flusher thread, spawned
//!   lazily on the first background-threshold crossing, drains coalesced
//!   dirty runs through the batched `write_bytes` path (and over the ring
//!   transport when negotiated). It is woken by dirty-ratio crossings and
//!   a periodic tick, holds no lock across its park point
//!   (lockdep-checked), and is joined on cache drop.
//!
//! [`balance_dirty_pages`-style]: https://www.kernel.org/doc/html/latest/admin-guide/sysctl/vm.html
//!
//! Lock discipline: the LRU state lock (`pagecache.lru`, rank 4) and the
//! flusher control lock (`pagecache.flusher`, rank 5) are ranked above the
//! kernel subsystem table (see [`crate::table::lock_class`]). No
//! filesystem call — fill, write-back, `FileRef` release — ever runs under
//! either of them: a FUSE-backed flush re-enters the kernel through the
//! server, and the PR-3 re-entrancy rules require the transport to be
//! entered lock-free (`kernel.fd_offset` excepted).

use crate::mount::CacheMode;
use crate::table::lock_class;
use bytes::Bytes;
use cntr_fs::{Fh, Filesystem};
use cntr_types::cost::PAGE_SIZE;
use cntr_types::{CostModel, DevId, Errno, Ino, SimClock, SysResult};
use obs::{LazyCounter, LazyGauge, LazyHistogram, Subsystem};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

// Global observability metrics, aggregated across every `PageCache` instance
// in the process (the per-instance [`PageCacheStats`] snapshot remains the
// per-cache view). All updates are single relaxed atomic ops. Invariant kept
// by [`PageCache::read`]: each page iteration bumps `lookups` exactly once
// and then exactly one of `hits`/`misses`, so at quiescence
// `hits + misses == lookups`.
static OBS_LOOKUPS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.lookups");
static OBS_HITS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.hits");
static OBS_MISSES: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.misses");
static OBS_EVICTIONS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.evictions");
static OBS_FLUSHED_PAGES: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.flushed-pages");
static OBS_FLUSH_BATCHES: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.flush-batches");
static OBS_INVALIDATIONS: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.invalidations");
/// Pages examined by the reclaim scan (both lists — the analogue of
/// `pgscan` in `/proc/vmstat`).
static OBS_RECLAIM_SCANS: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.reclaim-scans");
/// Times the background flusher woke up and found work above the
/// background threshold.
static OBS_WRITEBACK_WAKEUPS: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.writeback-wakeups");
/// Writers that crossed the hard dirty limit and paid a foreground
/// write-back stall.
static OBS_THROTTLE_STALLS: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.throttle-stalls");
/// Real (wall-clock) nanoseconds a throttled writer spent in its
/// foreground write-back stall.
static OBS_THROTTLE_STALL_NS: LazyHistogram =
    LazyHistogram::new(Subsystem::PageCache, "pagecache.throttle-stall-ns");
/// Dirty pages currently pending write-back, summed over all caches. Each
/// site that changes a cache's `dirty_total` applies the same delta here
/// while still holding that cache's state lock. The same delta discipline
/// holds for the residency gauges below: every LRU helper that links,
/// unlinks or moves a page adjusts them under the lock, so the gauges stay
/// exact sums across cache instances.
static OBS_DIRTY_PAGES: LazyGauge = LazyGauge::new(Subsystem::PageCache, "pagecache.dirty-pages");
/// Pages on active lists, summed over all caches.
static OBS_ACTIVE_PAGES: LazyGauge = LazyGauge::new(Subsystem::PageCache, "pagecache.active-pages");
/// Pages on inactive lists, summed over all caches.
static OBS_INACTIVE_PAGES: LazyGauge =
    LazyGauge::new(Subsystem::PageCache, "pagecache.inactive-pages");
/// Total resident pages, summed over all caches.
static OBS_RESIDENT_PAGES: LazyGauge =
    LazyGauge::new(Subsystem::PageCache, "pagecache.resident-pages");

/// A borrowed open file used for cache fills and writeback.
///
/// Holds the filesystem handle open for as long as any dirty page needs it
/// (mirroring the kernel pinning a `struct file` for writeback); releases
/// the handle on drop.
pub struct FileRef {
    /// The filesystem.
    pub fs: Arc<dyn Filesystem>,
    /// The file's inode.
    pub ino: Ino,
    /// The open handle within `fs`.
    pub fh: Fh,
}

impl Drop for FileRef {
    fn drop(&mut self) {
        // Best-effort: a vanished inode already released everything.
        let _ = self.fs.release(self.ino, self.fh);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    dev: DevId,
    ino: Ino,
    page: u64,
}

/// The bytes of one cached page.
enum PageData {
    /// A private, writable page the cache owns.
    Owned(Box<[u8; PAGE_SIZE]>),
    /// A page *spliced in* from below: a reference-counted slice of the
    /// buffer the filesystem (ultimately the FUSE server's storage) handed
    /// over — no copy was made to cache it. May be shorter than a page
    /// (EOF); the tail reads as zeroes. Promoted to [`PageData::Owned`]
    /// (copy-on-write) the first time it is written.
    Shared(Bytes),
    /// Benchmark-mode page: costs time but no memory, reads as zeroes.
    Synthetic,
}

impl PageData {
    /// Copies `[in_page, in_page+n)` of the page into `buf` (zeroes beyond
    /// the stored length).
    fn read_into(&self, in_page: usize, buf: &mut [u8]) {
        match self {
            PageData::Owned(p) => buf.copy_from_slice(&p[in_page..in_page + buf.len()]),
            PageData::Shared(b) => {
                let have = b.len().saturating_sub(in_page).min(buf.len());
                if have > 0 {
                    buf[..have].copy_from_slice(&b[in_page..in_page + have]);
                }
                buf[have..].fill(0);
            }
            PageData::Synthetic => buf.fill(0),
        }
    }

    /// A mutable view for writing; `None` for synthetic pages. A shared
    /// page is promoted to an owned copy first (copy-on-write — the one
    /// place a spliced-in page is ever copied).
    fn make_mut(&mut self) -> Option<&mut [u8; PAGE_SIZE]> {
        if let PageData::Shared(b) = self {
            let mut page = Box::new([0u8; PAGE_SIZE]);
            let n = b.len().min(PAGE_SIZE);
            page[..n].copy_from_slice(&b[..n]);
            *self = PageData::Owned(page);
        }
        match self {
            PageData::Owned(p) => Some(p),
            PageData::Synthetic => None,
            PageData::Shared(_) => unreachable!("promoted above"),
        }
    }

    /// An O(1) immutable snapshot for write-back. An owned page is
    /// converted in place to [`PageData::Shared`] (moving the buffer
    /// behind a refcount — no copy) so the snapshot and the resident page
    /// alias the same bytes; a later write to the page COWs away via
    /// [`PageData::make_mut`]. This is what lets the flusher assemble run
    /// buffers *outside* the LRU lock: the gather under the lock is
    /// pointer work, not memcpy.
    fn share(&mut self) -> PageData {
        if let PageData::Owned(_) = self {
            let PageData::Owned(p) = std::mem::replace(self, PageData::Synthetic) else {
                unreachable!("matched above")
            };
            *self = PageData::Shared(Bytes::from((p as Box<[u8]>).into_vec()));
        }
        match self {
            PageData::Shared(b) => PageData::Shared(b.clone()),
            PageData::Synthetic => PageData::Synthetic,
            PageData::Owned(_) => unreachable!("converted above"),
        }
    }
}

/// Slab sentinel: "no slot".
const NIL: u32 = u32::MAX;

/// Which LRU list a resident page is linked on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LruKind {
    /// The hot list: pages touched at least twice.
    Active,
    /// The cold list: fresh fills and demoted pages; reclaim scans here.
    Inactive,
}

/// One intrusive doubly-linked list over slab slots. Head is the most
/// recently linked end; reclaim consumes from the tail.
struct LruList {
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    const fn new() -> LruList {
        LruList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// One resident page: identity, bytes, write-back state and LRU linkage.
struct Page {
    key: PageKey,
    data: PageData,
    dirty: bool,
    /// An in-flight bounded flush has snapshotted this page and will
    /// write it out; other bounded flushes skip it instead of submitting
    /// the same bytes twice. Full flushes (`fsync` must not return before
    /// the data is submitted) ignore the flag. Cleared when the flush
    /// completes, succeed or fail.
    writeback: bool,
    /// Set on every hit; cleared (with a rotation or promotion) by the
    /// reclaim scan — the clock-style aging bit.
    referenced: bool,
    list: LruKind,
    /// Bumped on every write; write-back completion only marks a page
    /// clean if the version it captured is still current (re-dirty
    /// detection).
    version: u64,
    prev: u32,
    next: u32,
}

/// Invariant: a `FileState` (it owns a [`FileRef`] via `flush_ref`) must
/// never be dropped while the cache state lock is held. Dropping the last
/// `Arc<FileRef>` calls `Filesystem::release`, which for a FUSE mount is a
/// transport round trip — blocking inside the lock that writeback re-entry
/// needs. Every removal site takes the state out, unlocks, then drops.
struct FileState {
    /// Resident page numbers of this file (clean and dirty) — gives
    /// invalidate/truncate an O(pages-of-file) sweep instead of a scan of
    /// the whole cache.
    pages: BTreeSet<u64>,
    /// Dirty page numbers, sorted — write-back peels coalesced runs
    /// straight off this index.
    dirty: BTreeSet<u64>,
    /// Write handle pinned for writeback.
    flush_ref: Option<Arc<FileRef>>,
    /// Size as extended by not-yet-flushed writes.
    pending_size: Option<u64>,
    /// Modification time of the most recent buffered write (the filesystem
    /// has not seen the data yet, but `stat` must show the new mtime).
    pending_mtime: Option<cntr_types::Timespec>,
}

impl FileState {
    fn new() -> FileState {
        FileState {
            pages: BTreeSet::new(),
            dirty: BTreeSet::new(),
            flush_ref: None,
            pending_size: None,
            pending_mtime: None,
        }
    }

    /// True when nothing references this state any more and the entry can
    /// be dropped from the file table.
    fn is_empty(&self) -> bool {
        self.pages.is_empty()
            && self.dirty.is_empty()
            && self.flush_ref.is_none()
            && self.pending_size.is_none()
            && self.pending_mtime.is_none()
    }
}

/// Everything behind the `pagecache.lru` lock: the page slab, the lookup
/// index, the two LRU lists and the per-file state.
struct CacheState {
    /// Page slab; `free` holds recycled slot indices.
    slots: Vec<Option<Page>>,
    free: Vec<u32>,
    /// Hot-path lookup: key → slot.
    map: HashMap<PageKey, u32>,
    files: HashMap<(DevId, Ino), FileState>,
    active: LruList,
    inactive: LruList,
    dirty_total: usize,
}

impl CacheState {
    fn page(&self, slot: u32) -> &Page {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    fn page_mut(&mut self, slot: u32) -> &mut Page {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    fn resident(&self) -> usize {
        self.map.len()
    }

    fn list_mut(&mut self, kind: LruKind) -> &mut LruList {
        match kind {
            LruKind::Active => &mut self.active,
            LruKind::Inactive => &mut self.inactive,
        }
    }

    /// Unlinks `slot` from the list it is on (gauges untouched — callers
    /// pair this with a relink or a removal).
    fn unlink(&mut self, slot: u32) {
        let (kind, prev, next) = {
            let p = self.page(slot);
            (p.list, p.prev, p.next)
        };
        if prev == NIL {
            self.list_mut(kind).head = next;
        } else {
            self.page_mut(prev).next = next;
        }
        if next == NIL {
            self.list_mut(kind).tail = prev;
        } else {
            self.page_mut(next).prev = prev;
        }
        self.list_mut(kind).len -= 1;
    }

    /// Links `slot` at the head of `kind` (gauges untouched).
    fn link_front(&mut self, kind: LruKind, slot: u32) {
        let old_head = self.list_mut(kind).head;
        {
            let p = self.page_mut(slot);
            p.list = kind;
            p.prev = NIL;
            p.next = old_head;
        }
        if old_head != NIL {
            self.page_mut(old_head).prev = slot;
        }
        let list = self.list_mut(kind);
        list.head = slot;
        if list.tail == NIL {
            list.tail = slot;
        }
        list.len += 1;
    }

    /// Moves `slot` to the head of `kind`, keeping the residency gauges
    /// exact when the page changes list.
    fn move_to(&mut self, kind: LruKind, slot: u32) {
        let from = self.page(slot).list;
        self.unlink(slot);
        self.link_front(kind, slot);
        if from != kind {
            match kind {
                LruKind::Active => {
                    OBS_ACTIVE_PAGES.inc();
                    OBS_INACTIVE_PAGES.dec();
                }
                LruKind::Inactive => {
                    OBS_INACTIVE_PAGES.inc();
                    OBS_ACTIVE_PAGES.dec();
                }
            }
        }
    }

    /// Inserts a fresh page at the inactive head (fills and first writes
    /// enter cold; promotion takes a second touch) and indexes it.
    fn insert(&mut self, key: PageKey, data: PageData, dirty: bool, version: u64) -> u32 {
        let page = Page {
            key,
            data,
            dirty,
            writeback: false,
            referenced: false,
            list: LruKind::Inactive,
            version,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(page);
                s
            }
            None => {
                self.slots.push(Some(page));
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, slot);
        self.link_front(LruKind::Inactive, slot);
        OBS_INACTIVE_PAGES.inc();
        OBS_RESIDENT_PAGES.inc();
        let fstate = self
            .files
            .entry((key.dev, key.ino))
            .or_insert_with(FileState::new);
        fstate.pages.insert(key.page);
        if dirty {
            fstate.dirty.insert(key.page);
            self.dirty_total += 1;
            OBS_DIRTY_PAGES.inc();
        }
        slot
    }

    /// Marks the page at `slot` dirty (no-op if already dirty), keeping the
    /// per-file index and the dirty accounting exact.
    fn mark_dirty(&mut self, slot: u32) {
        let key = self.page(slot).key;
        if self.page(slot).dirty {
            return;
        }
        self.page_mut(slot).dirty = true;
        self.files
            .entry((key.dev, key.ino))
            .or_insert_with(FileState::new)
            .dirty
            .insert(key.page);
        self.dirty_total += 1;
        OBS_DIRTY_PAGES.inc();
    }

    /// Marks the page at `slot` clean after write-back.
    fn mark_clean(&mut self, slot: u32) {
        let key = self.page(slot).key;
        if !self.page(slot).dirty {
            return;
        }
        self.page_mut(slot).dirty = false;
        if let Some(f) = self.files.get_mut(&(key.dev, key.ino)) {
            f.dirty.remove(&key.page);
        }
        self.dirty_total = self.dirty_total.saturating_sub(1);
        OBS_DIRTY_PAGES.dec();
    }

    /// Removes the page at `slot` entirely: unlinks it, drops it from both
    /// indexes and fixes the dirty accounting. Returns the file-table
    /// entry when this was the file's last trace, so the caller can drop
    /// any `FileRef` it owns *outside* the lock.
    fn remove(&mut self, slot: u32) -> Option<FileState> {
        self.unlink(slot);
        let page = self.slots[slot as usize].take().expect("live slot");
        self.free.push(slot);
        self.map.remove(&page.key);
        match page.list {
            LruKind::Active => OBS_ACTIVE_PAGES.dec(),
            LruKind::Inactive => OBS_INACTIVE_PAGES.dec(),
        }
        OBS_RESIDENT_PAGES.dec();
        if page.dirty {
            self.dirty_total = self.dirty_total.saturating_sub(1);
            OBS_DIRTY_PAGES.dec();
        }
        let file_key = (page.key.dev, page.key.ino);
        if let Some(f) = self.files.get_mut(&file_key) {
            f.pages.remove(&page.key.page);
            f.dirty.remove(&page.key.page);
            if f.is_empty() {
                return self.files.remove(&file_key);
            }
        }
        None
    }

    /// The file with the most dirty pages — the write-back victim order
    /// (largest dirty set first amortizes per-flush overhead best).
    fn dirtiest_file(&self) -> Option<(DevId, Ino)> {
        self.files
            .iter()
            .filter(|(_, f)| !f.dirty.is_empty())
            .max_by_key(|(_, f)| f.dirty.len())
            .map(|(&k, _)| k)
    }
}

/// One contiguous writeback run: start page plus the
/// `(page, version, snapshot)` members it covers — versions for re-dirty
/// detection, snapshots (O(1) [`PageData::share`] aliases taken under the
/// LRU lock) for assembling the contiguous buffer outside it.
type FlushRun = (u64, Vec<(u64, u64, PageData)>);

thread_local! {
    /// Set while a flush is executing on this thread. Flushing a FUSE-backed
    /// file re-enters the page cache through the server's own writes; without
    /// this guard the nested write would start a second flush of the same
    /// still-dirty file, recursing without bound. Reclaim honours it too:
    /// a nested over-capacity insert evicts clean pages only, accepting a
    /// bounded transient overage instead of recursive write-back.
    static IN_FLUSH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct FlushGuard {
    prev: bool,
}

impl FlushGuard {
    fn enter() -> FlushGuard {
        let prev = IN_FLUSH.with(|f| f.replace(true));
        FlushGuard { prev }
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        IN_FLUSH.with(|f| f.set(self.prev));
    }
}

fn in_flush() -> bool {
    IN_FLUSH.with(std::cell::Cell::get)
}

/// Observable page-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Pages served from cache.
    pub hits: u64,
    /// Pages that had to be read from the filesystem.
    pub misses: u64,
    /// Pages written back to the filesystem.
    pub flushed_pages: u64,
    /// Writeback batches issued (contiguous runs).
    pub flush_batches: u64,
    /// Pages evicted for capacity.
    pub evictions: u64,
    /// Whole-file invalidations (`open` without keep_cache, truncate).
    pub invalidations: u64,
    /// Pages examined by the reclaim scan.
    pub reclaim_scans: u64,
    /// Writers stalled at the hard dirty limit.
    pub throttle_stalls: u64,
    /// Background-flusher wakeups that found work.
    pub writeback_wakeups: u64,
}

/// The background flusher's control block: the spawn-once state behind the
/// `pagecache.flusher` lock. The running thread itself never takes this
/// lock — wake/stop travel through atomics and `unpark`.
struct FlusherCtl {
    /// Handle used to wake the parked flusher.
    thread: Option<std::thread::Thread>,
    /// Join handle, taken by [`PageCache::drop`].
    join: Option<JoinHandle<()>>,
}

/// How many pages the background flusher writes back per chunk: large
/// enough that coalesced runs amortize per-request overhead (1 MiB), small
/// enough that stop/wake latency stays bounded.
const FLUSHER_CHUNK_PAGES: usize = 256;

/// Minimum foreground write-back debt of a throttled writer, in pages.
/// Tiny writers crossing the hard limit still make real progress.
const MIN_THROTTLE_QUOTA: usize = 32;

/// The shared body of a [`PageCache`]: all state and behaviour. The
/// background flusher holds a [`Weak`] to it, so the cache's lifetime stays
/// owned by the [`PageCache`] handle (whose drop stops and joins the
/// flusher).
#[doc(hidden)]
pub struct CacheShared {
    cost: CostModel,
    clock: SimClock,
    capacity_pages: usize,
    dirty_limit_pages: usize,
    /// Background write-back starts above this (and the flusher drains down
    /// to it). Always below `dirty_limit_pages`. Atomic only so the
    /// pre-sharing builders can set it; relaxed loads everywhere.
    dirty_bg_pages: AtomicUsize,
    /// Whether write-back coalesces contiguous dirty runs into single large
    /// writes (the shipping behaviour). Off = one write per page — the
    /// unbatched baseline the differential tests and benches compare
    /// against. Atomic for the builders, like `dirty_bg_pages`.
    coalesce: AtomicBool,
    /// Whether a kworker-style flusher thread handles background
    /// write-back. Off = writers drain inline (deterministic). Atomic for
    /// the builders.
    flusher_enabled: AtomicBool,
    /// Back-reference for spawning the flusher from a `&CacheShared`
    /// writer path (the thread itself must hold only a `Weak`, or the
    /// cache could never drop).
    self_ref: Weak<CacheShared>,
    /// Tells the flusher to exit (set by drop, checked per chunk).
    stop: AtomicBool,
    lru: Mutex<CacheState>,
    flusher: Mutex<FlusherCtl>,
    hits: AtomicU64,
    misses: AtomicU64,
    flushed_pages: AtomicU64,
    flush_batches: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    reclaim_scans: AtomicU64,
    throttle_stalls: AtomicU64,
    writeback_wakeups: AtomicU64,
}

/// The page cache shared by all mounts of a [`crate::Kernel`].
///
/// Dropping the handle stops and joins the background flusher (if one was
/// ever spawned), then releases the cached state.
pub struct PageCache {
    inner: Arc<CacheShared>,
}

impl std::ops::Deref for PageCache {
    type Target = CacheShared;

    fn deref(&self) -> &CacheShared {
        &self.inner
    }
}

impl Drop for PageCache {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        let (thread, join) = {
            let mut ctl = self.inner.flusher.lock();
            (ctl.thread.take(), ctl.join.take())
        };
        if let Some(t) = thread {
            t.unpark();
        }
        if let Some(j) = join {
            // The flusher sees `stop` (or fails to upgrade its Weak once
            // this handle is gone) and exits; nothing is held while we
            // wait.
            let _ = j.join();
        }
    }
}

impl PageCache {
    /// Creates a cache with the given capacity and hard dirty threshold
    /// (bytes), write-back coalescing on, the background threshold at half
    /// the hard limit, and no flusher thread (writers drain inline —
    /// deterministic). [`PageCache::with_background_writeback`] turns the
    /// flusher on.
    pub fn new(
        clock: SimClock,
        cost: CostModel,
        capacity_bytes: u64,
        dirty_limit_bytes: u64,
    ) -> PageCache {
        let dirty_limit_pages = (dirty_limit_bytes / PAGE_SIZE as u64).max(4) as usize;
        PageCache {
            inner: Arc::new_cyclic(|self_ref| CacheShared {
                cost,
                clock,
                capacity_pages: (capacity_bytes / PAGE_SIZE as u64).max(16) as usize,
                dirty_limit_pages,
                dirty_bg_pages: AtomicUsize::new((dirty_limit_pages / 2).max(1)),
                coalesce: AtomicBool::new(true),
                flusher_enabled: AtomicBool::new(false),
                self_ref: self_ref.clone(),
                stop: AtomicBool::new(false),
                lru: Mutex::new_class(
                    lock_class::PAGECACHE_LRU,
                    CacheState {
                        slots: Vec::new(),
                        free: Vec::new(),
                        map: HashMap::new(),
                        files: HashMap::new(),
                        active: LruList::new(),
                        inactive: LruList::new(),
                        dirty_total: 0,
                    },
                ),
                flusher: Mutex::new_class(
                    lock_class::PAGECACHE_FLUSHER,
                    FlusherCtl {
                        thread: None,
                        join: None,
                    },
                ),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                flushed_pages: AtomicU64::new(0),
                flush_batches: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                invalidations: AtomicU64::new(0),
                reclaim_scans: AtomicU64::new(0),
                throttle_stalls: AtomicU64::new(0),
                writeback_wakeups: AtomicU64::new(0),
            }),
        }
    }

    /// Disables (or re-enables) write-back coalescing. With it off, every
    /// dirty page flushes as its own write — the per-page baseline that
    /// shows what batching buys.
    #[must_use]
    pub fn with_coalesce(self, coalesce: bool) -> PageCache {
        self.inner.coalesce.store(coalesce, Ordering::Relaxed);
        self
    }

    /// Sets the background write-back threshold in bytes (clamped below
    /// the hard limit). Crossing it wakes the flusher (when enabled); the
    /// drain target for both background and inline write-back.
    #[must_use]
    pub fn with_dirty_background_bytes(self, bytes: u64) -> PageCache {
        let hard = self.dirty_limit_pages;
        self.inner.dirty_bg_pages.store(
            ((bytes / PAGE_SIZE as u64) as usize).clamp(1, hard.saturating_sub(1).max(1)),
            Ordering::Relaxed,
        );
        self
    }

    /// Enables (or disables) the kworker-style background flusher thread.
    /// The thread is spawned lazily on the first background-threshold
    /// crossing, so configurations that never buffer enough dirty data
    /// stay single-threaded.
    #[must_use]
    pub fn with_background_writeback(self, enabled: bool) -> PageCache {
        self.inner.flusher_enabled.store(enabled, Ordering::Relaxed);
        self
    }
}

/// The flusher main loop: drain coalesced dirty runs while above the
/// background threshold, then park until woken (dirty-ratio crossing) or
/// the periodic tick. Holds the cache only through a `Weak` so the owning
/// [`PageCache`] drop wins, and holds *no lock* across the park point.
fn flusher_main(cache: Weak<CacheShared>) {
    loop {
        {
            let Some(c) = cache.upgrade() else { return };
            let mut woke_with_work = false;
            loop {
                if c.stop.load(Ordering::Acquire) {
                    return;
                }
                let bg = c.dirty_bg_pages.load(Ordering::Relaxed);
                let victim = {
                    let st = c.lru.lock();
                    if st.dirty_total <= bg {
                        None
                    } else {
                        st.dirtiest_file()
                    }
                };
                let Some((dev, ino)) = victim else { break };
                if !woke_with_work {
                    woke_with_work = true;
                    c.writeback_wakeups.fetch_add(1, Ordering::Relaxed);
                    OBS_WRITEBACK_WAKEUPS.inc();
                }
                // A flush error (EIO, ENOSPC, a torn-down mount) ends this
                // drain; the dirty pages stay and the next wakeup retries.
                match c.flush_chunk(dev, ino, FLUSHER_CHUNK_PAGES) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            // The Arc dies here, before the park: the owner's drop must be
            // able to win the race and see its unpark consumed.
        }
        // Park checkpoint: write-back may have re-entered FUSE transports,
        // but nothing may still be held while this thread sleeps.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        lockdep::assert_no_locks_held_except(&[]);
        std::thread::park_timeout(Duration::from_millis(100));
    }
}

impl CacheShared {
    /// Counter snapshot.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            flushed_pages: self.flushed_pages.load(Ordering::Relaxed),
            flush_batches: self.flush_batches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            reclaim_scans: self.reclaim_scans.load(Ordering::Relaxed),
            throttle_stalls: self.throttle_stalls.load(Ordering::Relaxed),
            writeback_wakeups: self.writeback_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.lru.lock().resident()
    }

    /// Pages on the (active, inactive) LRU lists.
    pub fn residency(&self) -> (usize, usize) {
        let st = self.lru.lock();
        (st.active.len, st.inactive.len)
    }

    /// The configured ceiling, in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Bytes of pending (unflushed) dirty data.
    pub fn dirty_bytes(&self) -> u64 {
        self.lru.lock().dirty_total as u64 * PAGE_SIZE as u64
    }

    /// The file size including unflushed extensions, if larger than `fs_size`.
    pub fn effective_size(&self, dev: DevId, ino: Ino, fs_size: u64) -> u64 {
        let st = self.lru.lock();
        st.files
            .get(&(dev, ino))
            .and_then(|f| f.pending_size)
            .map_or(fs_size, |p| p.max(fs_size))
    }

    /// The mtime of the most recent buffered write, if any data is pending.
    pub fn pending_mtime(&self, dev: DevId, ino: Ino) -> Option<cntr_types::Timespec> {
        self.lru
            .lock()
            .files
            .get(&(dev, ino))
            .and_then(|f| f.pending_mtime)
    }

    /// Drops cached pages fully inside `[offset, offset+len)` — used after a
    /// hole punch so stale buffered data cannot shadow the hole.
    pub fn drop_range(&self, dev: DevId, ino: Ino, offset: u64, len: u64) {
        let first = offset.div_ceil(PAGE_SIZE as u64);
        let last = (offset + len) / PAGE_SIZE as u64;
        let mut st = self.lru.lock();
        let doomed: Vec<u64> = match st.files.get(&(dev, ino)) {
            Some(f) => f.pages.range(first..last).copied().collect(),
            None => return,
        };
        let mut removed = Vec::new();
        for page in doomed {
            if let Some(&slot) = st.map.get(&PageKey { dev, ino, page }) {
                removed.extend(st.remove(slot));
            }
        }
        drop(st);
        drop(removed);
    }

    /// Reads through the cache. `file` supplies the fill path; `size` is the
    /// effective file size (reads are clipped to it by the caller).
    pub fn read(
        &self,
        dev: DevId,
        mode: CacheMode,
        file: &Arc<FileRef>,
        offset: u64,
        buf: &mut [u8],
    ) -> SysResult<usize> {
        let ino = file.ino;
        let mut done = 0usize;
        while done < buf.len() {
            let off = offset + done as u64;
            let page_no = off / PAGE_SIZE as u64;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            let key = PageKey {
                dev,
                ino,
                page: page_no,
            };

            let hit = {
                let mut st = self.lru.lock();
                if let Some(&slot) = st.map.get(&key) {
                    // A touch on a referenced inactive page is the second
                    // touch: promote to the active list. Everything else
                    // just sets the referenced bit (the reclaim scan does
                    // the aging).
                    let promote =
                        st.page(slot).referenced && st.page(slot).list == LruKind::Inactive;
                    if promote {
                        st.page_mut(slot).referenced = false;
                        st.move_to(LruKind::Active, slot);
                    } else {
                        st.page_mut(slot).referenced = true;
                    }
                    st.page(slot)
                        .data
                        .read_into(in_page, &mut buf[done..done + n]);
                    true
                } else {
                    false
                }
            };

            OBS_LOOKUPS.inc();
            if hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                OBS_HITS.inc();
                self.clock.advance(self.cost.page_cache_hit_ns);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                OBS_MISSES.inc();
                // Fill the whole page from the filesystem (outside the lock:
                // a FUSE fill re-enters the kernel through the server).
                let page_off = page_no * PAGE_SIZE as u64;
                let data = if mode.synthetic {
                    // Synthetic mode: the fill must still be a real
                    // page-sized read so every layer below (FUSE round trips,
                    // readahead, disk) charges its true cost — only the bytes
                    // are discarded. Stack-allocated: the fill re-enters this
                    // function through the FUSE server.
                    let mut sink = [0u8; PAGE_SIZE];
                    file.fs.read(ino, file.fh, page_off, &mut sink)?;
                    PageData::Synthetic
                } else {
                    // The splice fill: the buffer the filesystem returns is
                    // cached *by reference* — for a spliced FUSE read this is
                    // the server's own allocation, mapped into the page cache
                    // without a copy (a short buffer is an EOF page; its tail
                    // reads as zeroes).
                    self.fill_page(file, ino, page_off)?
                };
                data.read_into(in_page, &mut buf[done..done + n]);
                let over = {
                    let mut st = self.lru.lock();
                    // The fill ran outside the lock; another thread may have
                    // populated (and even dirtied) the page meanwhile. Theirs
                    // wins — replacing a dirty entry with our clean fill
                    // would lose the write and strand the dirty accounting.
                    if let Some(&slot) = st.map.get(&key) {
                        st.page_mut(slot).referenced = true;
                    } else {
                        st.insert(key, data, false, 0);
                    }
                    st.resident() > self.capacity_pages
                };
                if over {
                    self.reclaim()?;
                }
            }
            done += n;
        }
        Ok(done)
    }

    /// Reads one page of data at `page_off`, preferring the zero-copy
    /// `read_bytes` path: a filesystem that answers the whole page (or an
    /// EOF prefix of it) in one buffer has that buffer cached by reference
    /// ([`PageData::Shared`] — the FUSE splice "page remap").
    fn fill_page(&self, file: &Arc<FileRef>, ino: Ino, page_off: u64) -> SysResult<PageData> {
        // `read_bytes_gather` forwards a single full-or-EOF answer
        // untouched (the zero-copy case) and only gathers across chunk
        // boundaries; either way the buffer is cached by reference, and a
        // short buffer is an EOF page whose tail reads as zeroes.
        Ok(PageData::Shared(
            file.fs
                .read_bytes_gather(ino, file.fh, page_off, PAGE_SIZE)?,
        ))
    }

    /// Writes through the cache according to `mode`.
    ///
    /// Write-through: the filesystem sees the write immediately and pages are
    /// updated in place. Writeback: pages go dirty, the dirty-ratio
    /// throttle backpressures the writer, and the flusher (or an
    /// over-limit writer) drains coalesced batches.
    pub fn write(
        &self,
        dev: DevId,
        mode: CacheMode,
        file: &Arc<FileRef>,
        offset: u64,
        data: &[u8],
    ) -> SysResult<usize> {
        let ino = file.ino;
        if !mode.writeback {
            // Write-through: filesystem first (it may fail), then cache.
            let written = file.fs.write(ino, file.fh, offset, data)?;
            self.update_clean_pages(dev, ino, mode, offset, &data[..written])?;
            return Ok(written);
        }

        let mut done = 0usize;
        let mut newly_dirtied = 0usize;
        while done < data.len() {
            let off = offset + done as u64;
            let page_no = off / PAGE_SIZE as u64;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            let key = PageKey {
                dev,
                ino,
                page: page_no,
            };
            let now = self.clock.now();
            let over = {
                let mut st = self.lru.lock();
                let slot = match st.map.get(&key) {
                    Some(&slot) => {
                        st.page_mut(slot).referenced = true;
                        if !st.page(slot).dirty {
                            newly_dirtied += 1;
                        }
                        st.mark_dirty(slot);
                        slot
                    }
                    None => {
                        newly_dirtied += 1;
                        st.insert(
                            key,
                            if mode.synthetic {
                                PageData::Synthetic
                            } else {
                                PageData::Owned(Box::new([0u8; PAGE_SIZE]))
                            },
                            true,
                            0,
                        )
                    }
                };
                if let Some(p) = st.page_mut(slot).data.make_mut() {
                    p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
                }
                st.page_mut(slot).version += 1;
                let end = off + n as u64;
                let fstate = st.files.entry((dev, ino)).or_insert_with(FileState::new);
                fstate.pending_mtime = Some(now);
                if fstate.flush_ref.is_none() {
                    fstate.flush_ref = Some(Arc::clone(file));
                }
                fstate.pending_size = Some(fstate.pending_size.unwrap_or(0).max(end));
                st.resident() > self.capacity_pages
            };
            self.clock.advance(self.cost.page_cache_hit_ns);
            if over {
                // Per-page reclaim keeps the bound tight even when one
                // syscall writes multiples of the whole cache.
                self.reclaim()?;
            }
            done += n;
        }

        self.balance_dirty_pages(newly_dirtied)?;
        Ok(data.len())
    }

    /// Updates (or populates) clean cached pages after a write-through.
    fn update_clean_pages(
        &self,
        dev: DevId,
        ino: Ino,
        mode: CacheMode,
        offset: u64,
        data: &[u8],
    ) -> SysResult<()> {
        let mut done = 0usize;
        let over;
        {
            let mut st = self.lru.lock();
            while done < data.len() {
                let off = offset + done as u64;
                let page_no = off / PAGE_SIZE as u64;
                let in_page = (off % PAGE_SIZE as u64) as usize;
                let n = (PAGE_SIZE - in_page).min(data.len() - done);
                let key = PageKey {
                    dev,
                    ino,
                    page: page_no,
                };
                let slot = match st.map.get(&key) {
                    Some(&slot) => {
                        st.page_mut(slot).referenced = true;
                        slot
                    }
                    None => st.insert(
                        key,
                        if mode.synthetic {
                            PageData::Synthetic
                        } else {
                            PageData::Owned(Box::new([0u8; PAGE_SIZE]))
                        },
                        false,
                        0,
                    ),
                };
                if let Some(p) = st.page_mut(slot).data.make_mut() {
                    p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
                }
                done += n;
            }
            over = st.resident() > self.capacity_pages;
        }
        if over {
            self.reclaim()?;
        }
        Ok(())
    }

    /// The `balance_dirty_pages` checkpoint a write-back writer passes
    /// after dirtying `newly_dirtied` pages. Crossing the background
    /// threshold wakes the flusher; crossing the hard limit makes the
    /// writer pay down a bounded multiple of its own debt in foreground
    /// write-back — paced, proportional, and therefore fair when many
    /// containers cross together. Without a flusher the writer drains all
    /// the way to the background threshold itself (deterministic
    /// stop-world mode).
    fn balance_dirty_pages(&self, newly_dirtied: usize) -> SysResult<()> {
        if newly_dirtied == 0 || in_flush() {
            return Ok(());
        }
        let bg = self.dirty_bg_pages.load(Ordering::Relaxed);
        let dirty = { self.lru.lock().dirty_total };
        if dirty <= bg {
            return Ok(());
        }
        self.kick();
        if dirty <= self.dirty_limit_pages {
            return Ok(());
        }
        self.throttle_stalls.fetch_add(1, Ordering::Relaxed);
        OBS_THROTTLE_STALLS.inc();
        let stall_start = obs::now_ns();
        let paced = self.flusher_enabled.load(Ordering::Relaxed);
        let mut quota = newly_dirtied.saturating_mul(2).max(MIN_THROTTLE_QUOTA);
        loop {
            let victim = {
                let st = self.lru.lock();
                if st.dirty_total <= bg {
                    None
                } else {
                    st.dirtiest_file()
                }
            };
            let Some((vdev, vino)) = victim else { break };
            // Paced mode flushes a bounded chunk; inline mode drains the
            // victim file whole — one big coalesced gather per file, the
            // batching profile of the original stop-world drain (the
            // Phoronix figure bands are calibrated against it).
            let n = self.flush_chunk(vdev, vino, if paced { quota } else { usize::MAX })?;
            if n == 0 {
                break;
            }
            if paced {
                // Paced mode: the writer's debt is bounded; the flusher
                // (already kicked) finishes the backlog in the background.
                quota = quota.saturating_sub(n);
                if quota == 0 {
                    break;
                }
            }
            // Flusher disabled: keep draining to the background threshold
            // — the deterministic inline mode.
        }
        OBS_THROTTLE_STALL_NS.record(obs::now_ns().saturating_sub(stall_start));
        Ok(())
    }

    /// Wakes the background flusher, spawning it on first use. Takes only
    /// the `pagecache.flusher` lock; the LRU lock is never held here. The
    /// spawned thread gets a `Weak` (via `self_ref`), so a cache nobody
    /// writes to again can still be dropped — the flusher fails its
    /// upgrade and exits.
    fn kick(&self) {
        if !self.flusher_enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut ctl = self.flusher.lock();
        if let Some(t) = &ctl.thread {
            t.unpark();
            return;
        }
        let weak = self.self_ref.clone();
        let join = std::thread::Builder::new()
            .name("cntr-flusher".to_string())
            .spawn(move || flusher_main(weak))
            .expect("spawn flusher thread");
        ctl.thread = Some(join.thread().clone());
        ctl.join = Some(join);
    }

    /// Flushes up to `max_pages` dirty pages of one file (ascending page
    /// order, contiguous pages merged into single large filesystem writes
    /// — the coalescing that makes writeback-cached CntrFS *beat* native
    /// ext4 on FIO and PGBench in Figure 2). Returns how many pages were
    /// submitted.
    fn flush_chunk(&self, dev: DevId, ino: Ino, max_pages: usize) -> SysResult<usize> {
        let _guard = FlushGuard::enter();
        let (runs, flush_ref, pending, picked) = {
            let mut st = self.lru.lock();
            let (pages, flush_ref, pending) = {
                let Some(fstate) = st.files.get(&(dev, ino)) else {
                    return Ok(0);
                };
                let Some(flush_ref) = fstate.flush_ref.clone() else {
                    return Ok(0);
                };
                let pages: Vec<u64> = fstate.dirty.iter().take(max_pages).copied().collect();
                (pages, flush_ref, fstate.pending_size)
            };
            // Peel the lowest `max_pages` dirty pages off the sorted
            // per-file index, snapshotting each via an O(1)
            // [`PageData::share`] alias. No page data is copied under the
            // lock: the contiguous run buffers are assembled after it
            // drops, so a concurrent writer is never stalled behind a
            // megabyte memcpy (it COWs away from the aliased bytes
            // instead).
            let coalesce = self.coalesce.load(Ordering::Relaxed);
            // A bounded flush (flusher chunk, writer pacing) skips pages a
            // concurrent flush already has in flight — submitting them
            // again would double the write traffic for nothing. A full
            // flush must not: `fsync` has to have submitted every dirty
            // page itself by the time it returns.
            let skip_inflight = max_pages != usize::MAX;
            let mut runs: Vec<FlushRun> = Vec::new();
            let mut picked = 0usize;
            for page in pages {
                let key = PageKey { dev, ino, page };
                let Some(&slot) = st.map.get(&key) else {
                    continue;
                };
                let (version, snapshot) = {
                    let p = st.page_mut(slot);
                    if skip_inflight && p.writeback {
                        continue;
                    }
                    p.writeback = true;
                    (p.version, p.data.share())
                };
                picked += 1;
                match runs.last_mut() {
                    Some((start, members)) if coalesce && *start + members.len() as u64 == page => {
                        members.push((page, version, snapshot));
                    }
                    _ => runs.push((page, vec![(page, version, snapshot)])),
                }
            }
            (runs, flush_ref, pending, picked)
        };
        if picked == 0 {
            return Ok(0);
        }

        let mut runs = runs.into_iter();
        let mut failed = None;
        for (start_page, members) in runs.by_ref() {
            let offset = start_page * PAGE_SIZE as u64;
            // This assembly is write-back's one copy: from here the run
            // travels as a single retained `Bytes` buffer through
            // `write_bytes` (and, over FUSE with splice-write, across the
            // protocol boundary and into blob storage) without further
            // copies.
            let mut buf = vec![0u8; members.len() * PAGE_SIZE];
            for (i, (_, _, snapshot)) in members.iter().enumerate() {
                snapshot.read_into(0, &mut buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
            }
            // Clip the final run to the pending size so flushing does not
            // extend the file past what was written.
            if let Some(size) = pending {
                let end = offset + buf.len() as u64;
                if end > size && size > offset {
                    buf.truncate((size - offset) as usize);
                }
            }
            // Writeback is background I/O: it occupies the disk but does not
            // stall the writer. An fsync barrier (`fs.fsync` → device flush)
            // waits for the backlog. The run moves as one owned buffer —
            // over FUSE with splice-write negotiated it crosses to the
            // server (and into chunk storage) by reference.
            let wrote = {
                let _bg = cntr_blockdev::BackgroundIo::enter();
                flush_ref
                    .fs
                    .write_bytes(ino, flush_ref.fh, offset, Bytes::from(buf))
            };
            if wrote.is_ok() {
                self.flush_batches.fetch_add(1, Ordering::Relaxed);
                OBS_FLUSH_BATCHES.inc();
                self.flushed_pages
                    .fetch_add(members.len() as u64, Ordering::Relaxed);
                OBS_FLUSHED_PAGES.add(members.len() as u64);
            }
            let mut st = self.lru.lock();
            for (page, version, _) in members {
                let key = PageKey { dev, ino, page };
                if let Some(&slot) = st.map.get(&key) {
                    st.page_mut(slot).writeback = false;
                    // Only mark clean if not re-dirtied during the write.
                    if wrote.is_ok() && st.page(slot).dirty && st.page(slot).version == version {
                        st.mark_clean(slot);
                    }
                }
            }
            drop(st);
            if let Err(e) = wrote {
                failed = Some(e);
                break;
            }
        }
        if let Some(e) = failed {
            // Un-flag the runs that were never submitted so the pages stay
            // eligible for the retry.
            let mut st = self.lru.lock();
            for (_, members) in runs {
                for (page, _, _) in members {
                    let key = PageKey { dev, ino, page };
                    if let Some(&slot) = st.map.get(&key) {
                        st.page_mut(slot).writeback = false;
                    }
                }
            }
            drop(st);
            return Err(e);
        }

        let mut st = self.lru.lock();
        let mut released = None;
        if let Some(f) = st.files.get_mut(&(dev, ino)) {
            if f.dirty.is_empty() {
                f.pending_size = None;
                f.pending_mtime = None;
                released = f.flush_ref.take();
            }
        }
        drop(st);
        drop(released);
        Ok(picked)
    }

    /// Flushes every dirty page of one file (one pass — pages re-dirtied
    /// by a re-entrant server write stay dirty for the next flush).
    pub fn flush_file(&self, dev: DevId, ino: Ino) -> SysResult<()> {
        self.flush_chunk(dev, ino, usize::MAX).map(|_| ())
    }

    /// Reclaims pages until residency is back under the ceiling.
    ///
    /// Each pass under the lock (1) ages the active list down while it
    /// outnumbers the inactive list — referenced tails are rotated with
    /// their bit cleared, cold tails demoted — and (2) scans the inactive
    /// tail: referenced pages are promoted (second chance), clean cold
    /// pages evicted, and dirty cold pages rotated away while the first
    /// dirty file is noted. If eviction alone cannot reach the target the
    /// noted file is written back *outside the lock* and the pass repeats
    /// — writeback-then-evict, so an all-dirty cache still converges.
    ///
    /// Termination: every pass that continues the loop has strictly
    /// decreased `2·referenced + active + 2·resident` (rotations clear
    /// bits, demotions shrink the active list, evictions shrink
    /// residency) or flushed dirty pages; when none of those is possible
    /// the loop exits and accepts the overage (bounded: only re-entrant
    /// write-back takes that path).
    fn reclaim(&self) -> SysResult<()> {
        loop {
            let mut victim: Option<(DevId, Ino)> = None;
            let mut progress = false;
            let done = {
                let mut st = self.lru.lock();
                if st.resident() <= self.capacity_pages {
                    return Ok(());
                }
                // Evict in batches down to ~15/16 capacity so a writer
                // crossing the ceiling does not reclaim on every page.
                let target = self.capacity_pages - self.capacity_pages / 16;
                let mut scanned = 0u64;

                // (1) Age the active list down.
                let mut steps = st.active.len * 2;
                while st.active.len > st.inactive.len && steps > 0 {
                    steps -= 1;
                    let slot = st.active.tail;
                    if slot == NIL {
                        break;
                    }
                    scanned += 1;
                    if st.page(slot).referenced {
                        st.page_mut(slot).referenced = false;
                        st.move_to(LruKind::Active, slot);
                    } else {
                        st.move_to(LruKind::Inactive, slot);
                        progress = true;
                    }
                }

                // (2) Scan the inactive tail.
                let mut scans = st.inactive.len;
                let mut evicted = 0u64;
                let mut dropped_files = Vec::new();
                while st.resident() > target && scans > 0 {
                    scans -= 1;
                    let slot = st.inactive.tail;
                    if slot == NIL {
                        break;
                    }
                    scanned += 1;
                    let (referenced, dirty) = {
                        let p = st.page(slot);
                        (p.referenced, p.dirty)
                    };
                    if referenced {
                        // Second chance: a page touched while waiting on
                        // the cold list has earned the hot list.
                        st.page_mut(slot).referenced = false;
                        st.move_to(LruKind::Active, slot);
                        progress = true;
                    } else if dirty {
                        let k = st.page(slot).key;
                        if victim.is_none() {
                            victim = Some((k.dev, k.ino));
                        }
                        // Park it at the head; write-back will clean it.
                        st.move_to(LruKind::Inactive, slot);
                    } else {
                        dropped_files.extend(st.remove(slot));
                        evicted += 1;
                        progress = true;
                    }
                }
                if evicted > 0 {
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                    OBS_EVICTIONS.add(evicted);
                }
                if scanned > 0 {
                    self.reclaim_scans.fetch_add(scanned, Ordering::Relaxed);
                    OBS_RECLAIM_SCANS.add(scanned);
                }
                let done = st.resident() <= self.capacity_pages;
                drop(st);
                // Evicting a file's last page can drop its `FileState`;
                // any pinned `FileRef` must die outside the lock.
                drop(dropped_files);
                done
            };
            if done {
                return Ok(());
            }
            if let Some((dev, ino)) = victim {
                if in_flush() {
                    // Re-entrant fill/write during write-back: evict clean
                    // pages only and accept a bounded transient overage
                    // rather than recursing into a second flush.
                    return Ok(());
                }
                self.flush_chunk(dev, ino, usize::MAX)?;
                continue;
            }
            if !progress {
                return Ok(());
            }
        }
    }

    /// `fsync`: flush the file's dirty pages, then ask the filesystem to
    /// sync.
    pub fn fsync(&self, dev: DevId, file: &Arc<FileRef>, datasync: bool) -> SysResult<()> {
        self.flush_file(dev, file.ino)?;
        file.fs.fsync(file.ino, file.fh, datasync)
    }

    /// Drops all pages of a file (open without `keep_cache`, or truncate).
    /// Dirty pages are flushed first so data is never lost.
    pub fn invalidate_file(&self, dev: DevId, ino: Ino) -> SysResult<()> {
        self.flush_file(dev, ino)?;
        let mut st = self.lru.lock();
        let pages: Vec<u64> = st
            .files
            .get(&(dev, ino))
            .map(|f| f.pages.iter().copied().collect())
            .unwrap_or_default();
        let mut dropped = Vec::new();
        for page in pages {
            if let Some(&slot) = st.map.get(&PageKey { dev, ino, page }) {
                dropped.extend(st.remove(slot));
            }
        }
        let removed = st.files.remove(&(dev, ino));
        drop(st);
        drop(dropped);
        drop(removed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        OBS_INVALIDATIONS.inc();
        Ok(())
    }

    /// Drops pages beyond `new_size` after a truncate.
    pub fn truncate_file(&self, dev: DevId, ino: Ino, new_size: u64) {
        let first_gone = new_size.div_ceil(PAGE_SIZE as u64);
        let mut st = self.lru.lock();
        let doomed: Vec<u64> = match st.files.get(&(dev, ino)) {
            Some(f) => f.pages.range(first_gone..).copied().collect(),
            None => return,
        };
        let mut dropped = Vec::new();
        for page in doomed {
            if let Some(&slot) = st.map.get(&PageKey { dev, ino, page }) {
                dropped.extend(st.remove(slot));
            }
        }
        let mut removed = None;
        if let Some(f) = st.files.get_mut(&(dev, ino)) {
            if let Some(p) = f.pending_size {
                f.pending_size = Some(p.min(new_size));
            }
            if f.dirty.is_empty() && f.pending_size.is_none() {
                f.pending_mtime = None;
                let taken_ref = f.flush_ref.take();
                dropped.extend(taken_ref.map(|r| {
                    let mut fs = FileState::new();
                    fs.flush_ref = Some(r);
                    fs
                }));
                if f.is_empty() {
                    removed = st.files.remove(&(dev, ino));
                }
            }
        }
        drop(st);
        drop(dropped);
        drop(removed);
    }

    /// Flushes everything dirty (global `sync`).
    pub fn sync_all(&self) -> SysResult<()> {
        self.sync_matching(|_| true)
    }

    /// Flushes one filesystem's dirty files (unmount of a single mount —
    /// the other containers' dirty data is not this unmount's problem).
    pub fn sync_dev(&self, dev: DevId) -> SysResult<()> {
        self.sync_matching(|d| d == dev)
    }

    /// Flushes every dirty file whose device matches `want`, dirtiest
    /// first.
    fn sync_matching(&self, want: impl Fn(DevId) -> bool) -> SysResult<()> {
        loop {
            let victim = {
                let st = self.lru.lock();
                st.files
                    .iter()
                    .filter(|(&(d, _), f)| !f.dirty.is_empty() && want(d))
                    .map(|(&k, _)| k)
                    .next()
            };
            match victim {
                Some((dev, ino)) => self.flush_file(dev, ino)?,
                None => return Ok(()),
            }
        }
    }

    /// Drops every clean page (the `drop_caches` knob). Dirty data is
    /// flushed first so nothing is lost.
    pub fn drop_clean(&self) -> SysResult<()> {
        self.sync_all()?;
        let mut st = self.lru.lock();
        let resident = st.resident();
        let active = st.active.len;
        let inactive = st.inactive.len;
        let dirty = st.dirty_total;
        st.slots.clear();
        st.free.clear();
        st.map.clear();
        st.active = LruList::new();
        st.inactive = LruList::new();
        st.dirty_total = 0;
        OBS_RESIDENT_PAGES.add(-(resident as i64));
        OBS_ACTIVE_PAGES.add(-(active as i64));
        OBS_INACTIVE_PAGES.add(-(inactive as i64));
        OBS_DIRTY_PAGES.add(-(dirty as i64));
        let dropped: Vec<FileState> = st.files.drain().map(|(_, f)| f).collect();
        drop(st);
        drop(dropped);
        Ok(())
    }

    /// Drops one filesystem's pages only (e.g. just the FUSE mount's half of
    /// a double-buffered file, leaving the server's copy warm).
    pub fn drop_dev(&self, dev: DevId) -> SysResult<()> {
        self.drop_devs(&[dev])
    }

    /// Drops the cached state of several filesystems in one pass (one
    /// flush, one sweep). Namespace GC uses this when filesystems lose
    /// their last mount: without the sweep, their pages would squat in the
    /// LRU and a dirty file's writeback reference would pin the `Arc` of a
    /// filesystem every mount table has already dropped. Only the victim
    /// devices' dirty files are flushed — one container's teardown does
    /// not pay for every other container's dirty data.
    pub fn drop_devs(&self, devs: &[DevId]) -> SysResult<()> {
        if devs.is_empty() {
            return Ok(());
        }
        // Flush dirty data first, best-effort: if a filesystem rejects its
        // writeback at teardown (EIO, ENOSPC), its remaining dirty pages
        // are discarded — as on a forced unmount — because the sweep below
        // must run regardless, or the failed device's pages and writeback
        // reference would pin the filesystem forever. The first flush
        // error is reported after the sweep.
        let flush_err: Option<Errno> = self.sync_matching(|d| devs.contains(&d)).err();
        let mut st = self.lru.lock();
        let doomed: Vec<(DevId, Ino, u64)> = st
            .files
            .iter()
            .filter(|(&(d, _), _)| devs.contains(&d))
            .flat_map(|(&(d, i), f)| f.pages.iter().map(move |&p| (d, i, p)))
            .collect();
        let mut dropped = Vec::new();
        for (dev, ino, page) in doomed {
            if let Some(&slot) = st.map.get(&PageKey { dev, ino, page }) {
                dropped.extend(st.remove(slot));
            }
        }
        st.files.retain(|&(d, _), f| {
            if devs.contains(&d) {
                dropped.push(std::mem::replace(f, FileState::new()));
                false
            } else {
                true
            }
        });
        drop(st);
        drop(dropped);
        match flush_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_fs::FsContext;
    use cntr_types::{FileType, Mode, OpenFlags};

    fn file_on(fs: &Arc<dyn Filesystem>, name: &str) -> Arc<FileRef> {
        let st = fs
            .mknod(
                cntr_types::Ino::ROOT,
                name,
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        Arc::new(FileRef {
            fs: Arc::clone(fs),
            ino: st.ino,
            fh,
        })
    }

    fn setup(cache_bytes: u64, dirty_bytes: u64) -> (Arc<PageCache>, Arc<FileRef>, DevId) {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone()) as Arc<dyn Filesystem>;
        let file = file_on(&fs, "f");
        let cache = Arc::new(PageCache::new(
            clock,
            CostModel::calibrated(),
            cache_bytes,
            dirty_bytes,
        ));
        (cache, file, DevId(1))
    }

    #[test]
    fn writeback_roundtrip_through_cache() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        let mode = CacheMode::native();
        let data = b"writeback data".to_vec();
        cache.write(dev, mode, &file, 10, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        cache.read(dev, mode, &file, 10, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Not yet flushed: the filesystem still sees size 0.
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 0);
        assert_eq!(cache.effective_size(dev, file.ino, 0), 24);
        cache.flush_file(dev, file.ino).unwrap();
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 24);
    }

    #[test]
    fn write_through_reaches_fs_immediately() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        let mode = CacheMode::uncached();
        cache.write(dev, mode, &file, 0, b"now").unwrap();
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 3);
        assert_eq!(cache.dirty_bytes(), 0);
    }

    #[test]
    fn dirty_limit_triggers_coalesced_flush() {
        let (cache, file, dev) = setup(64 << 20, 16 * PAGE_SIZE as u64);
        let mode = CacheMode::native();
        // 64 small sequential writes = 32 pages of dirty data.
        for i in 0..64u64 {
            cache
                .write(dev, mode, &file, i * 2048, &[1u8; 2048])
                .unwrap();
        }
        let stats = cache.stats();
        assert!(stats.flushed_pages > 0, "dirty limit must force a flush");
        assert!(stats.throttle_stalls > 0, "the writer paid the stall");
        // Coalescing: far fewer batches than pages.
        assert!(
            stats.flush_batches * 4 <= stats.flushed_pages,
            "batches={} pages={}",
            stats.flush_batches,
            stats.flushed_pages
        );
    }

    #[test]
    fn fsync_flushes_and_syncs() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        cache
            .write(dev, CacheMode::native(), &file, 0, &[7u8; 8192])
            .unwrap();
        assert!(cache.dirty_bytes() > 0);
        cache.fsync(dev, &file, false).unwrap();
        assert_eq!(cache.dirty_bytes(), 0);
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 8192);
    }

    #[test]
    fn read_miss_then_hit() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        // Put data in the fs directly.
        file.fs.write(file.ino, file.fh, 0, &[9u8; 4096]).unwrap();
        let mode = CacheMode::native();
        let mut buf = [0u8; 4096];
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        let s1 = cache.stats();
        assert_eq!(s1.misses, 1);
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        let s2 = cache.stats();
        assert_eq!(s2.hits, s1.hits + 1);
        assert_eq!(s2.misses, 1);
    }

    #[test]
    fn eviction_under_capacity_pressure() {
        let (cache, file, dev) = setup(32 * PAGE_SIZE as u64, 1 << 30);
        let mode = CacheMode::native();
        file.fs
            .write(file.ino, file.fh, 0, &vec![3u8; 128 * PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        for page in 0..128u64 {
            cache
                .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                .unwrap();
        }
        assert!(cache.resident_pages() <= 32);
        assert!(cache.stats().evictions > 0);
    }

    /// A twice-touched working set survives a one-touch streaming scan of
    /// many times the cache — the reason for the two lists.
    #[test]
    fn streaming_scan_cannot_flush_the_hot_set() {
        let (cache, file, dev) = setup(64 * PAGE_SIZE as u64, 1 << 30);
        let mode = CacheMode::native();
        file.fs
            .write(file.ino, file.fh, 0, &vec![3u8; 512 * PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        // Touch pages 0..16 twice: the second touch promotes them.
        for _ in 0..2 {
            for page in 0..16u64 {
                cache
                    .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                    .unwrap();
            }
        }
        // Stream 512 single-touch pages through a 64-page cache.
        for page in 16..512u64 {
            cache
                .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                .unwrap();
        }
        assert!(cache.resident_pages() <= 64);
        // The hot set is still resident: re-reading it is all hits.
        let before = cache.stats();
        for page in 0..16u64 {
            cache
                .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                .unwrap();
        }
        let after = cache.stats();
        assert_eq!(
            after.misses, before.misses,
            "hot pages were evicted by the stream"
        );
        assert_eq!(after.hits, before.hits + 16);
    }

    /// The all-dirty regression: a pure-write workload many times the
    /// ceiling must stay bounded (writeback-then-evict) — previously the
    /// clean-only evictor let residency grow without limit.
    #[test]
    fn all_dirty_reclaim_keeps_the_bound() {
        // Huge dirty limit: the throttle never helps; only reclaim's
        // writeback-then-evict path keeps residency bounded.
        let (cache, file, dev) = setup(64 * PAGE_SIZE as u64, 1 << 30);
        let mode = CacheMode::native();
        let payload = vec![0x5Au8; 4 * PAGE_SIZE];
        for i in 0..160u64 {
            cache
                .write(dev, mode, &file, i * payload.len() as u64, &payload)
                .unwrap();
            assert!(
                cache.resident_pages() <= 64,
                "resident {} pages after write {i} — the bound broke",
                cache.resident_pages()
            );
        }
        // Byte-identical readback across the whole 10× range.
        cache.fsync(dev, &file, false).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        for page in [0u64, 1, 317, 639] {
            cache
                .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                .unwrap();
            assert!(buf.iter().all(|&b| b == 0x5A), "page {page} corrupted");
        }
    }

    /// The background flusher drains dirty data below the background
    /// threshold without the writer flushing inline.
    #[test]
    fn background_flusher_drains_dirty_pages() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone()) as Arc<dyn Filesystem>;
        let file = file_on(&fs, "f");
        let cache = Arc::new(
            PageCache::new(
                clock,
                CostModel::calibrated(),
                256 << 20,
                64 * PAGE_SIZE as u64,
            )
            .with_dirty_background_bytes(16 * PAGE_SIZE as u64)
            .with_background_writeback(true),
        );
        let dev = DevId(1);
        let mode = CacheMode::native();
        // Cross the background threshold but stay under the hard limit:
        // only the flusher can drain this.
        cache
            .write(dev, mode, &file, 0, &vec![0xEEu8; 32 * PAGE_SIZE])
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while cache.dirty_bytes() > 16 * PAGE_SIZE as u64 {
            assert!(
                std::time::Instant::now() < deadline,
                "flusher never drained: {} dirty bytes",
                cache.dirty_bytes()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(cache.stats().writeback_wakeups > 0);
        // Data landed intact.
        let mut buf = vec![0u8; PAGE_SIZE];
        file.fs.read(file.ino, file.fh, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xEE));
        // Drop joins the flusher cleanly.
        drop(cache);
    }

    #[test]
    fn invalidate_drops_pages_but_preserves_data() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        let mode = CacheMode::native();
        cache.write(dev, mode, &file, 0, b"precious").unwrap();
        cache.invalidate_file(dev, file.ino).unwrap();
        assert_eq!(cache.resident_pages(), 0);
        // Data was flushed, not lost.
        let mut buf = [0u8; 8];
        file.fs.read(file.ino, file.fh, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"precious");
    }

    #[test]
    fn truncate_drops_tail_pages() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        let mode = CacheMode::native();
        cache
            .write(dev, mode, &file, 0, &vec![5u8; 4 * PAGE_SIZE])
            .unwrap();
        cache.truncate_file(dev, file.ino, PAGE_SIZE as u64);
        assert_eq!(cache.resident_pages(), 1);
        assert_eq!(
            cache.effective_size(dev, file.ino, PAGE_SIZE as u64),
            PAGE_SIZE as u64
        );
    }

    #[test]
    fn synthetic_pages_cost_time_but_no_memory() {
        let (cache, file, dev) = setup(1 << 30, 1 << 30);
        let mode = CacheMode {
            synthetic: true,
            ..CacheMode::native()
        };
        cache
            .write(dev, mode, &file, 0, &vec![0u8; 64 * PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(cache.resident_pages(), 64);
        let (active, inactive) = cache.residency();
        assert_eq!(active + inactive, 64);
    }
}
