//! The unified page cache.
//!
//! Reads and writes on cached mounts go through here. Two per-mount flags —
//! [`CacheMode::writeback`] and [`CacheMode::keep_cache`] — correspond to
//! the FUSE optimizations the paper evaluates in §3.3/§5.2.3: a FUSE mount
//! without `FOPEN_KEEP_CACHE` has its pages invalidated on every `open`, and
//! without `FUSE_WRITEBACK_CACHE` every write crosses into the server
//! immediately (write-through). The paper's "double buffering in the page
//! cache [is one of] the main performance bottlenecks" observation emerges
//! here naturally: a CntrFS mount and the backing filesystem's own mount
//! each consume page-cache capacity for the same bytes.

use crate::mount::CacheMode;
use bytes::Bytes;
use cntr_fs::{Fh, Filesystem};
use cntr_types::cost::PAGE_SIZE;
use cntr_types::{CostModel, DevId, Errno, Ino, SimClock, SysResult};
use obs::{LazyCounter, LazyGauge, Subsystem};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Global observability metrics, aggregated across every `PageCache` instance
// in the process (the per-instance [`PageCacheStats`] snapshot remains the
// per-cache view). All updates are single relaxed atomic ops. Invariant kept
// by [`PageCache::read`]: each page iteration bumps `lookups` exactly once
// and then exactly one of `hits`/`misses`, so at quiescence
// `hits + misses == lookups`.
static OBS_LOOKUPS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.lookups");
static OBS_HITS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.hits");
static OBS_MISSES: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.misses");
static OBS_EVICTIONS: LazyCounter = LazyCounter::new(Subsystem::PageCache, "pagecache.evictions");
static OBS_FLUSHED_PAGES: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.flushed-pages");
static OBS_FLUSH_BATCHES: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.flush-batches");
static OBS_INVALIDATIONS: LazyCounter =
    LazyCounter::new(Subsystem::PageCache, "pagecache.invalidations");
/// Dirty pages currently pending write-back, summed over all caches. Each
/// site that changes a cache's `dirty_total` applies the same delta here
/// while still holding that cache's state lock.
static OBS_DIRTY_PAGES: LazyGauge = LazyGauge::new(Subsystem::PageCache, "pagecache.dirty-pages");

/// A borrowed open file used for cache fills and writeback.
///
/// Holds the filesystem handle open for as long as any dirty page needs it
/// (mirroring the kernel pinning a `struct file` for writeback); releases
/// the handle on drop.
pub struct FileRef {
    /// The filesystem.
    pub fs: Arc<dyn Filesystem>,
    /// The file's inode.
    pub ino: Ino,
    /// The open handle within `fs`.
    pub fh: Fh,
}

impl Drop for FileRef {
    fn drop(&mut self) {
        // Best-effort: a vanished inode already released everything.
        let _ = self.fs.release(self.ino, self.fh);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PageKey {
    dev: DevId,
    ino: Ino,
    page: u64,
}

/// The bytes of one cached page.
enum PageData {
    /// A private, writable page the cache owns.
    Owned(Box<[u8; PAGE_SIZE]>),
    /// A page *spliced in* from below: a reference-counted slice of the
    /// buffer the filesystem (ultimately the FUSE server's storage) handed
    /// over — no copy was made to cache it. May be shorter than a page
    /// (EOF); the tail reads as zeroes. Promoted to [`PageData::Owned`]
    /// (copy-on-write) the first time it is written.
    Shared(Bytes),
    /// Benchmark-mode page: costs time but no memory, reads as zeroes.
    Synthetic,
}

impl PageData {
    /// Copies `[in_page, in_page+n)` of the page into `buf` (zeroes beyond
    /// the stored length).
    fn read_into(&self, in_page: usize, buf: &mut [u8]) {
        match self {
            PageData::Owned(p) => buf.copy_from_slice(&p[in_page..in_page + buf.len()]),
            PageData::Shared(b) => {
                let have = b.len().saturating_sub(in_page).min(buf.len());
                if have > 0 {
                    buf[..have].copy_from_slice(&b[in_page..in_page + have]);
                }
                buf[have..].fill(0);
            }
            PageData::Synthetic => buf.fill(0),
        }
    }

    /// A mutable view for writing; `None` for synthetic pages. A shared
    /// page is promoted to an owned copy first (copy-on-write — the one
    /// place a spliced-in page is ever copied).
    fn make_mut(&mut self) -> Option<&mut [u8; PAGE_SIZE]> {
        if let PageData::Shared(b) = self {
            let mut page = Box::new([0u8; PAGE_SIZE]);
            let n = b.len().min(PAGE_SIZE);
            page[..n].copy_from_slice(&b[..n]);
            *self = PageData::Owned(page);
        }
        match self {
            PageData::Owned(p) => Some(p),
            PageData::Synthetic => None,
            PageData::Shared(_) => unreachable!("promoted above"),
        }
    }
}

struct PageEntry {
    data: PageData,
    dirty: bool,
    version: u64,
    last_access: u64,
}

/// Invariant: a `FileState` (it owns a [`FileRef`] via `flush_ref`) must
/// never be dropped while the cache state lock is held. Dropping the last
/// `Arc<FileRef>` calls `Filesystem::release`, which for a FUSE mount is a
/// transport round trip — blocking inside the lock that writeback re-entry
/// needs. Every removal site takes the state out, unlocks, then drops.
struct FileState {
    /// Write handle pinned for writeback.
    flush_ref: Option<Arc<FileRef>>,
    /// Size as extended by not-yet-flushed writes.
    pending_size: Option<u64>,
    /// Modification time of the most recent buffered write (the filesystem
    /// has not seen the data yet, but `stat` must show the new mtime).
    pending_mtime: Option<cntr_types::Timespec>,
    dirty_pages: u64,
}

struct CacheState {
    pages: HashMap<PageKey, PageEntry>,
    files: HashMap<(DevId, Ino), FileState>,
    tick: u64,
    dirty_total: usize,
}

/// One contiguous writeback run: start page, the bytes to write, and the
/// `(page, version)` pairs it covers (for re-dirty detection).
type FlushRun = (u64, Vec<u8>, Vec<(u64, u64)>);

thread_local! {
    /// Set while a flush is executing on this thread. Flushing a FUSE-backed
    /// file re-enters the page cache through the server's own writes; without
    /// this guard the nested write would start a second flush of the same
    /// still-dirty file, recursing without bound.
    static IN_FLUSH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct FlushGuard {
    prev: bool,
}

impl FlushGuard {
    fn enter() -> FlushGuard {
        let prev = IN_FLUSH.with(|f| f.replace(true));
        FlushGuard { prev }
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        IN_FLUSH.with(|f| f.set(self.prev));
    }
}

/// Observable page-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Pages served from cache.
    pub hits: u64,
    /// Pages that had to be read from the filesystem.
    pub misses: u64,
    /// Pages written back to the filesystem.
    pub flushed_pages: u64,
    /// Writeback batches issued (contiguous runs).
    pub flush_batches: u64,
    /// Pages evicted for capacity.
    pub evictions: u64,
    /// Whole-file invalidations (`open` without keep_cache, truncate).
    pub invalidations: u64,
}

/// The page cache shared by all mounts of a [`crate::Kernel`].
pub struct PageCache {
    cost: CostModel,
    clock: SimClock,
    capacity_pages: usize,
    dirty_limit_pages: usize,
    /// Whether write-back coalesces contiguous dirty runs into single large
    /// writes (the shipping behaviour). Off = one write per page — the
    /// unbatched baseline the differential tests and benches compare
    /// against.
    coalesce: bool,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    flushed_pages: AtomicU64,
    flush_batches: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PageCache {
    /// Creates a cache with the given capacity and dirty threshold (bytes),
    /// with write-back coalescing on.
    pub fn new(
        clock: SimClock,
        cost: CostModel,
        capacity_bytes: u64,
        dirty_limit_bytes: u64,
    ) -> PageCache {
        PageCache {
            cost,
            clock,
            capacity_pages: (capacity_bytes / PAGE_SIZE as u64).max(16) as usize,
            dirty_limit_pages: (dirty_limit_bytes / PAGE_SIZE as u64).max(4) as usize,
            coalesce: true,
            state: Mutex::new_class(
                "kernel.page_cache",
                CacheState {
                    pages: HashMap::new(),
                    files: HashMap::new(),
                    tick: 0,
                    dirty_total: 0,
                },
            ),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            flushed_pages: AtomicU64::new(0),
            flush_batches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Disables (or re-enables) write-back coalescing. With it off, every
    /// dirty page flushes as its own write — the per-page baseline that
    /// shows what batching buys.
    #[must_use]
    pub fn with_coalesce(mut self, coalesce: bool) -> PageCache {
        self.coalesce = coalesce;
        self
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            flushed_pages: self.flushed_pages.load(Ordering::Relaxed),
            flush_batches: self.flush_batches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Bytes of pending (unflushed) dirty data.
    pub fn dirty_bytes(&self) -> u64 {
        self.state.lock().dirty_total as u64 * PAGE_SIZE as u64
    }

    /// The file size including unflushed extensions, if larger than `fs_size`.
    pub fn effective_size(&self, dev: DevId, ino: Ino, fs_size: u64) -> u64 {
        let st = self.state.lock();
        st.files
            .get(&(dev, ino))
            .and_then(|f| f.pending_size)
            .map_or(fs_size, |p| p.max(fs_size))
    }

    /// The mtime of the most recent buffered write, if any data is pending.
    pub fn pending_mtime(&self, dev: DevId, ino: Ino) -> Option<cntr_types::Timespec> {
        self.state
            .lock()
            .files
            .get(&(dev, ino))
            .and_then(|f| f.pending_mtime)
    }

    /// Drops cached pages fully inside `[offset, offset+len)` — used after a
    /// hole punch so stale buffered data cannot shadow the hole.
    pub fn drop_range(&self, dev: DevId, ino: Ino, offset: u64, len: u64) {
        let first = offset.div_ceil(PAGE_SIZE as u64);
        let last = (offset + len) / PAGE_SIZE as u64;
        let mut st = self.state.lock();
        let mut dropped_dirty = 0u64;
        st.pages.retain(|k, e| {
            let doomed = k.dev == dev && k.ino == ino && k.page >= first && k.page < last;
            if doomed && e.dirty {
                dropped_dirty += 1;
            }
            !doomed
        });
        let before = st.dirty_total;
        st.dirty_total = before.saturating_sub(dropped_dirty as usize);
        OBS_DIRTY_PAGES.add(st.dirty_total as i64 - before as i64);
        if let Some(f) = st.files.get_mut(&(dev, ino)) {
            f.dirty_pages = f.dirty_pages.saturating_sub(dropped_dirty);
        }
    }

    /// Reads through the cache. `file` supplies the fill path; `size` is the
    /// effective file size (reads are clipped to it by the caller).
    pub fn read(
        &self,
        dev: DevId,
        mode: CacheMode,
        file: &Arc<FileRef>,
        offset: u64,
        buf: &mut [u8],
    ) -> SysResult<usize> {
        let ino = file.ino;
        let mut done = 0usize;
        while done < buf.len() {
            let off = offset + done as u64;
            let page_no = off / PAGE_SIZE as u64;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            let key = PageKey {
                dev,
                ino,
                page: page_no,
            };

            let hit = {
                let mut st = self.state.lock();
                st.tick += 1;
                let tick = st.tick;
                if let Some(entry) = st.pages.get_mut(&key) {
                    entry.last_access = tick;
                    entry.data.read_into(in_page, &mut buf[done..done + n]);
                    true
                } else {
                    false
                }
            };

            OBS_LOOKUPS.inc();
            if hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                OBS_HITS.inc();
                self.clock.advance(self.cost.page_cache_hit_ns);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                OBS_MISSES.inc();
                // Fill the whole page from the filesystem (outside the lock:
                // a FUSE fill re-enters the kernel through the server).
                let page_off = page_no * PAGE_SIZE as u64;
                let data = if mode.synthetic {
                    // Synthetic mode: the fill must still be a real
                    // page-sized read so every layer below (FUSE round trips,
                    // readahead, disk) charges its true cost — only the bytes
                    // are discarded. Stack-allocated: the fill re-enters this
                    // function through the FUSE server.
                    let mut sink = [0u8; PAGE_SIZE];
                    file.fs.read(ino, file.fh, page_off, &mut sink)?;
                    PageData::Synthetic
                } else {
                    // The splice fill: the buffer the filesystem returns is
                    // cached *by reference* — for a spliced FUSE read this is
                    // the server's own allocation, mapped into the page cache
                    // without a copy (a short buffer is an EOF page; its tail
                    // reads as zeroes).
                    self.fill_page(file, ino, page_off)?
                };
                data.read_into(in_page, &mut buf[done..done + n]);
                let mut st = self.state.lock();
                st.tick += 1;
                let tick = st.tick;
                // The fill ran outside the lock; another thread may have
                // populated (and even dirtied) the page meanwhile. Theirs
                // wins — replacing a dirty entry with our clean fill would
                // lose the write and strand the dirty accounting.
                st.pages
                    .entry(key)
                    .and_modify(|e| e.last_access = tick)
                    .or_insert_with(|| PageEntry {
                        data,
                        dirty: false,
                        version: 0,
                        last_access: tick,
                    });
                drop(st);
                self.maybe_evict();
            }
            done += n;
        }
        Ok(done)
    }

    /// Reads one page of data at `page_off`, preferring the zero-copy
    /// `read_bytes` path: a filesystem that answers the whole page (or an
    /// EOF prefix of it) in one buffer has that buffer cached by reference
    /// ([`PageData::Shared`] — the FUSE splice "page remap").
    fn fill_page(&self, file: &Arc<FileRef>, ino: Ino, page_off: u64) -> SysResult<PageData> {
        // `read_bytes_gather` forwards a single full-or-EOF answer
        // untouched (the zero-copy case) and only gathers across chunk
        // boundaries; either way the buffer is cached by reference, and a
        // short buffer is an EOF page whose tail reads as zeroes.
        Ok(PageData::Shared(
            file.fs
                .read_bytes_gather(ino, file.fh, page_off, PAGE_SIZE)?,
        ))
    }

    /// Writes through the cache according to `mode`.
    ///
    /// Write-through: the filesystem sees the write immediately and pages are
    /// updated in place. Writeback: pages go dirty and are flushed in batches
    /// when the dirty threshold is exceeded (or on [`PageCache::fsync`]).
    pub fn write(
        &self,
        dev: DevId,
        mode: CacheMode,
        file: &Arc<FileRef>,
        offset: u64,
        data: &[u8],
    ) -> SysResult<usize> {
        let ino = file.ino;
        if !mode.writeback {
            // Write-through: filesystem first (it may fail), then cache.
            let written = file.fs.write(ino, file.fh, offset, data)?;
            self.update_clean_pages(dev, ino, mode, offset, &data[..written]);
            return Ok(written);
        }

        let mut done = 0usize;
        while done < data.len() {
            let off = offset + done as u64;
            let page_no = off / PAGE_SIZE as u64;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            let key = PageKey {
                dev,
                ino,
                page: page_no,
            };
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            let entry = st.pages.entry(key).or_insert_with(|| PageEntry {
                data: if mode.synthetic {
                    PageData::Synthetic
                } else {
                    PageData::Owned(Box::new([0u8; PAGE_SIZE]))
                },
                dirty: false,
                version: 0,
                last_access: tick,
            });
            if let Some(p) = entry.data.make_mut() {
                p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            }
            entry.last_access = tick;
            entry.version += 1;
            let newly_dirty = !entry.dirty;
            entry.dirty = true;
            if newly_dirty {
                st.dirty_total += 1;
                OBS_DIRTY_PAGES.inc();
                let fstate = st.files.entry((dev, ino)).or_insert_with(|| FileState {
                    flush_ref: None,
                    pending_size: None,
                    pending_mtime: None,
                    dirty_pages: 0,
                });
                fstate.dirty_pages += 1;
            }
            let now = self.clock.now();
            let fstate = st.files.entry((dev, ino)).or_insert_with(|| FileState {
                flush_ref: None,
                pending_size: None,
                pending_mtime: None,
                dirty_pages: 0,
            });
            fstate.pending_mtime = Some(now);
            if fstate.flush_ref.is_none() {
                fstate.flush_ref = Some(Arc::clone(file));
            }
            let end = off + n as u64;
            fstate.pending_size = Some(fstate.pending_size.unwrap_or(0).max(end));
            drop(st);
            self.clock.advance(self.cost.page_cache_hit_ns);
            done += n;
        }

        let over_limit = { self.state.lock().dirty_total > self.dirty_limit_pages };
        if over_limit && !IN_FLUSH.with(std::cell::Cell::get) {
            self.flush_until_below_limit()?;
        }
        self.maybe_evict();
        Ok(data.len())
    }

    /// Updates (or populates) clean cached pages after a write-through.
    fn update_clean_pages(&self, dev: DevId, ino: Ino, mode: CacheMode, offset: u64, data: &[u8]) {
        let mut done = 0usize;
        let mut st = self.state.lock();
        while done < data.len() {
            let off = offset + done as u64;
            let page_no = off / PAGE_SIZE as u64;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            st.tick += 1;
            let tick = st.tick;
            let entry = st
                .pages
                .entry(PageKey {
                    dev,
                    ino,
                    page: page_no,
                })
                .or_insert_with(|| PageEntry {
                    data: if mode.synthetic {
                        PageData::Synthetic
                    } else {
                        PageData::Owned(Box::new([0u8; PAGE_SIZE]))
                    },
                    dirty: false,
                    version: 0,
                    last_access: tick,
                });
            if let Some(p) = entry.data.make_mut() {
                p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            }
            entry.last_access = tick;
            done += n;
        }
    }

    /// Flushes every dirty page of one file, merging contiguous dirty pages
    /// into single large filesystem writes — the coalescing that makes
    /// writeback-cached CntrFS *beat* native ext4 on FIO and PGBench in
    /// Figure 2.
    pub fn flush_file(&self, dev: DevId, ino: Ino) -> SysResult<()> {
        let _guard = FlushGuard::enter();
        let (runs, flush_ref) = {
            let st = self.state.lock();
            let Some(fstate) = st.files.get(&(dev, ino)) else {
                return Ok(());
            };
            let Some(flush_ref) = fstate.flush_ref.clone() else {
                return Ok(());
            };
            // Collect dirty page numbers (sorted) with their versions.
            let mut dirty: Vec<(u64, u64)> = st
                .pages
                .iter()
                .filter(|(k, e)| k.dev == dev && k.ino == ino && e.dirty)
                .map(|(k, e)| (k.page, e.version))
                .collect();
            dirty.sort_unstable();
            // Merge contiguous pages into runs, gathering the data. This
            // gather is write-back's one copy: from here the run travels as
            // a single retained `Bytes` buffer through `write_bytes` (and,
            // over FUSE with splice-write, across the protocol boundary and
            // into blob storage) without further copies.
            let mut runs: Vec<FlushRun> = Vec::new();
            for (page, version) in dirty {
                let key = PageKey { dev, ino, page };
                let mut bytes = vec![0u8; PAGE_SIZE];
                st.pages[&key].data.read_into(0, &mut bytes);
                match runs.last_mut() {
                    Some((start, buf, members))
                        if self.coalesce && *start + (buf.len() / PAGE_SIZE) as u64 == page =>
                    {
                        buf.extend_from_slice(&bytes);
                        members.push((page, version));
                    }
                    _ => runs.push((page, bytes, vec![(page, version)])),
                }
            }
            (runs, flush_ref)
        };

        let pending = {
            let st = self.state.lock();
            st.files.get(&(dev, ino)).and_then(|f| f.pending_size)
        };

        for (start_page, mut buf, members) in runs {
            let offset = start_page * PAGE_SIZE as u64;
            // Clip the final run to the pending size so flushing does not
            // extend the file past what was written.
            if let Some(size) = pending {
                let end = offset + buf.len() as u64;
                if end > size && size > offset {
                    buf.truncate((size - offset) as usize);
                }
            }
            // Writeback is background I/O: it occupies the disk but does not
            // stall the writer. An fsync barrier (`fs.fsync` → device flush)
            // waits for the backlog. The run moves as one owned buffer —
            // over FUSE with splice-write negotiated it crosses to the
            // server (and into chunk storage) by reference.
            {
                let _bg = cntr_blockdev::BackgroundIo::enter();
                flush_ref
                    .fs
                    .write_bytes(ino, flush_ref.fh, offset, Bytes::from(buf))?;
            }
            self.flush_batches.fetch_add(1, Ordering::Relaxed);
            OBS_FLUSH_BATCHES.inc();
            self.flushed_pages
                .fetch_add(members.len() as u64, Ordering::Relaxed);
            OBS_FLUSHED_PAGES.add(members.len() as u64);
            let mut st = self.state.lock();
            for (page, version) in members {
                let key = PageKey { dev, ino, page };
                if let Some(e) = st.pages.get_mut(&key) {
                    // Only mark clean if not re-dirtied during the write.
                    if e.dirty && e.version == version {
                        e.dirty = false;
                        st.dirty_total = st.dirty_total.saturating_sub(1);
                        OBS_DIRTY_PAGES.dec();
                        if let Some(f) = st.files.get_mut(&(dev, ino)) {
                            f.dirty_pages = f.dirty_pages.saturating_sub(1);
                        }
                    }
                }
            }
        }

        let mut st = self.state.lock();
        let mut released = None;
        if let Some(f) = st.files.get_mut(&(dev, ino)) {
            if f.dirty_pages == 0 {
                f.pending_size = None;
                f.pending_mtime = None;
                released = f.flush_ref.take();
            }
        }
        drop(st);
        drop(released);
        Ok(())
    }

    /// Flushes files (largest dirty set first) until below half the dirty
    /// limit.
    fn flush_until_below_limit(&self) -> SysResult<()> {
        loop {
            let victim = {
                let st = self.state.lock();
                if st.dirty_total <= self.dirty_limit_pages / 2 {
                    return Ok(());
                }
                st.files
                    .iter()
                    .filter(|(_, f)| f.dirty_pages > 0)
                    .max_by_key(|(_, f)| f.dirty_pages)
                    .map(|(&k, _)| k)
            };
            match victim {
                Some((dev, ino)) => self.flush_file(dev, ino)?,
                None => return Ok(()),
            }
        }
    }

    /// `fsync`: flush the file's dirty pages, then ask the filesystem to
    /// sync.
    pub fn fsync(&self, dev: DevId, file: &Arc<FileRef>, datasync: bool) -> SysResult<()> {
        self.flush_file(dev, file.ino)?;
        file.fs.fsync(file.ino, file.fh, datasync)
    }

    /// Drops all pages of a file (open without `keep_cache`, or truncate).
    /// Dirty pages are flushed first so data is never lost.
    pub fn invalidate_file(&self, dev: DevId, ino: Ino) -> SysResult<()> {
        self.flush_file(dev, ino)?;
        let mut st = self.state.lock();
        st.pages.retain(|k, _| !(k.dev == dev && k.ino == ino));
        let removed = st.files.remove(&(dev, ino));
        drop(st);
        drop(removed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        OBS_INVALIDATIONS.inc();
        Ok(())
    }

    /// Drops pages beyond `new_size` after a truncate.
    pub fn truncate_file(&self, dev: DevId, ino: Ino, new_size: u64) {
        let first_gone = new_size.div_ceil(PAGE_SIZE as u64);
        let mut st = self.state.lock();
        let mut dropped_dirty = 0u64;
        st.pages.retain(|k, e| {
            let doomed = k.dev == dev && k.ino == ino && k.page >= first_gone;
            if doomed && e.dirty {
                dropped_dirty += 1;
            }
            !doomed
        });
        let before = st.dirty_total;
        st.dirty_total = before.saturating_sub(dropped_dirty as usize);
        OBS_DIRTY_PAGES.add(st.dirty_total as i64 - before as i64);
        let mut removed = None;
        if let Some(f) = st.files.get_mut(&(dev, ino)) {
            f.dirty_pages = f.dirty_pages.saturating_sub(dropped_dirty);
            if let Some(p) = f.pending_size {
                f.pending_size = Some(p.min(new_size));
            }
            if f.dirty_pages == 0 && f.pending_size.is_none() {
                removed = st.files.remove(&(dev, ino));
            }
        }
        drop(st);
        drop(removed);
    }

    /// Flushes everything dirty (unmount, global `sync`).
    pub fn sync_all(&self) -> SysResult<()> {
        loop {
            let victim = {
                let st = self.state.lock();
                st.files
                    .iter()
                    .filter(|(_, f)| f.dirty_pages > 0)
                    .map(|(&k, _)| k)
                    .next()
            };
            match victim {
                Some((dev, ino)) => self.flush_file(dev, ino)?,
                None => return Ok(()),
            }
        }
    }

    /// Drops every clean page (the `drop_caches` knob). Dirty data is
    /// flushed first so nothing is lost.
    pub fn drop_clean(&self) -> SysResult<()> {
        self.sync_all()?;
        let mut st = self.state.lock();
        st.pages.clear();
        let dropped: Vec<FileState> = st.files.drain().map(|(_, f)| f).collect();
        drop(st);
        drop(dropped);
        Ok(())
    }

    /// Drops one filesystem's pages only (e.g. just the FUSE mount's half of
    /// a double-buffered file, leaving the server's copy warm).
    pub fn drop_dev(&self, dev: DevId) -> SysResult<()> {
        self.drop_devs(&[dev])
    }

    /// Drops the cached state of several filesystems in one pass (one
    /// flush, one sweep). Namespace GC uses this when filesystems lose
    /// their last mount: without the sweep, their pages would squat in the
    /// LRU and a dirty file's writeback reference would pin the `Arc` of a
    /// filesystem every mount table has already dropped. Only the victim
    /// devices' dirty files are flushed — one container's teardown does
    /// not pay for every other container's dirty data.
    pub fn drop_devs(&self, devs: &[DevId]) -> SysResult<()> {
        if devs.is_empty() {
            return Ok(());
        }
        // Flush dirty data first, best-effort: if a filesystem rejects its
        // writeback at teardown (EIO, ENOSPC), its remaining dirty pages
        // are discarded — as on a forced unmount — because the sweep below
        // must run regardless, or the failed device's pages and writeback
        // reference would pin the filesystem forever. The first flush
        // error is reported after the sweep.
        let mut flush_err: Option<Errno> = None;
        while flush_err.is_none() {
            let victim = {
                let st = self.state.lock();
                st.files
                    .iter()
                    .filter(|(&(d, _), f)| f.dirty_pages > 0 && devs.contains(&d))
                    .map(|(&k, _)| k)
                    .next()
            };
            match victim {
                Some((dev, ino)) => flush_err = self.flush_file(dev, ino).err(),
                None => break,
            }
        }
        let mut st = self.state.lock();
        st.pages.retain(|k, _| !devs.contains(&k.dev));
        let mut dropped = Vec::new();
        st.files.retain(|&(d, _), f| {
            if devs.contains(&d) {
                dropped.push(f.flush_ref.take());
                false
            } else {
                true
            }
        });
        drop(st);
        drop(dropped);
        match flush_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Evicts ~1/16 of capacity worth of clean LRU pages when over capacity.
    fn maybe_evict(&self) {
        let mut st = self.state.lock();
        if st.pages.len() <= self.capacity_pages {
            return;
        }
        let target = self.capacity_pages - self.capacity_pages / 16;
        let mut candidates: Vec<(u64, PageKey)> = st
            .pages
            .iter()
            .filter(|(_, e)| !e.dirty)
            .map(|(k, e)| (e.last_access, *k))
            .collect();
        candidates.sort_unstable_by_key(|(t, _)| *t);
        let need = st.pages.len().saturating_sub(target);
        let mut evicted = 0u64;
        for (_, key) in candidates.into_iter().take(need) {
            st.pages.remove(&key);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        OBS_EVICTIONS.add(evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_fs::FsContext;
    use cntr_types::{FileType, Mode, OpenFlags};

    fn setup(cache_bytes: u64, dirty_bytes: u64) -> (Arc<PageCache>, Arc<FileRef>, DevId) {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let st = fs
            .mknod(
                cntr_types::Ino::ROOT,
                "f",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        let file = Arc::new(FileRef {
            fs: fs.clone() as Arc<dyn Filesystem>,
            ino: st.ino,
            fh,
        });
        let cache = Arc::new(PageCache::new(
            clock,
            CostModel::calibrated(),
            cache_bytes,
            dirty_bytes,
        ));
        (cache, file, DevId(1))
    }

    #[test]
    fn writeback_roundtrip_through_cache() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        let mode = CacheMode::native();
        let data = b"writeback data".to_vec();
        cache.write(dev, mode, &file, 10, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        cache.read(dev, mode, &file, 10, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Not yet flushed: the filesystem still sees size 0.
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 0);
        assert_eq!(cache.effective_size(dev, file.ino, 0), 24);
        cache.flush_file(dev, file.ino).unwrap();
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 24);
    }

    #[test]
    fn write_through_reaches_fs_immediately() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        let mode = CacheMode::uncached();
        cache.write(dev, mode, &file, 0, b"now").unwrap();
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 3);
        assert_eq!(cache.dirty_bytes(), 0);
    }

    #[test]
    fn dirty_limit_triggers_coalesced_flush() {
        let (cache, file, dev) = setup(64 << 20, 16 * PAGE_SIZE as u64);
        let mode = CacheMode::native();
        // 64 small sequential writes = 32 pages of dirty data.
        for i in 0..64u64 {
            cache
                .write(dev, mode, &file, i * 2048, &[1u8; 2048])
                .unwrap();
        }
        let stats = cache.stats();
        assert!(stats.flushed_pages > 0, "dirty limit must force a flush");
        // Coalescing: far fewer batches than pages.
        assert!(
            stats.flush_batches * 4 <= stats.flushed_pages,
            "batches={} pages={}",
            stats.flush_batches,
            stats.flushed_pages
        );
    }

    #[test]
    fn fsync_flushes_and_syncs() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        cache
            .write(dev, CacheMode::native(), &file, 0, &[7u8; 8192])
            .unwrap();
        assert!(cache.dirty_bytes() > 0);
        cache.fsync(dev, &file, false).unwrap();
        assert_eq!(cache.dirty_bytes(), 0);
        assert_eq!(file.fs.getattr(file.ino).unwrap().size, 8192);
    }

    #[test]
    fn read_miss_then_hit() {
        let (cache, file, dev) = setup(1 << 20, 1 << 20);
        // Put data in the fs directly.
        file.fs.write(file.ino, file.fh, 0, &[9u8; 4096]).unwrap();
        let mode = CacheMode::native();
        let mut buf = [0u8; 4096];
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        let s1 = cache.stats();
        assert_eq!(s1.misses, 1);
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        let s2 = cache.stats();
        assert_eq!(s2.hits, s1.hits + 1);
        assert_eq!(s2.misses, 1);
    }

    #[test]
    fn eviction_under_capacity_pressure() {
        let (cache, file, dev) = setup(32 * PAGE_SIZE as u64, 1 << 30);
        let mode = CacheMode::native();
        file.fs
            .write(file.ino, file.fh, 0, &vec![3u8; 128 * PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        for page in 0..128u64 {
            cache
                .read(dev, mode, &file, page * PAGE_SIZE as u64, &mut buf)
                .unwrap();
        }
        assert!(cache.resident_pages() <= 32);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn invalidate_drops_pages_but_preserves_data() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        let mode = CacheMode::native();
        cache.write(dev, mode, &file, 0, b"precious").unwrap();
        cache.invalidate_file(dev, file.ino).unwrap();
        assert_eq!(cache.resident_pages(), 0);
        // Data was flushed, not lost.
        let mut buf = [0u8; 8];
        file.fs.read(file.ino, file.fh, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"precious");
    }

    #[test]
    fn truncate_drops_tail_pages() {
        let (cache, file, dev) = setup(1 << 20, 1 << 30);
        let mode = CacheMode::native();
        cache
            .write(dev, mode, &file, 0, &vec![5u8; 4 * PAGE_SIZE])
            .unwrap();
        cache.truncate_file(dev, file.ino, PAGE_SIZE as u64);
        assert_eq!(cache.resident_pages(), 1);
        assert_eq!(
            cache.effective_size(dev, file.ino, PAGE_SIZE as u64),
            PAGE_SIZE as u64
        );
    }

    #[test]
    fn synthetic_pages_cost_time_but_no_memory() {
        let (cache, file, dev) = setup(1 << 30, 1 << 30);
        let mode = CacheMode {
            synthetic: true,
            ..CacheMode::native()
        };
        cache
            .write(dev, mode, &file, 0, &vec![0u8; 64 * PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        cache.read(dev, mode, &file, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(cache.resident_pages(), 64);
    }
}
