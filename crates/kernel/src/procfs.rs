//! A synthetic `/proc` filesystem.
//!
//! CNTR "reads this information by inspecting the /proc filesystem of the
//! main process within the container" (paper §3.2.1) and later bind-mounts
//! the application's `/proc` into the nested namespace so tools see the
//! container's processes. `ProcFs` implements enough of procfs for both:
//! per-pid directories with `status`, `environ`, `cmdline`, `cgroup`,
//! `mounts` and `ns/<kind>` entries, generated live from kernel state.
//!
//! Inode layout: special (non-pid) nodes occupy the space below 2^32 —
//! root = 1, `/proc/namespaces` = 2, `/proc/lockdep` = 3,
//! `/proc/cntrstats` = 4. Per-pid nodes are `(pid << 32) | k`:
//! `/proc/<pid>` has `k = 0`, files inside use small `k`, `ns/` is
//! `k = 100` with kind files following. Because the pid sits in its own
//! high 32 bits, no pid-relative index can alias another pid's files or
//! a special node, no matter how large pids grow (the previous
//! `pid * 1000 + k` layout collided once any index reached the stride).
//!
//! `/proc/namespaces` is this simulation's observability hook for
//! namespace GC: one line per live `(kind, id)` pair with its process
//! refcount, so tests and `cntr-slim` can watch namespaces appear on
//! `unshare`, move on `setns`, and vanish when the last holder is reaped.

use crate::kernel::KernelInner;
use crate::ns::{NamespaceKind, ALL_KINDS};
use cntr_fs::{FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags};
use cntr_types::{
    DevId, Dirent, Errno, FileType, Gid, Ino, Mode, OpenFlags, Pid, RenameFlags, SetAttr, Stat,
    Statfs, SysResult, Timespec, Uid,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

const I_NAMESPACES: u64 = 2;
const I_LOCKDEP: u64 = 3;
const I_CNTRSTATS: u64 = 4;
const F_STATUS: u64 = 1;
const F_ENVIRON: u64 = 2;
const F_CMDLINE: u64 = 3;
const F_CGROUP: u64 = 4;
const F_MOUNTS: u64 = 5;
const D_NS: u64 = 100;

/// The inode of `/proc/<pid>`'s node with pid-relative index `k`
/// (`k = 0` is the directory itself).
fn pid_ino(pid: Pid, k: u64) -> u64 {
    (u64::from(pid.raw()) << 32) | k
}

/// The `/proc` filesystem.
pub struct ProcFs {
    dev: DevId,
    kernel: Weak<KernelInner>,
    next_fh: AtomicU64,
}

impl ProcFs {
    /// Creates a `/proc` view over a kernel.
    pub(crate) fn new(dev: DevId, kernel: Weak<KernelInner>) -> Arc<ProcFs> {
        Arc::new(ProcFs {
            dev,
            kernel,
            next_fh: AtomicU64::new(1),
        })
    }

    fn kernel(&self) -> SysResult<Arc<KernelInner>> {
        self.kernel.upgrade().ok_or(Errno::EIO)
    }

    fn classify(ino: Ino) -> ProcNode {
        let v = ino.raw();
        if v < 1 << 32 {
            return match v {
                1 => ProcNode::Root,
                I_NAMESPACES => ProcNode::NsTable,
                I_LOCKDEP => ProcNode::Lockdep,
                I_CNTRSTATS => ProcNode::Cntrstats,
                _ => ProcNode::Unknown,
            };
        }
        let pid = Pid((v >> 32) as u32);
        match v & 0xffff_ffff {
            0 => ProcNode::PidDir(pid),
            F_STATUS => ProcNode::File(pid, ProcFile::Status),
            F_ENVIRON => ProcNode::File(pid, ProcFile::Environ),
            F_CMDLINE => ProcNode::File(pid, ProcFile::Cmdline),
            F_CGROUP => ProcNode::File(pid, ProcFile::Cgroup),
            F_MOUNTS => ProcNode::File(pid, ProcFile::Mounts),
            D_NS => ProcNode::NsDir(pid),
            k if (D_NS + 1..=D_NS + 7).contains(&k) => {
                ProcNode::File(pid, ProcFile::Ns(ALL_KINDS[(k - D_NS - 1) as usize]))
            }
            _ => ProcNode::Unknown,
        }
    }

    fn pid_exists(&self, pid: Pid) -> bool {
        self.kernel()
            .map(|k| k.procs.contains(pid))
            .unwrap_or(false)
    }

    /// The fields a `/proc/<pid>/*` file is generated from, cloned out of
    /// the process's shard in **one** lock acquisition. A concurrent `fork`
    /// or `exit` can therefore never produce a torn read: every line of a
    /// rendered file describes the same instant of the process.
    fn snapshot(&self, pid: Pid) -> SysResult<ProcSnapshot> {
        let kernel = self.kernel()?;
        kernel
            .procs
            .with(pid, |p| {
                Ok(ProcSnapshot {
                    name: p.name.clone(),
                    state: p.state,
                    pid: p.pid,
                    ppid: p.ppid,
                    creds: p.creds.clone(),
                    env: p.env.clone(),
                    cgroup: p.cgroup.clone(),
                    ns: p.ns,
                })
            })
            .map_err(|_| Errno::ENOENT)
    }

    /// `/proc/namespaces`: one `kind id refcount` line per live namespace,
    /// sorted by id then kind — the GC observability surface.
    fn namespaces_content(&self) -> SysResult<Vec<u8>> {
        let kernel = self.kernel()?;
        let mut out = String::new();
        for (kind, id, count) in kernel.ns_refs.snapshot() {
            out.push_str(&format!("{} {} {}\n", kind.proc_name(), id.0, count));
        }
        Ok(out.into_bytes())
    }

    /// `/proc/lockdep`: the lock-dependency engine's current view — every
    /// registered class and every observed dependency edge. In builds
    /// without instrumentation (release, no `lockdep` feature) the report
    /// is empty, which the header line makes explicit.
    fn lockdep_content(&self) -> Vec<u8> {
        lockdep::report().to_string().into_bytes()
    }

    /// `/proc/cntrstats`: every registered observability metric as
    /// vmstat-style `name value` lines, one subsystem block after another
    /// (each block is rendered in a single pass over its metrics, so —
    /// like `/proc/vmstat` — the snapshot is consistent per subsystem),
    /// followed by lock-contention counters bridged from the lockdep
    /// core, which sits below the metrics crate and cannot register its
    /// own metrics without a dependency cycle.
    fn cntrstats_content(&self) -> Vec<u8> {
        let mut out = obs::render();
        let report = lockdep::report();
        out.push_str(&format!("lockdep.classes {}\n", report.classes.len()));
        let (contended, wait_ns) = report.classes.iter().fold((0u64, 0u64), |(c, w), cl| {
            (c + cl.contended, w + cl.wait_ns)
        });
        out.push_str(&format!("lockdep.contended-total {contended}\n"));
        out.push_str(&format!("lockdep.wait-ns-total {wait_ns}\n"));
        let mut classes: Vec<_> = report.classes.iter().filter(|c| c.contended > 0).collect();
        classes.sort_by_key(|c| c.name);
        for c in classes {
            let name = c.name.replace('_', "-");
            out.push_str(&format!("lockdep.{name}.contended {}\n", c.contended));
            out.push_str(&format!("lockdep.{name}.wait-ns {}\n", c.wait_ns));
        }
        out.into_bytes()
    }

    fn content(&self, pid: Pid, file: ProcFile) -> SysResult<Vec<u8>> {
        let p = self.snapshot(pid)?;
        let out = match file {
            ProcFile::Status => format!(
                "Name:\t{}\nState:\t{}\nPid:\t{}\nPPid:\t{}\nUid:\t{} {} {} {}\nGid:\t{} {} {} {}\nCapEff:\t{:016x}\nCapBnd:\t{:016x}\nSeccomp:\t0\n",
                p.name,
                match p.state {
                    crate::process::ProcessState::Running => "R (running)",
                    crate::process::ProcessState::Zombie => "Z (zombie)",
                },
                p.pid,
                p.ppid,
                p.creds.uid, p.creds.uid, p.creds.uid, p.creds.uid,
                p.creds.gid, p.creds.gid, p.creds.gid, p.creds.gid,
                p.creds.caps.raw(),
                p.creds.bounding.raw(),
            )
            .into_bytes(),
            ProcFile::Environ => {
                let mut buf = Vec::new();
                for (k, v) in &p.env {
                    buf.extend_from_slice(k.as_bytes());
                    buf.push(b'=');
                    buf.extend_from_slice(v.as_bytes());
                    buf.push(0);
                }
                buf
            }
            ProcFile::Cmdline => {
                let mut b = p.name.clone().into_bytes();
                b.push(0);
                b
            }
            ProcFile::Cgroup => format!("0::{}\n", p.cgroup.0).into_bytes(),
            ProcFile::Mounts => {
                // Processes-before-mounts: the shard was released by
                // `snapshot`; the mount table is read afterwards.
                let kernel = self.kernel()?;
                let ns = kernel.mounts.snapshot(p.ns.mount).map_err(|_| Errno::EIO)?;
                let mut out = String::new();
                for m in ns.iter() {
                    // The filesystem reports its own option string (stacked
                    // filesystems expose their layering here); the mount's
                    // read-only flag overrides the leading rw.
                    let opts = if m.flags.readonly {
                        m.fs.fs_options().replacen("rw", "ro", 1)
                    } else {
                        m.fs.fs_options()
                    };
                    out.push_str(&format!("{} {} {} 0 0\n", m.fs.fs_type(), m.id, opts));
                }
                out.into_bytes()
            }
            ProcFile::Ns(kind) => {
                format!("{}:[{}]", kind.proc_name(), p.ns.get(kind).0).into_bytes()
            }
        };
        Ok(out)
    }

    fn dir_stat(&self, ino: Ino, uid: Uid, gid: Gid) -> Stat {
        Stat {
            dev: self.dev,
            ino,
            ftype: FileType::Directory,
            mode: Mode::new(0o555),
            nlink: 2,
            uid,
            gid,
            rdev: 0,
            size: 0,
            blocks: 0,
            blksize: 4096,
            atime: Timespec::ZERO,
            mtime: Timespec::ZERO,
            ctime: Timespec::ZERO,
        }
    }

    fn file_stat(&self, ino: Ino, uid: Uid, gid: Gid, size: u64) -> Stat {
        Stat {
            dev: self.dev,
            ino,
            ftype: FileType::Regular,
            mode: Mode::new(0o444),
            nlink: 1,
            uid,
            gid,
            rdev: 0,
            size,
            blocks: 0,
            blksize: 4096,
            atime: Timespec::ZERO,
            mtime: Timespec::ZERO,
            ctime: Timespec::ZERO,
        }
    }

    fn owner_of(&self, pid: Pid) -> (Uid, Gid) {
        self.kernel()
            .ok()
            .and_then(|k| k.procs.with(pid, |p| Ok((p.creds.uid, p.creds.gid))).ok())
            .unwrap_or((Uid::ROOT, Gid::ROOT))
    }

    fn node_stat(&self, ino: Ino) -> SysResult<Stat> {
        match Self::classify(ino) {
            ProcNode::Root => Ok(self.dir_stat(ino, Uid::ROOT, Gid::ROOT)),
            ProcNode::NsTable => {
                let size = self.namespaces_content()?.len() as u64;
                Ok(self.file_stat(ino, Uid::ROOT, Gid::ROOT, size))
            }
            ProcNode::Lockdep => {
                let size = self.lockdep_content().len() as u64;
                Ok(self.file_stat(ino, Uid::ROOT, Gid::ROOT, size))
            }
            ProcNode::Cntrstats => {
                let size = self.cntrstats_content().len() as u64;
                Ok(self.file_stat(ino, Uid::ROOT, Gid::ROOT, size))
            }
            ProcNode::PidDir(pid) | ProcNode::NsDir(pid) => {
                if !self.pid_exists(pid) {
                    return Err(Errno::ENOENT);
                }
                let (uid, gid) = self.owner_of(pid);
                Ok(self.dir_stat(ino, uid, gid))
            }
            ProcNode::File(pid, f) => {
                let size = self.content(pid, f)?.len() as u64;
                let (uid, gid) = self.owner_of(pid);
                Ok(self.file_stat(ino, uid, gid, size))
            }
            ProcNode::Unknown => Err(Errno::ENOENT),
        }
    }
}

/// One process's fields, cloned from its shard in a single acquisition.
struct ProcSnapshot {
    name: String,
    state: crate::process::ProcessState,
    pid: Pid,
    ppid: Pid,
    creds: crate::cred::Credentials,
    env: std::collections::BTreeMap<String, String>,
    cgroup: crate::cgroup::CgroupPath,
    ns: crate::ns::NamespaceSet,
}

#[derive(Clone, Copy)]
enum ProcFile {
    Status,
    Environ,
    Cmdline,
    Cgroup,
    Mounts,
    Ns(NamespaceKind),
}

enum ProcNode {
    Root,
    /// `/proc/namespaces` — live namespaces and their process refcounts.
    NsTable,
    /// `/proc/lockdep` — lock classes and observed dependency edges.
    Lockdep,
    /// `/proc/cntrstats` — the observability registry, vmstat-style.
    Cntrstats,
    PidDir(Pid),
    NsDir(Pid),
    File(Pid, ProcFile),
    Unknown,
}

impl Filesystem for ProcFs {
    fn fs_id(&self) -> DevId {
        self.dev
    }

    fn fs_type(&self) -> &'static str {
        "proc"
    }

    fn features(&self) -> FsFeatures {
        FsFeatures {
            direct_io: false,
            exportable_handles: false,
            enforces_caller_fsize: true,
            native_setgid_clearing: true,
            block_backed: false,
            reflink: false,
            xattr_cached: true,
        }
    }

    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        match Self::classify(parent) {
            ProcNode::Root => {
                if name == "namespaces" {
                    return self.node_stat(Ino(I_NAMESPACES));
                }
                if name == "lockdep" {
                    return self.node_stat(Ino(I_LOCKDEP));
                }
                if name == "cntrstats" {
                    return self.node_stat(Ino(I_CNTRSTATS));
                }
                let pid: u32 = name.parse().map_err(|_| Errno::ENOENT)?;
                if !self.pid_exists(Pid(pid)) {
                    return Err(Errno::ENOENT);
                }
                self.node_stat(Ino(pid_ino(Pid(pid), 0)))
            }
            ProcNode::PidDir(pid) => {
                let k = match name {
                    "status" => F_STATUS,
                    "environ" => F_ENVIRON,
                    "cmdline" => F_CMDLINE,
                    "cgroup" => F_CGROUP,
                    "mounts" => F_MOUNTS,
                    "ns" => D_NS,
                    _ => return Err(Errno::ENOENT),
                };
                self.node_stat(Ino(pid_ino(pid, k)))
            }
            ProcNode::NsDir(pid) => {
                let idx = ALL_KINDS
                    .iter()
                    .position(|k| k.proc_name() == name)
                    .ok_or(Errno::ENOENT)?;
                self.node_stat(Ino(pid_ino(pid, D_NS + 1 + idx as u64)))
            }
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn getattr(&self, ino: Ino) -> SysResult<Stat> {
        self.node_stat(ino)
    }

    fn setattr(&self, _ino: Ino, _attr: &SetAttr, _ctx: &FsContext) -> SysResult<Stat> {
        Err(Errno::EPERM)
    }

    fn mknod(
        &self,
        _parent: Ino,
        _name: &str,
        _ftype: FileType,
        _mode: Mode,
        _rdev: u64,
        _ctx: &FsContext,
    ) -> SysResult<Stat> {
        Err(Errno::EROFS)
    }

    fn mkdir(&self, _parent: Ino, _name: &str, _mode: Mode, _ctx: &FsContext) -> SysResult<Stat> {
        Err(Errno::EROFS)
    }

    fn unlink(&self, _parent: Ino, _name: &str) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    fn rmdir(&self, _parent: Ino, _name: &str) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    fn symlink(
        &self,
        _parent: Ino,
        _name: &str,
        _target: &str,
        _ctx: &FsContext,
    ) -> SysResult<Stat> {
        Err(Errno::EROFS)
    }

    fn readlink(&self, _ino: Ino) -> SysResult<String> {
        Err(Errno::EINVAL)
    }

    fn link(&self, _ino: Ino, _newparent: Ino, _newname: &str) -> SysResult<Stat> {
        Err(Errno::EROFS)
    }

    fn rename(
        &self,
        _parent: Ino,
        _name: &str,
        _newparent: Ino,
        _newname: &str,
        _flags: RenameFlags,
    ) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
        if flags.mode.writable() {
            return Err(Errno::EACCES);
        }
        self.node_stat(ino)?;
        Ok(Fh(self.next_fh.fetch_add(1, Ordering::Relaxed)))
    }

    fn release(&self, _ino: Ino, _fh: Fh) -> SysResult<()> {
        Ok(())
    }

    fn read(&self, ino: Ino, _fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        let content = match Self::classify(ino) {
            ProcNode::File(pid, f) => self.content(pid, f)?,
            ProcNode::NsTable => self.namespaces_content()?,
            ProcNode::Lockdep => self.lockdep_content(),
            ProcNode::Cntrstats => self.cntrstats_content(),
            _ => return Err(Errno::EISDIR),
        };
        if offset >= content.len() as u64 {
            return Ok(0);
        }
        let n = buf.len().min(content.len() - offset as usize);
        buf[..n].copy_from_slice(&content[offset as usize..offset as usize + n]);
        Ok(n)
    }

    fn write(&self, _ino: Ino, _fh: Fh, _offset: u64, _data: &[u8]) -> SysResult<usize> {
        Err(Errno::EROFS)
    }

    fn fsync(&self, _ino: Ino, _fh: Fh, _datasync: bool) -> SysResult<()> {
        Ok(())
    }

    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
        match Self::classify(ino) {
            ProcNode::Root => {
                let kernel = self.kernel()?;
                let mut out = vec![
                    Dirent {
                        ino: Ino(I_NAMESPACES),
                        name: "namespaces".to_string(),
                        ftype: FileType::Regular,
                    },
                    Dirent {
                        ino: Ino(I_LOCKDEP),
                        name: "lockdep".to_string(),
                        ftype: FileType::Regular,
                    },
                    Dirent {
                        ino: Ino(I_CNTRSTATS),
                        name: "cntrstats".to_string(),
                        ftype: FileType::Regular,
                    },
                ];
                out.extend(kernel.procs.pids().into_iter().map(|p| Dirent {
                    ino: Ino(pid_ino(p, 0)),
                    name: p.to_string(),
                    ftype: FileType::Directory,
                }));
                Ok(out)
            }
            ProcNode::PidDir(pid) => {
                if !self.pid_exists(pid) {
                    return Err(Errno::ENOENT);
                }
                Ok([
                    ("cgroup", F_CGROUP, FileType::Regular),
                    ("cmdline", F_CMDLINE, FileType::Regular),
                    ("environ", F_ENVIRON, FileType::Regular),
                    ("mounts", F_MOUNTS, FileType::Regular),
                    ("ns", D_NS, FileType::Directory),
                    ("status", F_STATUS, FileType::Regular),
                ]
                .into_iter()
                .map(|(n, k, t)| Dirent {
                    ino: Ino(pid_ino(pid, k)),
                    name: n.to_string(),
                    ftype: t,
                })
                .collect())
            }
            ProcNode::NsDir(pid) => Ok(ALL_KINDS
                .iter()
                .enumerate()
                .map(|(i, k)| Dirent {
                    ino: Ino(pid_ino(pid, D_NS + 1 + i as u64)),
                    name: k.proc_name().to_string(),
                    ftype: FileType::Regular,
                })
                .collect()),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn statfs(&self) -> SysResult<Statfs> {
        Ok(Statfs {
            bsize: 4096,
            blocks: 0,
            bfree: 0,
            bavail: 0,
            files: 0,
            ffree: 0,
            namelen: 255,
        })
    }

    fn getxattr(&self, _ino: Ino, _name: &str) -> SysResult<Vec<u8>> {
        Err(Errno::ENODATA)
    }

    fn setxattr(&self, _ino: Ino, _name: &str, _value: &[u8], _flags: XattrFlags) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    fn listxattr(&self, _ino: Ino) -> SysResult<Vec<String>> {
        Ok(Vec::new())
    }

    fn removexattr(&self, _ino: Ino, _name: &str) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    fn fallocate(
        &self,
        _ino: Ino,
        _fh: Fh,
        _offset: u64,
        _len: u64,
        _mode: FallocateMode,
    ) -> SysResult<()> {
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};
    use crate::mount::{CacheMode, MountFlags};
    use cntr_fs::memfs::memfs;
    use cntr_types::SimClock;

    #[test]
    fn procfs_reflects_processes() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        k.setenv(Pid::INIT, "MYSQL_HOST", "db.internal").unwrap();

        // Read /proc/1/status through the VFS.
        let fd = k
            .open(
                Pid::INIT,
                "/proc/1/status",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut buf = vec![0u8; 4096];
        let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(text.contains("Name:\tinit"), "{text}");
        assert!(text.contains("Pid:\t1"));
        k.close(Pid::INIT, fd).unwrap();

        // environ contains the variable.
        let fd = k
            .open(
                Pid::INIT,
                "/proc/1/environ",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        let env = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(env.contains("MYSQL_HOST=db.internal"));
        k.close(Pid::INIT, fd).unwrap();

        // New processes show up; dead ones disappear.
        let child = k.fork(Pid::INIT).unwrap();
        assert!(k.stat(Pid::INIT, &format!("/proc/{child}/status")).is_ok());
        let ns_text = {
            let fd = k
                .open(
                    Pid::INIT,
                    &format!("/proc/{child}/ns/mnt"),
                    OpenFlags::RDONLY,
                    Mode::RW_R__R__,
                )
                .unwrap();
            let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
            k.close(Pid::INIT, fd).unwrap();
            String::from_utf8_lossy(&buf[..n]).to_string()
        };
        assert!(ns_text.starts_with("mnt:["), "{ns_text}");
        k.exit(child).unwrap();
        k.reap(child).unwrap();
        assert_eq!(
            k.stat(Pid::INIT, &format!("/proc/{child}/status")),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn proc_namespaces_tracks_refcounts_and_gc() {
        use crate::ns::NamespaceKind;
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        let read = |k: &Kernel| {
            let fd = k
                .open(
                    Pid::INIT,
                    "/proc/namespaces",
                    OpenFlags::RDONLY,
                    Mode::RW_R__R__,
                )
                .unwrap();
            let mut buf = vec![0u8; 4096];
            let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
            k.close(Pid::INIT, fd).unwrap();
            String::from_utf8_lossy(&buf[..n]).to_string()
        };
        // Boot: seven entries for namespace 1, one holder (init).
        let text = read(&k);
        assert_eq!(text.lines().count(), 7, "{text}");
        assert!(text.contains("mnt 1 1"), "{text}");
        // A forked container child bumps counts; unshare adds rows.
        let child = k.fork(Pid::INIT).unwrap();
        k.unshare(child, &[NamespaceKind::Mount]).unwrap();
        let child_mnt = k.proc_info(child).unwrap().ns.mount;
        let text = read(&k);
        assert_eq!(text.lines().count(), 8, "{text}");
        assert!(text.contains("pid 1 2"), "{text}");
        assert!(text.contains(&format!("mnt {} 1", child_mnt.0)), "{text}");
        // Reaping the child GCs its namespace: the row disappears.
        k.exit(child).unwrap();
        k.reap(child).unwrap();
        let text = read(&k);
        assert_eq!(text.lines().count(), 7, "{text}");
        assert!(!text.contains(&format!("mnt {}", child_mnt.0)), "{text}");
    }

    #[test]
    fn proc_lockdep_exposes_the_dependency_report() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        let fd = k
            .open(
                Pid::INIT,
                "/proc/lockdep",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut buf = vec![0u8; 1 << 20];
        let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        k.close(Pid::INIT, fd).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(text.starts_with("lock classes:"), "{text}");
        // With instrumentation on, the kernel's named classes must appear,
        // and the pid shards must carry their declared sharded shape.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        {
            assert!(
                text.contains(crate::table::lock_class::PROC_SHARD),
                "{text}"
            );
            assert!(text.contains("sharded(ascending)"), "{text}");
        }
    }

    #[test]
    fn procfs_is_read_only() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        assert_eq!(
            k.mkdir(Pid::INIT, "/proc/evil", Mode::RWXR_XR_X),
            Err(Errno::EROFS)
        );
        assert_eq!(
            k.open(
                Pid::INIT,
                "/proc/1/status",
                OpenFlags::WRONLY,
                Mode::RW_R__R__
            ),
            Err(Errno::EACCES)
        );
    }

    #[test]
    fn mounts_file_shows_fs_options_and_readonly() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(
            clock.clone(),
            fs,
            CacheMode::native(),
            KernelConfig::default(),
        );
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        // An overlay mount advertises its layering in the options column.
        let store = cntr_overlay::BlobStore::new();
        let lower = cntr_overlay::blobfs(DevId(21), clock.clone(), store.clone());
        let upper = cntr_overlay::blobfs(DevId(22), clock.clone(), store);
        let overlay = cntr_overlay::OverlayFs::new(DevId(23), vec![lower], upper);
        k.mkdir(Pid::INIT, "/merged", Mode::RWXR_XR_X).unwrap();
        k.mount_fs(
            Pid::INIT,
            "/merged",
            overlay,
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        // A read-only mount overrides the leading `rw`.
        let ro = memfs(DevId(24), clock.clone());
        k.mkdir(Pid::INIT, "/ro", Mode::RWXR_XR_X).unwrap();
        k.mount_fs(
            Pid::INIT,
            "/ro",
            ro,
            CacheMode::native(),
            MountFlags { readonly: true },
        )
        .unwrap();

        let fd = k
            .open(
                Pid::INIT,
                "/proc/1/mounts",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut buf = [0u8; 4096];
        let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        k.close(Pid::INIT, fd).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(
            text.contains("overlay") && text.contains("lowerdir=1xblobfs"),
            "{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("tmpfs") && l.contains(" ro")),
            "{text}"
        );
    }

    #[test]
    fn inode_numbers_never_collide_across_pids() {
        // Every node of every pid directory, for 10k pids, plus the special
        // nodes, must map to a distinct inode — the previous
        // `pid * 1000 + k` scheme aliased neighbouring pids' files.
        let mut seen = std::collections::HashSet::new();
        for special in [1u64, I_NAMESPACES, I_LOCKDEP, I_CNTRSTATS] {
            assert!(seen.insert(special));
        }
        for pid in 1..=10_000u32 {
            let pid = Pid(pid);
            let mut ks = vec![0, F_STATUS, F_ENVIRON, F_CMDLINE, F_CGROUP, F_MOUNTS, D_NS];
            ks.extend((0..ALL_KINDS.len() as u64).map(|i| D_NS + 1 + i));
            for k in ks {
                let ino = pid_ino(pid, k);
                assert!(seen.insert(ino), "collision at pid {pid} k {k}");
                // And the inode classifies back to the same pid.
                match ProcFs::classify(Ino(ino)) {
                    ProcNode::PidDir(p) | ProcNode::NsDir(p) | ProcNode::File(p, _) => {
                        assert_eq!(p, pid)
                    }
                    _ => panic!("pid inode classified as non-pid node"),
                }
            }
        }
    }

    #[test]
    fn proc_cntrstats_renders_live_metrics() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        // Generate page-cache traffic so the pagecache block is non-trivial.
        let fd = k
            .open(Pid::INIT, "/f", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(Pid::INIT, fd, b"stats").unwrap();
        k.close(Pid::INIT, fd).unwrap();
        let fd = k
            .open(Pid::INIT, "/f", OpenFlags::RDONLY, Mode::RW_R__R__)
            .unwrap();
        let mut small = [0u8; 5];
        k.read_fd(Pid::INIT, fd, &mut small).unwrap();
        k.close(Pid::INIT, fd).unwrap();
        let fd = k
            .open(
                Pid::INIT,
                "/proc/cntrstats",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut buf = vec![0u8; 1 << 20];
        let n = k.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        k.close(Pid::INIT, fd).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        // vmstat shape: every line is `name value`.
        for line in text.lines() {
            let mut parts = line.split(' ');
            let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
            assert!(parts.next().is_none(), "{line}");
            assert!(!name.is_empty());
            value.parse::<i64>().unwrap();
        }
        assert!(text.contains("pagecache.lookups "), "{text}");
        assert!(text.contains("lockdep.classes "), "{text}");
    }

    // Silence the helper-trait dead-code path.
    #[test]
    fn bind_mount_proc_into_subtree() {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
        k.mount_procfs(Pid::INIT, "/proc").unwrap();
        k.mkdir(Pid::INIT, "/jail", Mode::RWXR_XR_X).unwrap();
        k.mkdir(Pid::INIT, "/jail/proc", Mode::RWXR_XR_X).unwrap();
        k.bind_mount(Pid::INIT, "/proc", "/jail/proc", MountFlags::default())
            .unwrap();
        assert!(k.stat(Pid::INIT, "/jail/proc/1/status").is_ok());
    }
}
