//! Control groups: resource accounting and limits.
//!
//! CNTR assigns its attached process to the target container's cgroup
//! (paper §3.2.3: "the child process assigns itself to the cgroup, by
//! appropriately setting the /sys/ option") so that tool resource usage is
//! billed to — and limited by — the container.

use cntr_types::{Errno, Pid, SysResult};
use std::collections::{BTreeMap, BTreeSet};

/// A cgroup's position in the hierarchy, e.g.
/// `/sys/fs/cgroup/docker/<container-id>`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CgroupPath(pub String);

impl CgroupPath {
    /// The root cgroup.
    pub fn root() -> CgroupPath {
        CgroupPath("/".to_string())
    }

    /// True if `self` is `other` or a descendant of it.
    pub fn is_within(&self, other: &CgroupPath) -> bool {
        if other.0 == "/" {
            return true;
        }
        self.0 == other.0 || self.0.starts_with(&format!("{}/", other.0))
    }
}

/// Resource limits attached to one cgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CgroupLimits {
    /// Memory limit in bytes (`memory.max`), if set.
    pub memory_max: Option<u64>,
    /// CPU quota in micro-cores (1_000_000 = one full core), if set.
    pub cpu_quota: Option<u64>,
    /// Max number of pids (`pids.max`), if set.
    pub pids_max: Option<u64>,
}

#[derive(Debug, Default)]
struct CgroupNode {
    limits: CgroupLimits,
    members: BTreeSet<Pid>,
}

/// The cgroup hierarchy of the simulated machine.
#[derive(Debug, Default)]
pub struct CgroupTree {
    nodes: BTreeMap<CgroupPath, CgroupNode>,
}

impl CgroupTree {
    /// Creates the hierarchy with only the root group.
    pub fn new() -> CgroupTree {
        let mut t = CgroupTree::default();
        t.nodes.insert(CgroupPath::root(), CgroupNode::default());
        t
    }

    /// Creates a cgroup (parents must exist, as with `mkdir` in cgroupfs).
    pub fn create(&mut self, path: &str) -> SysResult<CgroupPath> {
        if !path.starts_with('/') || path.contains("//") {
            return Err(Errno::EINVAL);
        }
        let path = CgroupPath(path.trim_end_matches('/').to_string());
        if path.0.is_empty() {
            return Err(Errno::EINVAL);
        }
        if self.nodes.contains_key(&path) {
            return Err(Errno::EEXIST);
        }
        if let Some((parent, _)) = path.0.rsplit_once('/') {
            let parent = if parent.is_empty() { "/" } else { parent };
            if !self.nodes.contains_key(&CgroupPath(parent.to_string())) {
                return Err(Errno::ENOENT);
            }
        }
        self.nodes.insert(path.clone(), CgroupNode::default());
        Ok(path)
    }

    /// Removes an empty cgroup.
    pub fn remove(&mut self, path: &CgroupPath) -> SysResult<()> {
        let node = self.nodes.get(path).ok_or(Errno::ENOENT)?;
        if !node.members.is_empty() {
            return Err(Errno::EBUSY);
        }
        let has_children = self.nodes.keys().any(|p| p != path && p.is_within(path));
        if has_children {
            return Err(Errno::EBUSY);
        }
        self.nodes.remove(path);
        Ok(())
    }

    /// Moves a process into a cgroup (writing to `cgroup.procs`).
    pub fn attach(&mut self, pid: Pid, path: &CgroupPath) -> SysResult<()> {
        if !self.nodes.contains_key(path) {
            return Err(Errno::ENOENT);
        }
        if let Some(limit) = self.nodes[path].limits.pids_max {
            if self.nodes[path].members.len() as u64 >= limit {
                return Err(Errno::EAGAIN);
            }
        }
        for node in self.nodes.values_mut() {
            node.members.remove(&pid);
        }
        self.nodes
            .get_mut(path)
            .expect("checked above")
            .members
            .insert(pid);
        Ok(())
    }

    /// Removes a process from every cgroup (process exit).
    pub fn detach_everywhere(&mut self, pid: Pid) {
        for node in self.nodes.values_mut() {
            node.members.remove(&pid);
        }
    }

    /// The cgroup a process currently belongs to.
    pub fn cgroup_of(&self, pid: Pid) -> Option<CgroupPath> {
        self.nodes
            .iter()
            .find(|(_, n)| n.members.contains(&pid))
            .map(|(p, _)| p.clone())
    }

    /// Sets limits on a cgroup.
    pub fn set_limits(&mut self, path: &CgroupPath, limits: CgroupLimits) -> SysResult<()> {
        self.nodes
            .get_mut(path)
            .map(|n| n.limits = limits)
            .ok_or(Errno::ENOENT)
    }

    /// Reads limits of a cgroup.
    pub fn limits(&self, path: &CgroupPath) -> SysResult<CgroupLimits> {
        self.nodes.get(path).map(|n| n.limits).ok_or(Errno::ENOENT)
    }

    /// Member pids of a cgroup.
    pub fn members(&self, path: &CgroupPath) -> SysResult<Vec<Pid>> {
        self.nodes
            .get(path)
            .map(|n| n.members.iter().copied().collect())
            .ok_or(Errno::ENOENT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_requires_parent() {
        let mut t = CgroupTree::new();
        assert_eq!(t.create("/a/b"), Err(Errno::ENOENT));
        t.create("/a").unwrap();
        t.create("/a/b").unwrap();
        assert_eq!(t.create("/a"), Err(Errno::EEXIST));
    }

    #[test]
    fn attach_moves_between_groups() {
        let mut t = CgroupTree::new();
        let a = t.create("/a").unwrap();
        let b = t.create("/b").unwrap();
        t.attach(Pid(10), &a).unwrap();
        assert_eq!(t.cgroup_of(Pid(10)), Some(a.clone()));
        t.attach(Pid(10), &b).unwrap();
        assert_eq!(t.cgroup_of(Pid(10)), Some(b.clone()));
        assert!(t.members(&a).unwrap().is_empty());
    }

    #[test]
    fn remove_refuses_busy() {
        let mut t = CgroupTree::new();
        let a = t.create("/a").unwrap();
        t.attach(Pid(1), &a).unwrap();
        assert_eq!(t.remove(&a), Err(Errno::EBUSY));
        t.detach_everywhere(Pid(1));
        t.create("/a/kid").unwrap();
        assert_eq!(t.remove(&a), Err(Errno::EBUSY));
        t.remove(&CgroupPath("/a/kid".into())).unwrap();
        t.remove(&a).unwrap();
    }

    #[test]
    fn pids_max_enforced() {
        let mut t = CgroupTree::new();
        let a = t.create("/a").unwrap();
        t.set_limits(
            &a,
            CgroupLimits {
                pids_max: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        t.attach(Pid(1), &a).unwrap();
        assert_eq!(t.attach(Pid(2), &a), Err(Errno::EAGAIN));
    }

    #[test]
    fn is_within_hierarchy() {
        let a = CgroupPath("/docker/abc".to_string());
        assert!(a.is_within(&CgroupPath::root()));
        assert!(a.is_within(&CgroupPath("/docker".into())));
        assert!(!a.is_within(&CgroupPath("/dock".into())));
    }
}
