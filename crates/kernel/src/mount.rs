//! Mount tables, bind mounts, and shared-subtree propagation.
//!
//! Containers get their own *mount namespace* — a private view of the mount
//! tree. CNTR's nested namespace trick (paper §3.2.3) is built entirely from
//! the operations here: clone the container's mount table (`unshare`), mark
//! everything private so nothing propagates back, mount CntrFS, *move* the
//! old mounts under `/var/lib/cntr`, bind `/proc` and `/dev` over the new
//! tree, and `chroot` into it.

use crate::ns::NamespaceId;
use cntr_fs::Filesystem;
use cntr_types::{Errno, Ino, SysResult};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of one mount within a mount namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MountId(pub u64);

impl fmt::Display for MountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mnt#{}", self.0)
    }
}

/// Shared-subtree propagation type of a mount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// `MS_PRIVATE`: mount events do not propagate (what container runtimes
    /// set, and what CNTR sets inside the nested namespace).
    Private,
    /// `MS_SHARED`: mounts/unmounts replicate to every peer in the group.
    Shared(u64),
}

/// Page-cache policy of a mount.
///
/// For an ordinary disk filesystem both flags are on. For a FUSE mount they
/// are *negotiated*: `keep_cache` is `FOPEN_KEEP_CACHE`, `writeback` is
/// `FUSE_WRITEBACK_CACHE` — two of the paper's four optimizations (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMode {
    /// Writes are buffered dirty in the page cache and flushed in batches.
    /// Off = write-through: every write goes to the filesystem immediately.
    pub writeback: bool,
    /// Cached pages survive `open()` (`FOPEN_KEEP_CACHE`). Off = the page
    /// cache for a file is invalidated each time it is opened.
    pub keep_cache: bool,
    /// Pages carry no real bytes (benchmark mode): reads return zeroes.
    /// Correctness tests never set this.
    pub synthetic: bool,
}

impl CacheMode {
    /// Normal local-filesystem caching.
    pub const fn native() -> CacheMode {
        CacheMode {
            writeback: true,
            keep_cache: true,
            synthetic: false,
        }
    }

    /// Cache disabled in both directions (un-optimized FUSE).
    pub const fn uncached() -> CacheMode {
        CacheMode {
            writeback: false,
            keep_cache: false,
            synthetic: false,
        }
    }
}

/// Per-mount flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MountFlags {
    /// `MS_RDONLY`.
    pub readonly: bool,
}

/// One mounted filesystem (or bind-mounted subtree).
#[derive(Clone)]
pub struct Mount {
    /// Identity within the namespace.
    pub id: MountId,
    /// The filesystem instance.
    pub fs: Arc<dyn Filesystem>,
    /// Root of the visible subtree within `fs` (≠ `fs.root_ino()` for bind
    /// mounts of subdirectories).
    pub root_ino: Ino,
    /// Where this mount hangs: `(parent mount, directory inode covered)`.
    /// `None` for the namespace root.
    pub parent: Option<(MountId, Ino)>,
    /// Propagation type.
    pub propagation: Propagation,
    /// Page-cache policy.
    pub cache: CacheMode,
    /// Mount flags.
    pub flags: MountFlags,
}

impl fmt::Debug for Mount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mount")
            .field("id", &self.id)
            .field("fs", &self.fs.fs_type())
            .field("root_ino", &self.root_ino)
            .field("parent", &self.parent)
            .field("propagation", &self.propagation)
            .finish_non_exhaustive()
    }
}

/// The mount table of one mount namespace.
#[derive(Debug, Clone)]
pub struct MountNs {
    /// Namespace identity.
    pub id: NamespaceId,
    mounts: BTreeMap<MountId, Mount>,
    root: MountId,
}

impl MountNs {
    /// Creates a namespace with `fs` as its root mount.
    pub fn new(
        id: NamespaceId,
        root_mount_id: MountId,
        fs: Arc<dyn Filesystem>,
        cache: CacheMode,
    ) -> MountNs {
        let root_ino = fs.root_ino();
        let mut mounts = BTreeMap::new();
        mounts.insert(
            root_mount_id,
            Mount {
                id: root_mount_id,
                fs,
                root_ino,
                parent: None,
                propagation: Propagation::Private,
                cache,
                flags: MountFlags::default(),
            },
        );
        MountNs {
            id,
            mounts,
            root: root_mount_id,
        }
    }

    /// The root mount.
    pub fn root_mount(&self) -> MountId {
        self.root
    }

    /// Looks up a mount.
    pub fn get(&self, id: MountId) -> SysResult<&Mount> {
        self.mounts.get(&id).ok_or(Errno::ENOENT)
    }

    /// Iterates all mounts.
    pub fn iter(&self) -> impl Iterator<Item = &Mount> {
        self.mounts.values()
    }

    /// Number of mounts.
    pub fn len(&self) -> usize {
        self.mounts.len()
    }

    /// True if the table is empty (never, in practice: the root remains).
    pub fn is_empty(&self) -> bool {
        self.mounts.is_empty()
    }

    /// The topmost mount whose mountpoint is `(parent, ino)`, if any.
    /// "Topmost" = most recently mounted, as in Linux mount stacking.
    pub fn mount_at(&self, parent: MountId, ino: Ino) -> Option<&Mount> {
        self.mounts
            .values()
            .filter(|m| m.parent == Some((parent, ino)))
            .max_by_key(|m| m.id)
    }

    /// Adds a mount at `(parent, ino)` and returns its id.
    #[expect(clippy::too_many_arguments, reason = "mirrors mount(2) surface")]
    pub fn add_mount(
        &mut self,
        id: MountId,
        fs: Arc<dyn Filesystem>,
        root_ino: Ino,
        parent: MountId,
        at_ino: Ino,
        cache: CacheMode,
        flags: MountFlags,
    ) -> SysResult<MountId> {
        if !self.mounts.contains_key(&parent) {
            return Err(Errno::EINVAL);
        }
        self.mounts.insert(
            id,
            Mount {
                id,
                fs,
                root_ino,
                parent: Some((parent, at_ino)),
                propagation: Propagation::Private,
                cache,
                flags,
            },
        );
        Ok(id)
    }

    /// Removes a mount; fails with `EBUSY` if other mounts hang below it.
    pub fn umount(&mut self, id: MountId) -> SysResult<Mount> {
        if !self.mounts.contains_key(&id) {
            return Err(Errno::EINVAL);
        }
        if id == self.root {
            return Err(Errno::EBUSY);
        }
        let has_children = self
            .mounts
            .values()
            .any(|m| m.parent.is_some_and(|(p, _)| p == id));
        if has_children {
            return Err(Errno::EBUSY);
        }
        Ok(self.mounts.remove(&id).expect("checked above"))
    }

    /// Moves a mount to a new mountpoint (`mount --move`), as CNTR does when
    /// relocating the application's mounts under `/var/lib/cntr`.
    pub fn move_mount(&mut self, id: MountId, new_parent: MountId, new_ino: Ino) -> SysResult<()> {
        if id == self.root || !self.mounts.contains_key(&new_parent) {
            return Err(Errno::EINVAL);
        }
        // Moving a mount under itself would detach it from the tree.
        let mut cursor = Some(new_parent);
        while let Some(c) = cursor {
            if c == id {
                return Err(Errno::EINVAL);
            }
            cursor = self.mounts.get(&c).and_then(|m| m.parent.map(|(p, _)| p));
        }
        let m = self.mounts.get_mut(&id).ok_or(Errno::EINVAL)?;
        m.parent = Some((new_parent, new_ino));
        Ok(())
    }

    /// Marks every mount private (`mount --make-rprivate /`): the first thing
    /// CNTR does inside the nested namespace.
    pub fn make_all_private(&mut self) {
        for m in self.mounts.values_mut() {
            m.propagation = Propagation::Private;
        }
    }

    /// Sets one mount's propagation.
    pub fn set_propagation(&mut self, id: MountId, prop: Propagation) -> SysResult<()> {
        self.mounts
            .get_mut(&id)
            .map(|m| m.propagation = prop)
            .ok_or(Errno::EINVAL)
    }

    /// Clones the table for a new namespace (`unshare(CLONE_NEWNS)`).
    /// Mount ids and propagation are preserved — shared mounts stay peers
    /// until someone marks them private.
    pub fn clone_for(&self, new_id: NamespaceId) -> MountNs {
        MountNs {
            id: new_id,
            mounts: self.mounts.clone(),
            root: self.root,
        }
    }

    /// Replaces the root mount designation (used by `pivot`-style root
    /// changes in tests; `chroot` itself is per-process and lives in the
    /// process, not here).
    pub fn set_root(&mut self, id: MountId) -> SysResult<()> {
        if !self.mounts.contains_key(&id) {
            return Err(Errno::EINVAL);
        }
        self.root = id;
        Ok(())
    }

    /// All mounts that are members of shared peer group `group`.
    pub fn peers_of(&self, group: u64) -> Vec<MountId> {
        self.mounts
            .values()
            .filter(|m| m.propagation == Propagation::Shared(group))
            .map(|m| m.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_types::{DevId, SimClock};

    fn ns() -> MountNs {
        let fs = memfs(DevId(1), SimClock::new());
        MountNs::new(NamespaceId(1), MountId(1), fs, CacheMode::native())
    }

    #[test]
    fn root_mount_exists() {
        let ns = ns();
        assert_eq!(ns.len(), 1);
        let root = ns.get(ns.root_mount()).unwrap();
        assert!(root.parent.is_none());
    }

    #[test]
    fn mount_and_umount() {
        let mut ns = ns();
        let sub = memfs(DevId(2), SimClock::new());
        ns.add_mount(
            MountId(2),
            sub,
            Ino::ROOT,
            MountId(1),
            Ino(42),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        assert!(ns.mount_at(MountId(1), Ino(42)).is_some());
        ns.umount(MountId(2)).unwrap();
        assert!(ns.mount_at(MountId(1), Ino(42)).is_none());
    }

    #[test]
    fn umount_busy_with_children() {
        let mut ns = ns();
        let a = memfs(DevId(2), SimClock::new());
        let b = memfs(DevId(3), SimClock::new());
        ns.add_mount(
            MountId(2),
            a,
            Ino::ROOT,
            MountId(1),
            Ino(10),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        ns.add_mount(
            MountId(3),
            b,
            Ino::ROOT,
            MountId(2),
            Ino(20),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        assert_eq!(ns.umount(MountId(2)).map(|_| ()), Err(Errno::EBUSY));
        ns.umount(MountId(3)).unwrap();
        ns.umount(MountId(2)).unwrap();
    }

    #[test]
    fn umount_root_is_ebusy() {
        let mut ns = ns();
        assert_eq!(ns.umount(MountId(1)).map(|_| ()), Err(Errno::EBUSY));
    }

    #[test]
    fn stacked_mounts_topmost_wins() {
        let mut ns = ns();
        for i in 2..=4u64 {
            let fs = memfs(DevId(i), SimClock::new());
            ns.add_mount(
                MountId(i),
                fs,
                Ino::ROOT,
                MountId(1),
                Ino(5),
                CacheMode::native(),
                MountFlags::default(),
            )
            .unwrap();
        }
        assert_eq!(ns.mount_at(MountId(1), Ino(5)).unwrap().id, MountId(4));
    }

    #[test]
    fn move_mount_relocates() {
        let mut ns = ns();
        let fs = memfs(DevId(2), SimClock::new());
        ns.add_mount(
            MountId(2),
            fs,
            Ino::ROOT,
            MountId(1),
            Ino(10),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        ns.move_mount(MountId(2), MountId(1), Ino(99)).unwrap();
        assert!(ns.mount_at(MountId(1), Ino(10)).is_none());
        assert_eq!(ns.mount_at(MountId(1), Ino(99)).unwrap().id, MountId(2));
    }

    #[test]
    fn move_mount_under_itself_is_einval() {
        let mut ns = ns();
        let fs = memfs(DevId(2), SimClock::new());
        ns.add_mount(
            MountId(2),
            fs,
            Ino::ROOT,
            MountId(1),
            Ino(10),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        assert_eq!(
            ns.move_mount(MountId(2), MountId(2), Ino(1)),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn clone_preserves_mounts_and_propagation() {
        let mut ns = ns();
        let fs = memfs(DevId(2), SimClock::new());
        ns.add_mount(
            MountId(2),
            fs,
            Ino::ROOT,
            MountId(1),
            Ino(10),
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        ns.set_propagation(MountId(2), Propagation::Shared(7))
            .unwrap();
        let clone = ns.clone_for(NamespaceId(9));
        assert_eq!(clone.len(), 2);
        assert_eq!(clone.id, NamespaceId(9));
        assert_eq!(clone.peers_of(7), vec![MountId(2)]);
        // Making the clone private does not touch the original.
        let mut clone = clone;
        clone.make_all_private();
        assert!(clone.peers_of(7).is_empty());
        assert_eq!(ns.peers_of(7), vec![MountId(2)]);
    }
}
