//! Pipes: the kernel buffer behind `pipe(2)` and the `splice(2)` fast path.
//!
//! CNTR uses pipes twice: the pseudo-TTY forwards shell I/O through them
//! (paper §3.2.4) and the splice-read optimization moves file data "from the
//! source file descriptor into a kernel pipe buffer and then to the
//! destination file descriptor" without copying through userspace (§3.3).

use cntr_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default pipe capacity (64 KiB, as on Linux).
pub const PIPE_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct PipeState {
    buf: VecDeque<u8>,
    read_closed: bool,
    write_closed: bool,
}

/// A unidirectional in-kernel byte buffer.
///
/// Non-blocking semantics only: the simulation has no blocked threads, so a
/// full pipe returns `EAGAIN` and an empty one returns `EAGAIN` until the
/// write side closes (then reads return 0 = EOF). Event loops poll readiness
/// through [`Pollable`].
#[derive(Debug)]
pub struct Pipe {
    capacity: usize,
    state: Mutex<PipeState>,
}

impl Pipe {
    /// Creates a pipe with the default capacity.
    pub fn new() -> Arc<Pipe> {
        Pipe::with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Arc<Pipe> {
        Arc::new(Pipe {
            capacity,
            state: Mutex::new_class(
                "kernel.pipe",
                PipeState {
                    buf: VecDeque::new(),
                    read_closed: false,
                    write_closed: false,
                },
            ),
        })
    }

    /// Writes as many bytes as fit; `EPIPE` if the read end is gone,
    /// `EAGAIN` if full.
    pub fn write(&self, data: &[u8]) -> SysResult<usize> {
        let mut st = self.state.lock();
        if st.read_closed {
            return Err(Errno::EPIPE);
        }
        // `unread` push-back can leave the buffer transiently over capacity.
        let room = self.capacity.saturating_sub(st.buf.len());
        if room == 0 {
            return Err(Errno::EAGAIN);
        }
        let n = room.min(data.len());
        st.buf.extend(&data[..n]);
        Ok(n)
    }

    /// Puts bytes back at the *front* of the buffer, undoing a read. This
    /// is the `splice` push-back path: when the destination accepts fewer
    /// bytes than were staged out of the source, the remainder returns
    /// here instead of being dropped. May leave the buffer transiently
    /// over capacity (only ever with bytes that were just drained from
    /// it), which `write` tolerates.
    pub fn unread(&self, data: &[u8]) {
        let mut st = self.state.lock();
        for &b in data.iter().rev() {
            st.buf.push_front(b);
        }
    }

    /// Reads up to `buf.len()` bytes; 0 means EOF (write end closed and
    /// drained), `EAGAIN` means nothing available yet.
    pub fn read(&self, buf: &mut [u8]) -> SysResult<usize> {
        let mut st = self.state.lock();
        if st.buf.is_empty() {
            return if st.write_closed {
                Ok(0)
            } else {
                Err(Errno::EAGAIN)
            };
        }
        let n = st.buf.len().min(buf.len());
        for (i, b) in st.buf.drain(..n).enumerate() {
            buf[i] = b;
        }
        Ok(n)
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// True if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free space.
    pub fn room(&self) -> usize {
        self.capacity.saturating_sub(self.len())
    }

    /// Nominal capacity (`F_GETPIPE_SZ`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the write end.
    pub fn close_write(&self) {
        self.state.lock().write_closed = true;
    }

    /// Closes the read end.
    pub fn close_read(&self) {
        self.state.lock().read_closed = true;
    }

    /// True once the write end is closed.
    pub fn write_closed(&self) -> bool {
        self.state.lock().write_closed
    }
}

/// Readiness interface used by [`crate::epoll`].
pub trait Pollable: Send + Sync {
    /// Data can be read (or EOF/peer-hangup is observable).
    fn poll_readable(&self) -> bool;
    /// A write of at least one byte would succeed.
    fn poll_writable(&self) -> bool;
    /// The other side is gone.
    fn poll_hangup(&self) -> bool;
}

impl Pollable for Pipe {
    fn poll_readable(&self) -> bool {
        let st = self.state.lock();
        !st.buf.is_empty() || st.write_closed
    }

    fn poll_writable(&self) -> bool {
        let st = self.state.lock();
        !st.read_closed && st.buf.len() < self.capacity
    }

    fn poll_hangup(&self) -> bool {
        let st = self.state.lock();
        st.read_closed || (st.write_closed && st.buf.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let p = Pipe::new();
        assert_eq!(p.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(p.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(p.read(&mut buf), Err(Errno::EAGAIN));
    }

    #[test]
    fn capacity_limits_writes() {
        let p = Pipe::with_capacity(4);
        assert_eq!(p.write(b"abcdef").unwrap(), 4);
        assert_eq!(p.write(b"x"), Err(Errno::EAGAIN));
        let mut buf = [0u8; 2];
        p.read(&mut buf).unwrap();
        assert_eq!(p.write(b"xy").unwrap(), 2);
    }

    #[test]
    fn eof_after_write_close() {
        let p = Pipe::new();
        p.write(b"last").unwrap();
        p.close_write();
        let mut buf = [0u8; 8];
        assert_eq!(p.read(&mut buf).unwrap(), 4);
        assert_eq!(p.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn epipe_after_read_close() {
        let p = Pipe::new();
        p.close_read();
        assert_eq!(p.write(b"x"), Err(Errno::EPIPE));
    }

    #[test]
    fn pollable_states() {
        let p = Pipe::with_capacity(2);
        assert!(!p.poll_readable());
        assert!(p.poll_writable());
        p.write(b"ab").unwrap();
        assert!(p.poll_readable());
        assert!(!p.poll_writable(), "full pipe is not writable");
        p.close_write();
        assert!(p.poll_readable(), "EOF counts as readable");
    }
}
