//! Namespaces: the isolation primitive containers are built from.
//!
//! Linux provides seven namespace kinds (paper §2.3). A process holds one
//! namespace of each kind; children inherit them on `fork`; `unshare`
//! replaces selected kinds with fresh namespaces; `setns` adopts another
//! process's namespace. Container engines compose these to build the
//! container abstraction, and CNTR re-enters them to attach.

use core::fmt;

/// A namespace identity (comparable across processes; what
/// `/proc/<pid>/ns/<kind>` exposes as an inode number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub u64);

impl fmt::Display for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ns:[{}]", self.0)
    }
}

/// The seven Linux namespace kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamespaceKind {
    /// Filesystem mount points (`CLONE_NEWNS`).
    Mount,
    /// Process id numbering (`CLONE_NEWPID`).
    Pid,
    /// User and group id mappings (`CLONE_NEWUSER`).
    User,
    /// Network devices and stacks (`CLONE_NEWNET`).
    Net,
    /// System V IPC / POSIX message queues (`CLONE_NEWIPC`).
    Ipc,
    /// Hostname and domain name (`CLONE_NEWUTS`).
    Uts,
    /// Cgroup root directory (`CLONE_NEWCGROUP`).
    Cgroup,
}

/// All seven kinds, in the order used for display.
pub const ALL_KINDS: [NamespaceKind; 7] = [
    NamespaceKind::Mount,
    NamespaceKind::Pid,
    NamespaceKind::User,
    NamespaceKind::Net,
    NamespaceKind::Ipc,
    NamespaceKind::Uts,
    NamespaceKind::Cgroup,
];

impl NamespaceKind {
    /// The name used in `/proc/<pid>/ns/`.
    pub const fn proc_name(self) -> &'static str {
        match self {
            NamespaceKind::Mount => "mnt",
            NamespaceKind::Pid => "pid",
            NamespaceKind::User => "user",
            NamespaceKind::Net => "net",
            NamespaceKind::Ipc => "ipc",
            NamespaceKind::Uts => "uts",
            NamespaceKind::Cgroup => "cgroup",
        }
    }
}

impl fmt::Display for NamespaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.proc_name())
    }
}

/// The namespaces a process belongs to — one id per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NamespaceSet {
    /// Mount namespace.
    pub mount: NamespaceId,
    /// Pid namespace.
    pub pid: NamespaceId,
    /// User namespace.
    pub user: NamespaceId,
    /// Network namespace.
    pub net: NamespaceId,
    /// IPC namespace.
    pub ipc: NamespaceId,
    /// UTS namespace.
    pub uts: NamespaceId,
    /// Cgroup namespace.
    pub cgroup: NamespaceId,
}

impl NamespaceSet {
    /// Creates a set with every kind equal to `id` (the initial namespaces).
    pub const fn uniform(id: NamespaceId) -> NamespaceSet {
        NamespaceSet {
            mount: id,
            pid: id,
            user: id,
            net: id,
            ipc: id,
            uts: id,
            cgroup: id,
        }
    }

    /// Gets the namespace of one kind.
    pub const fn get(&self, kind: NamespaceKind) -> NamespaceId {
        match kind {
            NamespaceKind::Mount => self.mount,
            NamespaceKind::Pid => self.pid,
            NamespaceKind::User => self.user,
            NamespaceKind::Net => self.net,
            NamespaceKind::Ipc => self.ipc,
            NamespaceKind::Uts => self.uts,
            NamespaceKind::Cgroup => self.cgroup,
        }
    }

    /// Sets the namespace of one kind.
    pub fn set(&mut self, kind: NamespaceKind, id: NamespaceId) {
        match kind {
            NamespaceKind::Mount => self.mount = id,
            NamespaceKind::Pid => self.pid = id,
            NamespaceKind::User => self.user = id,
            NamespaceKind::Net => self.net = id,
            NamespaceKind::Ipc => self.ipc = id,
            NamespaceKind::Uts => self.uts = id,
            NamespaceKind::Cgroup => self.cgroup = id,
        }
    }

    /// Kinds in which `self` and `other` differ — how "far apart" two
    /// processes are in isolation terms.
    pub fn diff(&self, other: &NamespaceSet) -> Vec<NamespaceKind> {
        ALL_KINDS
            .into_iter()
            .filter(|&k| self.get(k) != other.get(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_get_set() {
        let mut s = NamespaceSet::uniform(NamespaceId(1));
        assert_eq!(s.get(NamespaceKind::Mount), NamespaceId(1));
        s.set(NamespaceKind::Mount, NamespaceId(7));
        assert_eq!(s.get(NamespaceKind::Mount), NamespaceId(7));
        assert_eq!(s.get(NamespaceKind::Pid), NamespaceId(1));
    }

    #[test]
    fn diff_lists_changed_kinds() {
        let a = NamespaceSet::uniform(NamespaceId(1));
        let mut b = a;
        assert!(a.diff(&b).is_empty());
        b.set(NamespaceKind::Net, NamespaceId(2));
        b.set(NamespaceKind::Uts, NamespaceId(3));
        assert_eq!(a.diff(&b), vec![NamespaceKind::Net, NamespaceKind::Uts]);
    }

    #[test]
    fn proc_names_match_linux() {
        assert_eq!(NamespaceKind::Mount.proc_name(), "mnt");
        assert_eq!(NamespaceKind::Pid.proc_name(), "pid");
        assert_eq!(NamespaceId(42).to_string(), "ns:[42]");
    }
}
