//! `/dev` population helpers.
//!
//! CNTR bind-mounts the application container's `devtmpfs` (`/dev`) into the
//! nested namespace, "containing block and character devices that have been
//! made visible to our container" (paper §3.2.3). The engine substrate uses
//! [`populate_dev`] to give each container rootfs a realistic `/dev`.

use crate::kernel::Kernel;
use crate::mount::{CacheMode, MountFlags};
use cntr_fs::Filesystem;
use cntr_fs::{memfs::memfs, MemFs};
use cntr_types::{DevId, FileType, Mode, Pid, SimClock, SysResult};
use std::sync::Arc;

/// Device numbers (major << 8 | minor), matching Linux.
pub mod nodes {
    /// `/dev/null` (1:3).
    pub const NULL: u64 = 0x0103;
    /// `/dev/zero` (1:5).
    pub const ZERO: u64 = 0x0105;
    /// `/dev/urandom` (1:9).
    pub const URANDOM: u64 = 0x0109;
    /// `/dev/tty` (5:0).
    pub const TTY: u64 = 0x0500;
    /// `/dev/fuse` (10:229).
    pub const FUSE: u64 = 0x0AE5;
}

/// Creates the standard device nodes under `dir` (usually `/dev`) on behalf
/// of `pid`.
pub fn populate_dev(kernel: &Kernel, pid: Pid, dir: &str) -> SysResult<()> {
    let mode = Mode::new(0o666);
    for (name, rdev) in [
        ("null", nodes::NULL),
        ("zero", nodes::ZERO),
        ("urandom", nodes::URANDOM),
        ("tty", nodes::TTY),
        ("fuse", nodes::FUSE),
    ] {
        kernel.mknod(
            pid,
            &format!("{dir}/{name}"),
            FileType::CharDevice,
            mode,
            rdev,
        )?;
    }
    kernel.mkdir(pid, &format!("{dir}/pts"), Mode::RWXR_XR_X)?;
    kernel.mkdir(pid, &format!("{dir}/shm"), Mode::new(0o1777))?;
    Ok(())
}

/// Builds a standalone devtmpfs-like filesystem (used as a mountable `/dev`).
pub fn new_devfs(dev_id: DevId, clock: SimClock) -> Arc<MemFs> {
    let fs = memfs(dev_id, clock);
    let ctx = cntr_fs::FsContext::root();
    let mode = Mode::new(0o666);
    for (name, rdev) in [
        ("null", nodes::NULL),
        ("zero", nodes::ZERO),
        ("urandom", nodes::URANDOM),
        ("tty", nodes::TTY),
        ("fuse", nodes::FUSE),
    ] {
        fs.mknod(
            cntr_types::Ino::ROOT,
            name,
            FileType::CharDevice,
            mode,
            rdev,
            &ctx,
        )
        .expect("fresh fs cannot collide");
    }
    fs.mkdir(cntr_types::Ino::ROOT, "pts", Mode::RWXR_XR_X, &ctx)
        .expect("fresh fs");
    fs.mkdir(cntr_types::Ino::ROOT, "shm", Mode::new(0o1777), &ctx)
        .expect("fresh fs");
    fs
}

/// Mounts a fresh devtmpfs at `path`.
pub fn mount_devfs(kernel: &Kernel, pid: Pid, path: &str, dev_id: DevId) -> SysResult<()> {
    let fs = new_devfs(dev_id, kernel.clock().clone());
    kernel.mount_fs(pid, path, fs, CacheMode::native(), MountFlags::default())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use cntr_types::{OpenFlags, Pid};

    #[test]
    fn populated_dev_nodes_behave() {
        let clock = SimClock::new();
        let root = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, root, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/dev", Mode::RWXR_XR_X).unwrap();
        populate_dev(&k, Pid::INIT, "/dev").unwrap();
        let fd = k
            .open(
                Pid::INIT,
                "/dev/urandom",
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut a = [0u8; 16];
        k.read_fd(Pid::INIT, fd, &mut a).unwrap();
        assert!(a.iter().any(|&b| b != 0), "urandom produces bytes");
        k.close(Pid::INIT, fd).unwrap();
        assert!(k.stat(Pid::INIT, "/dev/pts").unwrap().is_dir());
        assert_eq!(k.stat(Pid::INIT, "/dev/fuse").unwrap().rdev, nodes::FUSE);
    }

    #[test]
    fn mountable_devfs() {
        let clock = SimClock::new();
        let root = memfs(DevId(1), clock.clone());
        let k = Kernel::with_clock(clock, root, CacheMode::native(), KernelConfig::default());
        k.mkdir(Pid::INIT, "/dev", Mode::RWXR_XR_X).unwrap();
        mount_devfs(&k, Pid::INIT, "/dev", DevId(100)).unwrap();
        assert_eq!(k.stat(Pid::INIT, "/dev/null").unwrap().dev, DevId(100));
    }
}
