//! `epoll`: readiness notification for event loops.
//!
//! CNTR's socket proxy "runs an efficient event loop based on epoll"
//! (paper §3.2.4). The simulation's epoll polls [`Pollable`] sources; since
//! virtual time never blocks, `wait` returns the currently-ready set.

use crate::pipe::Pollable;
use cntr_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Event interest / readiness bits (subset of `EPOLLIN`/`EPOLLOUT`/...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Events {
    /// Readable (`EPOLLIN`).
    pub readable: bool,
    /// Writable (`EPOLLOUT`).
    pub writable: bool,
    /// Peer hangup (`EPOLLHUP`; always reported, as in Linux).
    pub hangup: bool,
}

impl Events {
    /// Interest in readability only.
    pub const IN: Events = Events {
        readable: true,
        writable: false,
        hangup: false,
    };

    /// Interest in writability only.
    pub const OUT: Events = Events {
        readable: false,
        writable: true,
        hangup: false,
    };

    /// Interest in both directions.
    pub const INOUT: Events = Events {
        readable: true,
        writable: true,
        hangup: false,
    };

    /// True if any bit is set.
    pub fn any(self) -> bool {
        self.readable || self.writable || self.hangup
    }
}

struct Watch {
    source: Arc<dyn Pollable>,
    interest: Events,
}

/// An epoll instance.
///
/// Wait-queue semantics: the ready set is served like Linux's `rdllist`
/// under a `maxevents` budget — [`Epoll::wait_budget`] starts each sweep
/// just past the last token it served, so a hot low-numbered endpoint
/// cannot starve higher tokens when more sources are ready than the
/// caller's per-wait budget.
pub struct Epoll {
    watches: Mutex<HashMap<u64, Watch>>,
    /// Rotation cursor of the budgeted wait: the token after which the
    /// next sweep starts (wrapping). Relaxed is fine — it only steers
    /// fairness, never correctness.
    cursor: AtomicU64,
}

impl Default for Epoll {
    fn default() -> Epoll {
        Epoll {
            watches: Mutex::new_class("kernel.epoll.watches", HashMap::new()),
            cursor: AtomicU64::new(0),
        }
    }
}

impl Epoll {
    /// Creates an empty instance (`epoll_create1`).
    pub fn new() -> Arc<Epoll> {
        Arc::new(Epoll::default())
    }

    /// Registers a source under `token` (`EPOLL_CTL_ADD`).
    pub fn add(&self, token: u64, source: Arc<dyn Pollable>, interest: Events) -> SysResult<()> {
        let mut w = self.watches.lock();
        if w.contains_key(&token) {
            return Err(Errno::EEXIST);
        }
        w.insert(token, Watch { source, interest });
        Ok(())
    }

    /// Changes interest (`EPOLL_CTL_MOD`).
    pub fn modify(&self, token: u64, interest: Events) -> SysResult<()> {
        self.watches
            .lock()
            .get_mut(&token)
            .map(|w| w.interest = interest)
            .ok_or(Errno::ENOENT)
    }

    /// Unregisters (`EPOLL_CTL_DEL`).
    pub fn remove(&self, token: u64) -> SysResult<()> {
        self.watches
            .lock()
            .remove(&token)
            .map(|_| ())
            .ok_or(Errno::ENOENT)
    }

    /// Returns the tokens whose sources are ready, with their readiness.
    /// Hangup is reported regardless of interest, as in Linux.
    pub fn wait(&self) -> Vec<(u64, Events)> {
        let w = self.watches.lock();
        let mut ready: Vec<(u64, Events)> = w
            .iter()
            .filter_map(|(&token, watch)| {
                let ev = Events {
                    readable: watch.interest.readable && watch.source.poll_readable(),
                    writable: watch.interest.writable && watch.source.poll_writable(),
                    hangup: watch.source.poll_hangup(),
                };
                ev.any().then_some((token, ev))
            })
            .collect();
        ready.sort_unstable_by_key(|(t, _)| *t);
        ready
    }

    /// Budgeted wait (`epoll_wait` with `maxevents`): returns at most
    /// `max` ready events, serving the ready set round-robin across calls.
    /// The sweep starts just past the last token served by the previous
    /// budgeted wait and wraps, so every ready endpoint is reached within
    /// `ceil(ready / max)` sweeps no matter how hot its neighbours are.
    pub fn wait_budget(&self, max: usize) -> Vec<(u64, Events)> {
        let mut ready = self.wait();
        if ready.is_empty() || max == 0 {
            return Vec::new();
        }
        let cursor = self.cursor.load(Ordering::Relaxed);
        // First ready token strictly past the cursor (wrapping rotation).
        let start = ready.partition_point(|&(t, _)| t <= cursor) % ready.len();
        ready.rotate_left(start);
        ready.truncate(max);
        let last = ready.last().expect("non-empty checked").0;
        self.cursor.store(last, Ordering::Relaxed);
        ready
    }

    /// Number of registered watches.
    pub fn len(&self) -> usize {
        self.watches.lock().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::Pipe;

    #[test]
    fn reports_readable_pipes() {
        let ep = Epoll::new();
        let p1 = Pipe::new();
        let p2 = Pipe::new();
        ep.add(1, p1.clone(), Events::IN).unwrap();
        ep.add(2, p2.clone(), Events::IN).unwrap();
        assert!(ep.wait().is_empty());
        p2.write(b"data").unwrap();
        let ready = ep.wait();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 2);
        assert!(ready[0].1.readable);
    }

    #[test]
    fn interest_filtering() {
        let ep = Epoll::new();
        let p = Pipe::new();
        p.write(b"x").unwrap();
        ep.add(7, p.clone(), Events::OUT).unwrap();
        // Readable but we only asked for OUT: reported as writable only.
        let ready = ep.wait();
        assert_eq!(ready.len(), 1);
        assert!(!ready[0].1.readable);
        assert!(ready[0].1.writable);
        ep.modify(7, Events::INOUT).unwrap();
        assert!(ep.wait()[0].1.readable);
    }

    #[test]
    fn hangup_reported_without_interest() {
        let ep = Epoll::new();
        let p = Pipe::new();
        ep.add(1, p.clone(), Events::IN).unwrap();
        p.close_write();
        let ready = ep.wait();
        assert!(ready[0].1.hangup || ready[0].1.readable);
    }

    #[test]
    fn budgeted_wait_rotates_fairly() {
        let ep = Epoll::new();
        let pipes: Vec<_> = (0..4).map(|_| Pipe::new()).collect();
        for (i, p) in pipes.iter().enumerate() {
            p.write(b"x").unwrap();
            ep.add(i as u64, p.clone(), Events::IN).unwrap();
        }
        // Budget of 2 over 4 ready tokens: two sweeps cover everything,
        // and the second sweep starts where the first stopped.
        let first: Vec<u64> = ep.wait_budget(2).iter().map(|(t, _)| *t).collect();
        let second: Vec<u64> = ep.wait_budget(2).iter().map(|(t, _)| *t).collect();
        let mut all = [first, second].concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "every ready token served");
        // A third sweep wraps around rather than stalling.
        assert_eq!(ep.wait_budget(4).len(), 4);
    }

    #[test]
    fn add_remove_errors() {
        let ep = Epoll::new();
        let p = Pipe::new();
        ep.add(1, p.clone(), Events::IN).unwrap();
        assert_eq!(ep.add(1, p.clone(), Events::IN), Err(Errno::EEXIST));
        ep.remove(1).unwrap();
        assert_eq!(ep.remove(1), Err(Errno::ENOENT));
        assert!(ep.is_empty());
    }
}
