//! The kernel object: global tables and process-level system calls.
//!
//! File and mount-table system calls (anything that resolves a path) live in
//! [`crate::vfs`]; this module owns process lifecycle, namespaces,
//! credentials, cgroups, pipes, sockets, epoll and `splice`.

use crate::cgroup::{CgroupLimits, CgroupPath, CgroupTree};
use crate::cred::Credentials;
use crate::epoll::{Epoll, Events};
use crate::mount::{CacheMode, MountId, MountNs};
use crate::ns::{NamespaceId, NamespaceKind, NamespaceSet};
use crate::pagecache::{PageCache, PageCacheStats};
use crate::pipe::Pipe;
use crate::process::{FdEntry, FileKind, OpenFile, Process, ProcessState, VfsLoc};
use crate::socket::{SocketEnd, SocketListener};
use crate::table::{lock_class, MountTable, NsRefs, ProcTable, DEFAULT_PROC_SHARDS};
use cntr_fs::Filesystem;
use cntr_types::{
    Capability, CostModel, DevId, Errno, Ino, OpenFlags, Pid, RlimitSet, SimClock, SysResult,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables of a simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Primitive cost model.
    pub cost: CostModel,
    /// Page-cache ceiling in bytes — the memory budget reclaim enforces.
    /// Defaults to 256 MiB: a density-oriented bound (many slim containers
    /// per host), not the paper testbed's whole RAM.
    /// [`KernelConfig::paper_legacy`] restores the published 12 GiB
    /// profile.
    pub page_cache_limit: u64,
    /// Hard dirty threshold as a percentage of `page_cache_limit`
    /// (`vm.dirty_ratio`). A writer crossing it is throttled into
    /// foreground write-back.
    pub dirty_ratio: u32,
    /// Background write-back threshold as a percentage of
    /// `page_cache_limit` (`vm.dirty_background_ratio`). Crossing it wakes
    /// the flusher; both background and inline write-back drain down to
    /// it.
    pub dirty_background_ratio: u32,
    /// Absolute hard dirty threshold in bytes (`vm.dirty_bytes`);
    /// overrides `dirty_ratio` when nonzero.
    pub dirty_bytes: u64,
    /// Absolute background threshold in bytes
    /// (`vm.dirty_background_bytes`); overrides `dirty_background_ratio`
    /// when nonzero.
    pub dirty_background_bytes: u64,
    /// Whether a kworker-style flusher thread drains dirty data in the
    /// background. Off, writers drain inline at the thresholds —
    /// deterministic, used by the paper profile and the differential
    /// oracle.
    pub background_writeback: bool,
    /// Whether write-back coalesces contiguous dirty runs into single
    /// large writes (on by default; the differential I/O tests and the
    /// flush benches run both settings).
    pub coalesce_writeback: bool,
    /// Process-table shards (rounded up to a power of two). More shards
    /// let syscalls against unrelated pids run concurrently; `1` recreates
    /// the old giant-lock behaviour for comparison benchmarks.
    pub proc_shards: usize,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            cost: CostModel::calibrated(),
            page_cache_limit: 256 << 20,
            dirty_ratio: 20,
            dirty_background_ratio: 10,
            dirty_bytes: 0,
            dirty_background_bytes: 0,
            background_writeback: true,
            coalesce_writeback: true,
            proc_shards: DEFAULT_PROC_SHARDS,
        }
    }
}

impl KernelConfig {
    /// The configuration the paper's numbers were measured under: the
    /// testbed's 12 GiB cache (16 GB RAM minus anonymous memory), the
    /// pre-reclaim 64 MiB hard / 32 MiB background dirty thresholds, and
    /// no flusher thread — every flush happens inline at a deterministic
    /// point, so the Phoronix figure bands reproduce byte-exactly.
    pub fn paper_legacy() -> KernelConfig {
        KernelConfig {
            page_cache_limit: 12 << 30,
            dirty_bytes: 64 << 20,
            dirty_background_bytes: 32 << 20,
            background_writeback: false,
            ..KernelConfig::default()
        }
    }

    /// The hard dirty threshold in bytes this config resolves to
    /// (`dirty_bytes` if set, else `dirty_ratio` of the cache limit).
    pub fn resolved_dirty_bytes(&self) -> u64 {
        if self.dirty_bytes != 0 {
            self.dirty_bytes
        } else {
            self.page_cache_limit / 100 * self.dirty_ratio.min(100) as u64
        }
    }

    /// The background threshold in bytes this config resolves to, clamped
    /// below the hard threshold.
    pub fn resolved_dirty_background_bytes(&self) -> u64 {
        let bg = if self.dirty_background_bytes != 0 {
            self.dirty_background_bytes
        } else {
            self.page_cache_limit / 100 * self.dirty_background_ratio.min(100) as u64
        };
        bg.min(self.resolved_dirty_bytes()).max(1)
    }
}

/// One recorded file access (fanotify `FAN_OPEN`/`FAN_OPEN_EXEC`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanotifyEvent {
    /// Filesystem the file lives on.
    pub dev: DevId,
    /// Inode accessed.
    pub ino: Ino,
    /// Path as resolved by the accessing process.
    pub path: String,
}

/// A Unix socket listener bound to a filesystem inode, tagged with the
/// mount namespace it was bound in so namespace GC can drop it — a dead
/// container's listener must not keep accepting connections.
pub(crate) struct BoundSocket {
    /// Mount namespace of the binding process.
    pub mnt_ns: NamespaceId,
    /// The listener backlog.
    pub listener: Arc<SocketListener>,
}

/// The kernel's shared state, decomposed into independently locked
/// subsystems (see [`crate::table`] for the lock-ordering discipline).
pub(crate) struct KernelInner {
    pub clock: SimClock,
    pub cost: CostModel,
    pub page_cache: PageCache,
    /// The pid-sharded process table.
    pub procs: ProcTable,
    /// Per-namespace mount tables.
    pub mounts: MountTable,
    /// Per-namespace process refcounts — drives namespace GC (see
    /// [`crate::table`] for the refcount rules).
    pub ns_refs: NsRefs,
    /// Namespace-id allocator (all seven kinds share the number space).
    pub next_ns: AtomicU64,
    /// The cgroup hierarchy.
    pub cgroups: Mutex<CgroupTree>,
    /// UTS-namespace hostnames.
    pub hostnames: RwLock<HashMap<NamespaceId, String>>,
    /// Listening Unix sockets, keyed by the socket inode they are bound to
    /// and removed on unlink, last listener-fd close, or mount-namespace GC.
    pub socket_nodes: Mutex<HashMap<(DevId, Ino), BoundSocket>>,
    /// fanotify-style access recording (Docker Slim's mechanism), scoped
    /// by mount namespace: when a namespace's recorder is armed,
    /// successful opens/execs from processes *in that namespace* append
    /// events to its slot — two concurrent `cntr-slim` analyses never
    /// interleave each other's events.
    pub fanotify: Mutex<HashMap<NamespaceId, Vec<FanotifyEvent>>>,
}

/// A handle to the simulated machine. Cloning is cheap; all clones share
/// state.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) inner: Arc<KernelInner>,
}

/// Everything CNTR gathers about a process before attaching (paper §3.2.1):
/// namespaces, cgroup, credentials (capabilities, LSM profile), environment.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    /// Process id.
    pub pid: Pid,
    /// Parent pid.
    pub ppid: Pid,
    /// Command name.
    pub name: String,
    /// Security context (uid/gid/caps/LSM profile).
    pub creds: Credentials,
    /// Namespace membership.
    pub ns: NamespaceSet,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Cgroup path.
    pub cgroup: CgroupPath,
    /// Root location (for diagnostics).
    pub root: VfsLoc,
    /// Lifecycle state.
    pub state: ProcessState,
}

impl Kernel {
    /// Boots a machine: namespace 1, mount 1 on `root_fs`, and `init`
    /// (pid 1, host root credentials).
    pub fn new(root_fs: Arc<dyn Filesystem>, cache: CacheMode, config: KernelConfig) -> Kernel {
        Kernel::with_clock(SimClock::new(), root_fs, cache, config)
    }

    /// Boots a machine on an existing clock (so filesystems created earlier
    /// share it).
    pub fn with_clock(
        clock: SimClock,
        root_fs: Arc<dyn Filesystem>,
        cache: CacheMode,
        config: KernelConfig,
    ) -> Kernel {
        let ns_id = NamespaceId(1);
        let mount_id = MountId(1);
        let root_ns = MountNs::new(ns_id, mount_id, root_fs, cache);
        let init = Process {
            pid: Pid::INIT,
            ppid: Pid(0),
            name: "init".to_string(),
            creds: Credentials::host_root(),
            ns: NamespaceSet::uniform(ns_id),
            cwd: VfsLoc {
                mount: mount_id,
                ino: Ino::ROOT,
            },
            cwd_path: "/".to_string(),
            root: VfsLoc {
                mount: mount_id,
                ino: Ino::ROOT,
            },
            env: BTreeMap::new(),
            rlimits: RlimitSet::default(),
            fds: HashMap::new(),
            next_fd: 0,
            cgroup: CgroupPath::root(),
            state: ProcessState::Running,
        };
        let mut cgroups = CgroupTree::new();
        cgroups
            .attach(Pid::INIT, &CgroupPath::root())
            .expect("root cgroup exists");
        let mut hostnames = HashMap::new();
        hostnames.insert(ns_id, "host".to_string());
        let init_ns = init.ns;
        Kernel {
            inner: Arc::new(KernelInner {
                page_cache: PageCache::new(
                    clock.clone(),
                    config.cost,
                    config.page_cache_limit,
                    config.resolved_dirty_bytes(),
                )
                .with_coalesce(config.coalesce_writeback)
                .with_dirty_background_bytes(config.resolved_dirty_background_bytes())
                .with_background_writeback(config.background_writeback),
                clock,
                cost: config.cost,
                procs: ProcTable::new(config.proc_shards, init),
                mounts: MountTable::new(root_ns),
                ns_refs: NsRefs::new(&init_ns),
                next_ns: AtomicU64::new(2),
                cgroups: Mutex::new_class(lock_class::CGROUPS, cgroups),
                hostnames: RwLock::new_class(lock_class::HOSTNAMES, hostnames),
                socket_nodes: Mutex::new_class(lock_class::SOCKET_NODES, HashMap::new()),
                fanotify: Mutex::new_class(lock_class::FANOTIFY, HashMap::new()),
            }),
        }
    }

    /// Number of process-table shards this machine was booted with.
    pub fn proc_shard_count(&self) -> usize {
        self.inner.procs.shard_count()
    }

    /// The machine's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.inner.cost
    }

    /// Page-cache counters.
    pub fn page_cache_stats(&self) -> PageCacheStats {
        self.inner.page_cache.stats()
    }

    /// Bytes of dirty data pending writeback.
    pub fn dirty_bytes(&self) -> u64 {
        self.inner.page_cache.dirty_bytes()
    }

    /// Resident page-cache pages (the number reclaim bounds).
    pub fn page_cache_resident_pages(&self) -> usize {
        self.inner.page_cache.resident_pages()
    }

    /// The page-cache ceiling in pages.
    pub fn page_cache_capacity_pages(&self) -> usize {
        self.inner.page_cache.capacity_pages()
    }

    /// Pages on the (active, inactive) LRU lists.
    pub fn page_cache_residency(&self) -> (usize, usize) {
        self.inner.page_cache.residency()
    }

    /// `sync(2)`: flushes all dirty pages.
    pub fn sync(&self) -> cntr_types::SysResult<()> {
        self.inner.page_cache.sync_all()
    }

    /// `echo 3 > /proc/sys/vm/drop_caches`: flushes and drops the page
    /// cache — used between benchmark phases to measure cold-cache paths.
    pub fn drop_caches(&self) -> cntr_types::SysResult<()> {
        self.inner.page_cache.drop_clean()
    }

    /// Drops one filesystem's cached pages only.
    pub fn drop_caches_for(&self, dev: DevId) -> cntr_types::SysResult<()> {
        self.inner.page_cache.drop_dev(dev)
    }

    /// Charges one syscall entry/exit.
    pub(crate) fn charge_syscall(&self) {
        self.inner.clock.advance(self.inner.cost.syscall_ns);
    }

    pub(crate) fn with_proc<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&Process) -> SysResult<T>,
    ) -> SysResult<T> {
        self.inner.procs.with(pid, f)
    }

    pub(crate) fn with_proc_mut<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&mut Process) -> SysResult<T>,
    ) -> SysResult<T> {
        self.inner.procs.with_mut(pid, f)
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// `fork(2)`: duplicates `parent`, returning the child pid.
    ///
    /// Both shards (parent's and child's) are held together while the child
    /// is inserted, so a concurrent `/proc` snapshot sees either the
    /// pre-fork or post-fork world — never a child without its parent.
    /// The child's namespace references are retained under the same shard
    /// hold (the `NsRefs` leaf lock), so a concurrent `reap` can never see
    /// the child in the table without its references counted.
    pub fn fork(&self, parent: Pid) -> SysResult<Pid> {
        self.charge_syscall();
        let child_pid = self.inner.procs.alloc_pid();
        let cgroup = {
            let mut pair = self.inner.procs.lock_pair(parent, child_pid);
            let parent_proc = pair.get(parent).ok_or(Errno::ESRCH)?;
            if parent_proc.state != ProcessState::Running {
                return Err(Errno::ESRCH);
            }
            let child = parent_proc.fork_into(child_pid);
            let cgroup = child.cgroup.clone();
            let child_ns = child.ns;
            pair.insert(child);
            self.inner.ns_refs.retain_set(&child_ns);
            cgroup
        };
        // Processes-before-cgroups: the shard locks are released before the
        // cgroup tree is touched. Roll the insert back if attach fails —
        // dropping the removed process (and its cloned fd table, which can
        // release FUSE handles that re-enter the kernel) outside the shard
        // lock, as `exit`/`reap` do. The attach result is bound first: an
        // `if let` scrutinee's temporaries live to the end of the block in
        // edition 2021, and the rollback below must not run under the
        // cgroups guard (it re-locks a process shard — reverse rank order).
        let attached = self.inner.cgroups.lock().attach(child_pid, &cgroup);
        if let Err(e) = attached {
            let (removed, dead) = {
                let mut shard = self.inner.procs.lock_shard_of(child_pid);
                let removed = shard.remove(&child_pid);
                // Release only if the rollback is the one removing the
                // child, and release the set the child holds *now* — the
                // pid is visible the moment the pair lock drops, so a
                // concurrent exit+reap may already have released its
                // references (removed == None), and a concurrent
                // unshare/setns may have moved them off the fork-time
                // snapshot.
                let dead = match &removed {
                    Some(p) => self.inner.ns_refs.release_set(&p.ns),
                    None => Vec::new(),
                };
                (removed, dead)
            };
            for d in dead {
                self.gc_namespace(d);
            }
            drop(removed);
            return Err(e);
        }
        // The attach can also race a concurrent exit+reap of the child
        // (its pid is already visible): exit's cgroup detach may have run
        // *before* the attach above, which would re-member a dead pid
        // forever. Re-check: if the child is no longer Running, its exit
        // has begun (or finished) and the detach below is either what exit
        // would do or an idempotent repeat of it; if it is still Running,
        // any later exit performs the detach itself.
        let running = self
            .inner
            .procs
            .with(child_pid, |p| Ok(p.state == ProcessState::Running))
            .unwrap_or(false);
        if !running {
            self.inner.cgroups.lock().detach_everywhere(child_pid);
        }
        Ok(child_pid)
    }

    /// Terminates a process, closing its descriptors. Its namespaces stay
    /// referenced (and observable via `/proc`) until the zombie is reaped.
    pub fn exit(&self, pid: Pid) -> SysResult<()> {
        self.charge_syscall();
        // Dropping fd entries can release FUSE file handles, which re-enters
        // the kernel through the server — so the drops must happen outside
        // the shard lock.
        let fds = self.inner.procs.with_mut(pid, |p| {
            p.state = ProcessState::Zombie;
            Ok(std::mem::take(&mut p.fds))
        })?;
        self.inner.cgroups.lock().detach_everywhere(pid);
        for (_, entry) in fds {
            self.release_fd_entry(entry);
        }
        Ok(())
    }

    /// Reaps a zombie, removing it from the table and releasing its
    /// namespace references — the last process of a container reaching
    /// here tears the container's namespaces down (mount table, hostname,
    /// bound sockets, fanotify recorder).
    ///
    /// Divergence from Linux: `waitpid(2)` on a still-running child
    /// *blocks* (or returns 0 with `WNOHANG`); this simulation has no
    /// blocking waits, so a running target reports `ECHILD` — "nothing
    /// waitable" — rather than the old, wrong `EBUSY`.
    pub fn reap(&self, pid: Pid) -> SysResult<()> {
        // As in `exit`, the process (and anything it still references) must
        // be dropped outside the shard lock; likewise the backing state of
        // any namespace that died with it.
        let (reaped, dead) = {
            let mut shard = self.inner.procs.lock_shard_of(pid);
            match shard.get(&pid) {
                Some(p) if p.state == ProcessState::Zombie => {
                    let ns = p.ns;
                    let reaped = shard.remove(&pid);
                    (reaped, self.inner.ns_refs.release_set(&ns))
                }
                Some(_) => return Err(Errno::ECHILD),
                None => return Err(Errno::ESRCH),
            }
        };
        for d in dead {
            self.gc_namespace(d);
        }
        drop(reaped);
        Ok(())
    }

    /// Releases one fd-table entry outside any shard lock.
    ///
    /// The close-time side effects themselves (pipe half-close, listener
    /// shutdown) live in `OpenFile::drop`, which runs exactly once at the
    /// true last drop — even when a transient clone (`splice`, `get_file`)
    /// briefly outlives the final descriptor. This eager pass only
    /// deregisters a listener from `socket_nodes` when the closing
    /// descriptor *is* the last reference (`Arc::into_inner` is the
    /// exactly-once gate); in the rare transient-clone race the entry
    /// lingers already-closed — `connect` is refused via the listener's
    /// closed flag — until unlink or namespace GC sweeps it.
    pub(crate) fn release_fd_entry(&self, entry: crate::process::FdEntry) {
        if let Some(file) = Arc::into_inner(entry.file) {
            if let FileKind::Listener(l) = &file.kind {
                self.unbind_listener(l);
            }
        }
    }

    /// Unbinds a listener wherever it is registered (last fd close). The
    /// socket *file* stays on disk — as in Linux, where the inode outlives
    /// the listening socket — but `connect(2)` on it now gets
    /// `ECONNREFUSED`.
    fn unbind_listener(&self, listener: &Arc<SocketListener>) {
        self.unbind_sockets_where(|bound| Arc::ptr_eq(&bound.listener, listener));
    }

    /// Closes and deregisters every bound socket matching `pred` — the one
    /// scan behind last-fd-close, unlink, and namespace-death unbinding.
    pub(crate) fn unbind_sockets_where(&self, pred: impl Fn(&BoundSocket) -> bool) {
        self.inner.socket_nodes.lock().retain(|_, bound| {
            if pred(bound) {
                bound.listener.close();
                false
            } else {
                true
            }
        });
    }

    /// Reclaims the backing state of one dead namespace — the single GC
    /// path shared by `reap`, reference moves (`unshare`/`setns` draining
    /// a namespace) and the `unshare` failure path. Runs strictly outside
    /// the process-shard and `NsRefs` locks; the mount table removed from
    /// the registry (and the filesystem `Arc`s it pins) drops here,
    /// outside any kernel lock.
    fn gc_namespace(&self, dead: (NamespaceKind, NamespaceId)) {
        let (kind, id) = dead;
        match kind {
            NamespaceKind::Mount => {
                let removed = self.inner.mounts.remove(id);
                // Listeners bound inside the dead namespace stop accepting.
                self.unbind_sockets_where(|bound| bound.mnt_ns == id);
                self.inner.fanotify.lock().remove(&id);
                if let Some(table) = removed {
                    // Filesystems mounted *only* in the dead namespace lose
                    // their last mount: flush and drop their page-cache
                    // state, or cached pages would squat in the LRU and a
                    // dirty file's writeback reference would keep the
                    // "freed" filesystem alive indefinitely. Shared devs
                    // (the host root, bind sources, `/proc`) stay warm.
                    //
                    // Liveness is decided by scanning the surviving
                    // namespaces — O(namespaces × mounts) of read locks,
                    // paid only on namespace death (container exit), never
                    // on a syscall path. A cross-namespace per-dev mount
                    // refcount would make this O(1) but would have to be
                    // threaded through every mount/umount/clone site; not
                    // worth it until teardown shows up in a profile.
                    let dead_devs: Vec<DevId> = table.read().iter().map(|m| m.fs.fs_id()).collect();
                    let mut live_devs: HashSet<DevId> = HashSet::new();
                    for other in self.inner.mounts.ids() {
                        let _ = self.inner.mounts.with_read(other, |ns| {
                            live_devs.extend(ns.iter().map(|m| m.fs.fs_id()));
                            Ok(())
                        });
                    }
                    let orphaned: Vec<DevId> = dead_devs
                        .into_iter()
                        .filter(|d| !live_devs.contains(d))
                        .collect();
                    let _ = self.inner.page_cache.drop_devs(&orphaned);
                    drop(table);
                }
            }
            NamespaceKind::Uts => {
                self.inner.hostnames.write().remove(&id);
            }
            // Pid/user/net/ipc/cgroup namespaces carry no kernel-side
            // backing state in this model; their refcount entry (already
            // removed) was the bookkeeping.
            _ => {}
        }
    }

    /// True if the process exists and is running.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.inner
            .procs
            .with(pid, |p| Ok(p.state == ProcessState::Running))
            .unwrap_or(false)
    }

    /// All live pids (ordered).
    pub fn pids(&self) -> Vec<Pid> {
        self.inner.procs.pids()
    }

    /// The full context CNTR needs before attaching. All fields come from
    /// one shard acquisition — a consistent per-process snapshot.
    pub fn proc_info(&self, pid: Pid) -> SysResult<ProcInfo> {
        self.inner.procs.with(pid, |p| {
            Ok(ProcInfo {
                pid: p.pid,
                ppid: p.ppid,
                name: p.name.clone(),
                creds: p.creds.clone(),
                ns: p.ns,
                env: p.env.clone(),
                cgroup: p.cgroup.clone(),
                root: p.root,
                state: p.state,
            })
        })
    }

    /// Sets the command name.
    pub fn set_name(&self, pid: Pid, name: &str) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.name = name.to_string();
            Ok(())
        })
    }

    /// Sets an environment variable.
    pub fn setenv(&self, pid: Pid, key: &str, value: &str) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.env.insert(key.to_string(), value.to_string());
            Ok(())
        })
    }

    /// Reads an environment variable.
    pub fn getenv(&self, pid: Pid, key: &str) -> SysResult<Option<String>> {
        self.with_proc(pid, |p| Ok(p.env.get(key).cloned()))
    }

    /// Replaces the whole environment (what CNTR does in step #3: "applies
    /// all the environment variables that were read from the container
    /// process; with the exception of PATH").
    pub fn set_environ(&self, pid: Pid, env: BTreeMap<String, String>) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.env = env;
            Ok(())
        })
    }

    /// Replaces the credentials (privileged; used by the engine substrate
    /// when it builds containers, and by CNTR when dropping privileges).
    pub fn set_creds(&self, pid: Pid, creds: Credentials) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.creds = creds;
            Ok(())
        })
    }

    /// Reads the credentials.
    pub fn creds(&self, pid: Pid) -> SysResult<Credentials> {
        self.with_proc(pid, |p| Ok(p.creds.clone()))
    }

    /// The canonical current-working-directory path (what `pwd` prints).
    pub fn cwd_path(&self, pid: Pid) -> SysResult<String> {
        self.with_proc(pid, |p| Ok(p.cwd_path.clone()))
    }

    /// Arms fanotify-style access recording (Docker Slim's mechanism:
    /// "records all files that have been accessed during a container run in
    /// an efficient way using the fanotify kernel module", paper §5.3)
    /// **for `pid`'s mount namespace**: only accesses made by processes in
    /// that namespace are recorded, so two concurrent analyses of
    /// different containers never interleave each other's events. The
    /// recorder is disarmed automatically if the namespace is
    /// garbage-collected.
    pub fn fanotify_start(&self, pid: Pid) -> SysResult<()> {
        let mnt = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.fanotify.lock().insert(mnt, Vec::new());
        Ok(())
    }

    /// Drains events recorded in `pid`'s mount namespace, keeping the
    /// recorder armed.
    pub fn fanotify_drain(&self, pid: Pid) -> SysResult<Vec<FanotifyEvent>> {
        let mnt = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        Ok(match self.inner.fanotify.lock().get_mut(&mnt) {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        })
    }

    /// Disarms `pid`'s mount namespace's recorder and returns the
    /// remaining events.
    pub fn fanotify_stop(&self, pid: Pid) -> SysResult<Vec<FanotifyEvent>> {
        let mnt = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        Ok(self.inner.fanotify.lock().remove(&mnt).unwrap_or_default())
    }

    /// Records one access if the accessor's mount namespace has an armed
    /// recorder.
    pub(crate) fn fanotify_record(&self, mnt_ns: NamespaceId, dev: DevId, ino: Ino, path: &str) {
        if let Some(events) = self.inner.fanotify.lock().get_mut(&mnt_ns) {
            events.push(FanotifyEvent {
                dev,
                ino,
                path: path.to_string(),
            });
        }
    }

    /// Reads the resource limits.
    pub fn rlimits(&self, pid: Pid) -> SysResult<RlimitSet> {
        self.with_proc(pid, |p| Ok(p.rlimits))
    }

    /// Updates the resource limits.
    pub fn set_rlimits(&self, pid: Pid, limits: RlimitSet) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.rlimits = limits;
            Ok(())
        })
    }

    // ------------------------------------------------------------------
    // Namespaces
    // ------------------------------------------------------------------

    /// Allocates a fresh namespace id.
    pub(crate) fn alloc_ns_id(&self) -> NamespaceId {
        NamespaceId(self.inner.next_ns.fetch_add(1, Ordering::Relaxed))
    }

    /// `unshare(2)`: gives `pid` fresh namespaces of the listed kinds.
    /// Requires `CAP_SYS_ADMIN`.
    ///
    /// Lock order: the process shard is read (creds, current namespaces),
    /// released while the mount table / hostname copies are created, then
    /// written once with the complete new namespace set. The reference
    /// *moves* — off the old namespaces, onto the fresh ones — commit
    /// inside that same shard write (the `NsRefs` leaf lock), so a
    /// concurrent `reap` always releases exactly the set it observes. An
    /// old namespace drained by the move (the caller was its last
    /// process) is garbage-collected; if the caller vanished before
    /// adopting the fresh namespaces, *those* are zero-referenced and go
    /// down the very same GC path — there is no separate rollback code.
    pub fn unshare(&self, pid: Pid, kinds: &[NamespaceKind]) -> SysResult<()> {
        self.charge_syscall();
        let (caps, old_ns) = self.with_proc(pid, |p| Ok((p.creds.caps, p.ns)))?;
        if !caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let mut fresh: Vec<(NamespaceKind, NamespaceId)> = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let new_id = self.alloc_ns_id();
            if kind == NamespaceKind::Mount {
                let cloned = self
                    .inner
                    .mounts
                    .with_read(old_ns.mount, |ns| Ok(ns.clone_for(new_id)));
                match cloned {
                    Ok(cloned) => self.inner.mounts.insert(cloned),
                    Err(e) => {
                        // The source table vanished mid-call (a concurrent
                        // reap GC'd the caller's old namespace): unwind the
                        // zero-ref state created by earlier iterations
                        // through the same GC path instead of leaking it.
                        for &d in &fresh {
                            self.gc_namespace(d);
                        }
                        return Err(e);
                    }
                }
            }
            if kind == NamespaceKind::Uts {
                let mut hostnames = self.inner.hostnames.write();
                let name = hostnames.get(&old_ns.uts).cloned().unwrap_or_default();
                hostnames.insert(new_id, name);
            }
            fresh.push((kind, new_id));
        }
        // Only the unshared kinds are written back — a concurrent `setns`
        // on another kind is not clobbered by this syscall's earlier
        // snapshot of the namespace set. The overwritten id is read under
        // the shard lock for the same reason: it may differ from the
        // earlier snapshot.
        let res = self.with_proc_mut(pid, |p| {
            let mut dead = Vec::new();
            for &(kind, id) in &fresh {
                let old = p.ns.get(kind);
                p.ns.set(kind, id);
                if let Some(d) = self.inner.ns_refs.transfer(kind, old, id) {
                    dead.push(d);
                }
            }
            Ok(dead)
        });
        match res {
            Ok(dead) => {
                for d in dead {
                    self.gc_namespace(d);
                }
                Ok(())
            }
            Err(e) => {
                // The process vanished (concurrent reap) before adopting
                // the fresh namespaces: they hold zero references, exactly
                // like any other dead namespace — reclaim them through the
                // unified GC path.
                for &d in &fresh {
                    self.gc_namespace(d);
                }
                Err(e)
            }
        }
    }

    /// `setns(2)`: moves `pid` into `target`'s namespaces of the listed
    /// kinds. Requires `CAP_SYS_ADMIN`; the target must be running — as in
    /// Linux, a zombie's namespaces are no longer joinable. Joining a
    /// mount namespace resets root and cwd to that namespace's root, as in
    /// Linux.
    ///
    /// Adoption is a reference *move*: `NsRefs::adopt_set` pins the
    /// target namespaces (refusing with `ESRCH` if one died between the
    /// target snapshot and the commit) and releases the caller's old ones;
    /// any namespace the caller drains is garbage-collected.
    pub fn setns(&self, pid: Pid, target: Pid, kinds: &[NamespaceKind]) -> SysResult<()> {
        self.charge_syscall();
        let caps = self.with_proc(pid, |p| Ok(p.creds.caps))?;
        if !caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let target_ns = self.with_proc(target, |p| {
            if p.state != ProcessState::Running {
                return Err(Errno::ESRCH);
            }
            Ok(p.ns)
        })?;
        // Deduplicate the kinds: the reference moves below are one-per-kind
        // (a repeated kind would double-retain the target namespace and
        // double-release the caller's old one).
        let mut uniq: Vec<NamespaceKind> = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if !uniq.contains(&kind) {
                uniq.push(kind);
            }
        }
        let kinds = &uniq[..];
        // Gather the mount-namespace root before mutating the process, so
        // the final update is a single consistent shard write.
        let mut new_root: Option<VfsLoc> = None;
        for &kind in kinds {
            if kind == NamespaceKind::Mount {
                let id = target_ns.get(kind);
                new_root = Some(self.inner.mounts.with_read(id, |ns| {
                    let root_mount = ns.root_mount();
                    let root_ino = ns.get(root_mount)?.root_ino;
                    Ok(VfsLoc {
                        mount: root_mount,
                        ino: root_ino,
                    })
                })?);
            }
        }
        let dead = self.with_proc_mut(pid, |p| {
            let moves: Vec<(NamespaceKind, NamespaceId, NamespaceId)> = kinds
                .iter()
                .map(|&kind| (kind, p.ns.get(kind), target_ns.get(kind)))
                .collect();
            // All-or-nothing: the namespace set is only written once every
            // target namespace is successfully pinned.
            let dead = self.inner.ns_refs.adopt_set(&moves)?;
            for &(kind, _, new) in &moves {
                p.ns.set(kind, new);
            }
            if let Some(root) = new_root {
                p.root = root;
                p.cwd = root;
                p.cwd_path = "/".to_string();
            }
            Ok(dead)
        })?;
        for d in dead {
            self.gc_namespace(d);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Namespace observability (tests, `/proc`, leak checks)
    // ------------------------------------------------------------------

    /// Process refcount of one namespace (0 = dead or never existed).
    pub fn ns_refcount(&self, kind: NamespaceKind, id: NamespaceId) -> u64 {
        self.inner.ns_refs.count(kind, id)
    }

    /// Number of live `(kind, id)` refcount entries — exactly 7 on a
    /// freshly booted (or fully torn-down) machine.
    pub fn ns_ref_entries(&self) -> usize {
        self.inner.ns_refs.len()
    }

    /// Ids of every registered mount namespace (sorted). A machine whose
    /// containers have all been reaped holds only namespace 1.
    pub fn mount_ns_ids(&self) -> Vec<NamespaceId> {
        self.inner.mounts.ids()
    }

    /// Number of registered mount namespaces.
    pub fn mount_ns_count(&self) -> usize {
        self.inner.mounts.len()
    }

    /// Number of UTS hostname entries.
    pub fn hostname_count(&self) -> usize {
        self.inner.hostnames.read().len()
    }

    /// Number of bound Unix socket nodes.
    pub fn socket_node_count(&self) -> usize {
        self.inner.socket_nodes.lock().len()
    }

    /// `sethostname(2)` in the caller's UTS namespace.
    pub fn sethostname(&self, pid: Pid, name: &str) -> SysResult<()> {
        let uts = self.with_proc(pid, |p| Ok(p.ns.uts))?;
        self.inner.hostnames.write().insert(uts, name.to_string());
        Ok(())
    }

    /// `gethostname(2)`.
    pub fn gethostname(&self, pid: Pid) -> SysResult<String> {
        let uts = self.with_proc(pid, |p| Ok(p.ns.uts))?;
        Ok(self
            .inner
            .hostnames
            .read()
            .get(&uts)
            .cloned()
            .unwrap_or_default())
    }

    // ------------------------------------------------------------------
    // Cgroups
    // ------------------------------------------------------------------

    /// Creates a cgroup.
    pub fn cgroup_create(&self, path: &str) -> SysResult<CgroupPath> {
        self.inner.cgroups.lock().create(path)
    }

    /// Moves a process into a cgroup.
    pub fn cgroup_attach(&self, pid: Pid, path: &CgroupPath) -> SysResult<()> {
        self.inner.cgroups.lock().attach(pid, path)?;
        let _ = self.with_proc_mut(pid, |p| {
            p.cgroup = path.clone();
            Ok(())
        });
        Ok(())
    }

    /// Removes an empty cgroup (`rmdir` in cgroupfs) — how an engine purges
    /// a dead container from cgroup bookkeeping after its last process is
    /// reaped. `EBUSY` while members or child groups remain.
    pub fn cgroup_remove(&self, path: &CgroupPath) -> SysResult<()> {
        self.inner.cgroups.lock().remove(path)
    }

    /// Sets cgroup limits.
    pub fn cgroup_set_limits(&self, path: &CgroupPath, limits: CgroupLimits) -> SysResult<()> {
        self.inner.cgroups.lock().set_limits(path, limits)
    }

    /// Reads cgroup members.
    pub fn cgroup_members(&self, path: &CgroupPath) -> SysResult<Vec<Pid>> {
        self.inner.cgroups.lock().members(path)
    }

    // ------------------------------------------------------------------
    // Pipes, sockets, epoll, splice
    // ------------------------------------------------------------------

    /// `pipe(2)`: returns `(read_fd, write_fd)`.
    pub fn pipe(&self, pid: Pid) -> SysResult<(u32, u32)> {
        self.charge_syscall();
        let pipe = Pipe::new();
        self.with_proc_mut(pid, |p| {
            let r = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::PipeRead(Arc::clone(&pipe)),
                    flags: OpenFlags::RDONLY,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            });
            let w = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::PipeWrite(Arc::clone(&pipe)),
                    flags: OpenFlags::WRONLY,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            });
            Ok((r, w))
        })
    }

    /// `socketpair(AF_UNIX, SOCK_STREAM)`.
    pub fn socketpair(&self, pid: Pid) -> SysResult<(u32, u32)> {
        self.charge_syscall();
        let (a, b) = SocketEnd::pair();
        self.with_proc_mut(pid, |p| {
            let fa = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(a.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            });
            let fb = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(b.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            });
            Ok((fa, fb))
        })
    }

    /// `accept(2)` on a listener fd.
    pub fn accept(&self, pid: Pid, listener_fd: u32) -> SysResult<u32> {
        self.charge_syscall();
        let listener = self.with_proc(pid, |p| {
            let entry = p.fds.get(&listener_fd).ok_or(Errno::EBADF)?;
            match &entry.file.kind {
                FileKind::Listener(l) => Ok(Arc::clone(l)),
                _ => Err(Errno::ENOTSOCK),
            }
        })?;
        let end = listener.accept()?;
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(end.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            }))
        })
    }

    /// `epoll_create1(2)`.
    pub fn epoll_create(&self, pid: Pid) -> SysResult<u32> {
        self.charge_syscall();
        let ep = Epoll::new();
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Epoll(ep.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            }))
        })
    }

    /// Resolves `fd` to the pollable source `epoll` would watch — the one
    /// fd-to-`Pollable` mapping, shared by `epoll_add` and `poll_fd`.
    fn pollable_of(entry: &crate::process::FdEntry) -> SysResult<Arc<dyn crate::pipe::Pollable>> {
        Ok(match &entry.file.kind {
            FileKind::PipeRead(pipe) | FileKind::PipeWrite(pipe) => Arc::clone(pipe) as _,
            FileKind::Socket(s) => Arc::new(s.clone()) as _,
            FileKind::Listener(l) => Arc::clone(l) as _,
            _ => return Err(Errno::EPERM),
        })
    }

    /// Resolves `epfd` to its epoll instance.
    fn epoll_of(&self, pid: Pid, epfd: u32) -> SysResult<Arc<Epoll>> {
        self.with_proc(pid, |p| {
            match &p.fds.get(&epfd).ok_or(Errno::EBADF)?.file.kind {
                FileKind::Epoll(e) => Ok(Arc::clone(e)),
                _ => Err(Errno::EINVAL),
            }
        })
    }

    /// `epoll_ctl(EPOLL_CTL_ADD)`: watches `fd` under `token`.
    pub fn epoll_add(&self, pid: Pid, epfd: u32, fd: u32, token: u64, ev: Events) -> SysResult<()> {
        self.charge_syscall();
        let (ep, source) = self.with_proc(pid, |p| {
            let ep = match &p.fds.get(&epfd).ok_or(Errno::EBADF)?.file.kind {
                FileKind::Epoll(e) => Arc::clone(e),
                _ => return Err(Errno::EINVAL),
            };
            let source = Self::pollable_of(p.fds.get(&fd).ok_or(Errno::EBADF)?)?;
            Ok((ep, source))
        })?;
        ep.add(token, source, ev)
    }

    /// `epoll_ctl(EPOLL_CTL_MOD)`: changes the interest of `token`. The
    /// attach plane uses this to park a stalled forward direction (drop
    /// `IN` on the source, arm `OUT` on the full destination) and to
    /// re-arm it once the destination drains.
    pub fn epoll_mod(&self, pid: Pid, epfd: u32, token: u64, ev: Events) -> SysResult<()> {
        self.charge_syscall();
        self.epoll_of(pid, epfd)?.modify(token, ev)
    }

    /// `epoll_ctl(EPOLL_CTL_DEL)`: drops `token` from the interest set.
    /// Explicit deregistration is what keeps a long-lived event loop's
    /// interest set bounded across connect/close cycles.
    pub fn epoll_del(&self, pid: Pid, epfd: u32, token: u64) -> SysResult<()> {
        self.charge_syscall();
        self.epoll_of(pid, epfd)?.remove(token)
    }

    /// Number of watches registered on `epfd` (diagnostics; the attach
    /// stress asserts the interest set stays bounded).
    pub fn epoll_len(&self, pid: Pid, epfd: u32) -> SysResult<usize> {
        Ok(self.epoll_of(pid, epfd)?.len())
    }

    /// `epoll_wait(2)` (non-blocking: returns what is ready now).
    pub fn epoll_wait(&self, pid: Pid, epfd: u32) -> SysResult<Vec<(u64, Events)>> {
        self.charge_syscall();
        Ok(self.epoll_of(pid, epfd)?.wait())
    }

    /// `epoll_wait(2)` with a `maxevents` budget: at most `max` events,
    /// served round-robin across calls (see [`Epoll::wait_budget`]).
    pub fn epoll_wait_budget(
        &self,
        pid: Pid,
        epfd: u32,
        max: usize,
    ) -> SysResult<Vec<(u64, Events)>> {
        self.charge_syscall();
        Ok(self.epoll_of(pid, epfd)?.wait_budget(max))
    }

    /// `poll(2)` on a single descriptor: its current readiness. Event
    /// loops use this to tell a drained source apart from a full
    /// destination after `splice` returns `EAGAIN`.
    pub fn poll_fd(&self, pid: Pid, fd: u32) -> SysResult<Events> {
        let source = self.with_proc(pid, |p| {
            Self::pollable_of(p.fds.get(&fd).ok_or(Errno::EBADF)?)
        })?;
        Ok(Events {
            readable: source.poll_readable(),
            writable: source.poll_writable(),
            hangup: source.poll_hangup(),
        })
    }

    /// Installs a descriptor for one end of an existing kernel pipe —
    /// how the attach plane turns a pty's pipes into pollable, splicable
    /// descriptors in the plane process (a real pty master *is* an fd).
    pub fn adopt_pipe(&self, pid: Pid, pipe: &Arc<Pipe>, write_end: bool) -> SysResult<u32> {
        self.charge_syscall();
        let (kind, flags) = if write_end {
            (FileKind::PipeWrite(Arc::clone(pipe)), OpenFlags::WRONLY)
        } else {
            (FileKind::PipeRead(Arc::clone(pipe)), OpenFlags::RDONLY)
        };
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind,
                    flags,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            }))
        })
    }

    /// `shutdown(fd, SHUT_WR)` on a connected socket: closes the outbound
    /// direction only. The peer drains in-flight bytes, then reads EOF;
    /// this process can still receive.
    pub fn shutdown_write(&self, pid: Pid, fd: u32) -> SysResult<()> {
        self.charge_syscall();
        let end = self.with_proc(pid, |p| {
            match &p.fds.get(&fd).ok_or(Errno::EBADF)?.file.kind {
                FileKind::Socket(s) => Ok(s.clone()),
                _ => Err(Errno::ENOTSOCK),
            }
        })?;
        end.shutdown_write();
        Ok(())
    }

    /// `close_range(2)`: closes every fd numbered ≥ `first`. A freshly
    /// forked event-loop process calls this so descriptors inherited from
    /// its parent don't pin listeners or pipes it never asked for.
    pub fn close_range(&self, pid: Pid, first: u32) -> SysResult<usize> {
        self.charge_syscall();
        let closed = self.with_proc_mut(pid, |p| {
            let doomed: Vec<u32> = p.fds.keys().copied().filter(|&fd| fd >= first).collect();
            let mut entries = Vec::with_capacity(doomed.len());
            for fd in doomed {
                if let Some(entry) = p.fds.remove(&fd) {
                    entries.push(entry);
                }
            }
            Ok(entries)
        })?;
        let n = closed.len();
        // Release outside the shard lock (close-time side effects may take
        // subsystem locks).
        for entry in closed {
            self.release_fd_entry(entry);
        }
        Ok(n)
    }

    /// `splice(2)`: moves up to `len` bytes between two descriptors without
    /// copying through userspace. Supports pipe→pipe, socket→pipe and
    /// pipe→socket — the combinations CNTR's socket proxy uses (§3.2.4).
    /// Loss-free under backpressure: whatever the destination does not
    /// accept is pushed back onto the source, so a caller that sees
    /// `EAGAIN` or a short count can retry later without dropping bytes.
    pub fn splice(&self, pid: Pid, fd_in: u32, fd_out: u32, len: usize) -> SysResult<usize> {
        self.charge_syscall();
        let (src, dst) = self.with_proc(pid, |p| {
            let a = Arc::clone(&p.fds.get(&fd_in).ok_or(Errno::EBADF)?.file);
            let b = Arc::clone(&p.fds.get(&fd_out).ok_or(Errno::EBADF)?.file);
            Ok((a, b))
        })?;
        // Stage through a bounded kernel buffer; remap cost, not copy cost.
        let mut buf = vec![0u8; len.min(crate::pipe::PIPE_CAPACITY)];
        let n = match &src.kind {
            FileKind::PipeRead(pipe) => pipe.read(&mut buf)?,
            FileKind::Socket(s) => s.recv(&mut buf)?,
            _ => return Err(Errno::EINVAL),
        };
        if n == 0 {
            return Ok(0);
        }
        let written = match &dst.kind {
            FileKind::PipeWrite(pipe) => pipe.write(&buf[..n]),
            FileKind::Socket(s) => s.send(&buf[..n]),
            _ => Err(Errno::EINVAL),
        };
        let written = match written {
            Ok(w) => w,
            Err(e) => {
                // Destination refused everything: return the staged bytes
                // to the source before surfacing the error.
                Self::splice_unread(&src.kind, &buf[..n]);
                return Err(e);
            }
        };
        if written < n {
            Self::splice_unread(&src.kind, &buf[written..n]);
        }
        // Charge splice (page-remap) cost for what actually moved.
        self.inner
            .clock
            .advance(self.inner.cost.splice(written as u64));
        Ok(written)
    }

    /// Returns unconsumed staged bytes to a splice source.
    fn splice_unread(src: &FileKind, data: &[u8]) {
        match src {
            FileKind::PipeRead(pipe) => pipe.unread(data),
            FileKind::Socket(s) => s.unrecv(data),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;

    fn kernel() -> Kernel {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default())
    }

    #[test]
    fn boot_creates_init() {
        let k = kernel();
        let info = k.proc_info(Pid::INIT).unwrap();
        assert_eq!(info.name, "init");
        assert!(info.creds.caps.has(Capability::SysAdmin));
        assert_eq!(k.pids(), vec![Pid::INIT]);
    }

    /// The fork-rollback path (cgroup attach failure) re-locks the child's
    /// shard and releases namespace refs; it must run *after* the cgroups
    /// guard drops. Lockdep verifies the order at runtime — this test is
    /// what drives the path, which no happy-path test reaches.
    #[test]
    fn fork_rollback_on_cgroup_limit_is_clean() {
        let k = kernel();
        let cg = k.cgroup_create("/jail").unwrap();
        k.cgroup_set_limits(
            &cg,
            CgroupLimits {
                pids_max: Some(1),
                ..CgroupLimits::default()
            },
        )
        .unwrap();
        k.cgroup_attach(Pid::INIT, &cg).unwrap();
        // The child inherits /jail, whose pid budget init exhausts: the
        // attach fails and the inserted child must be rolled back whole.
        assert_eq!(k.fork(Pid::INIT), Err(Errno::EAGAIN));
        assert_eq!(k.pids(), vec![Pid::INIT]);
        assert_eq!(k.cgroup_members(&cg).unwrap(), vec![Pid::INIT]);
        // The table is intact: a fork after lifting the limit succeeds.
        k.cgroup_set_limits(&cg, CgroupLimits::default()).unwrap();
        let child = k.fork(Pid::INIT).unwrap();
        assert!(k.is_alive(child));
    }

    #[test]
    fn fork_exit_reap() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        assert_eq!(child, Pid(2));
        assert!(k.is_alive(child));
        assert_eq!(k.proc_info(child).unwrap().ppid, Pid::INIT);
        k.exit(child).unwrap();
        assert!(!k.is_alive(child));
        // Reaping a running process: ECHILD ("nothing waitable"), the
        // non-blocking stand-in for waitpid's blocking semantics.
        assert_eq!(k.reap(Pid::INIT), Err(Errno::ECHILD));
        k.reap(child).unwrap();
        assert_eq!(k.proc_info(child).map(|_| ()), Err(Errno::ESRCH));
        assert_eq!(k.reap(child), Err(Errno::ESRCH));
    }

    #[test]
    fn unshare_gives_fresh_namespaces() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        let before = k.proc_info(child).unwrap().ns;
        k.unshare(child, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .unwrap();
        let after = k.proc_info(child).unwrap().ns;
        assert_eq!(
            before.diff(&after),
            vec![NamespaceKind::Mount, NamespaceKind::Uts]
        );
        // Hostname was inherited into the new UTS namespace.
        assert_eq!(k.gethostname(child).unwrap(), "host");
        k.sethostname(child, "container").unwrap();
        assert_eq!(k.gethostname(child).unwrap(), "container");
        assert_eq!(k.gethostname(Pid::INIT).unwrap(), "host");
    }

    #[test]
    fn namespace_gc_on_reap() {
        let k = kernel();
        let baseline = (k.mount_ns_count(), k.hostname_count(), k.ns_ref_entries());
        assert_eq!(baseline, (1, 1, 7));
        let child = k.fork(Pid::INIT).unwrap();
        k.unshare(child, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .unwrap();
        let ns = k.proc_info(child).unwrap().ns;
        assert_eq!(k.mount_ns_count(), 2);
        assert_eq!(k.hostname_count(), 2);
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 1);
        // Zombies keep their namespaces referenced until reaped.
        k.exit(child).unwrap();
        assert_eq!(k.mount_ns_count(), 2);
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 1);
        // Reaping the last holder reclaims everything.
        k.reap(child).unwrap();
        assert_eq!(
            (k.mount_ns_count(), k.hostname_count(), k.ns_ref_entries()),
            baseline
        );
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 0);
        assert_eq!(k.mount_ns_ids(), vec![NamespaceId(1)]);
    }

    #[test]
    fn unshare_again_gcs_abandoned_namespace() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        k.unshare(child, &[NamespaceKind::Mount]).unwrap();
        let first = k.proc_info(child).unwrap().ns.mount;
        assert_eq!(k.mount_ns_count(), 2);
        // Unsharing again moves the child's only reference off `first`:
        // the abandoned table is reclaimed, not leaked.
        k.unshare(child, &[NamespaceKind::Mount]).unwrap();
        assert_eq!(k.mount_ns_count(), 2);
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, first), 0);
        k.exit(child).unwrap();
        k.reap(child).unwrap();
        assert_eq!(k.mount_ns_count(), 1);
    }

    #[test]
    fn setns_moves_references_and_keeps_namespace_alive() {
        let k = kernel();
        let container = k.fork(Pid::INIT).unwrap();
        k.unshare(container, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .unwrap();
        let ns = k.proc_info(container).unwrap().ns;
        let tool = k.fork(Pid::INIT).unwrap();
        k.setns(tool, container, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .unwrap();
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 2);
        // The container dies first — the attached tool keeps the
        // namespaces (and the hostname) alive.
        k.sethostname(container, "shared").unwrap();
        k.exit(container).unwrap();
        k.reap(container).unwrap();
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 1);
        assert_eq!(k.gethostname(tool).unwrap(), "shared");
        // The tool leaving is the last reference: full teardown.
        k.exit(tool).unwrap();
        k.reap(tool).unwrap();
        assert_eq!(k.mount_ns_count(), 1);
        assert_eq!(k.hostname_count(), 1);
        assert_eq!(k.ns_ref_entries(), 7);
    }

    #[test]
    fn setns_with_duplicate_kinds_counts_once() {
        let k = kernel();
        let container = k.fork(Pid::INIT).unwrap();
        k.unshare(container, &[NamespaceKind::Mount]).unwrap();
        let ns = k.proc_info(container).unwrap().ns;
        let tool = k.fork(Pid::INIT).unwrap();
        // A repeated kind must move exactly one reference.
        k.setns(
            tool,
            container,
            &[NamespaceKind::Mount, NamespaceKind::Mount],
        )
        .unwrap();
        assert_eq!(k.ns_refcount(NamespaceKind::Mount, ns.mount), 2);
        k.exit(tool).unwrap();
        k.reap(tool).unwrap();
        k.exit(container).unwrap();
        k.reap(container).unwrap();
        assert_eq!(k.mount_ns_count(), 1);
        assert_eq!(k.ns_ref_entries(), 7);
    }

    #[test]
    fn namespace_gc_releases_page_cache_of_private_mounts() {
        use cntr_types::{Mode, OpenFlags};
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        k.unshare(child, &[NamespaceKind::Mount]).unwrap();
        k.mkdir(child, "/priv", Mode::RWXR_XR_X).unwrap();
        let sub = cntr_fs::memfs::memfs(DevId(77), k.clock().clone());
        k.mount_fs(
            child,
            "/priv",
            Arc::clone(&sub) as Arc<dyn cntr_fs::Filesystem>,
            CacheMode::native(),
            crate::mount::MountFlags::default(),
        )
        .unwrap();
        // Dirty writeback data: the page cache now holds pages for the
        // private filesystem and a flush reference pinning its `Arc`.
        let fd = k
            .open(child, "/priv/data", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(child, fd, &[7u8; 8192]).unwrap();
        k.close(child, fd).unwrap();
        assert!(k.dirty_bytes() > 0);
        // Reaping the namespace's last process must flush and drop that
        // state: no cached page or writeback reference outlives the
        // mount table.
        k.exit(child).unwrap();
        k.reap(child).unwrap();
        assert_eq!(
            Arc::strong_count(&sub),
            1,
            "GC'd namespace's filesystem must drop to one reference"
        );
    }

    #[test]
    fn setns_into_zombie_is_esrch() {
        let k = kernel();
        let container = k.fork(Pid::INIT).unwrap();
        k.unshare(container, &[NamespaceKind::Mount]).unwrap();
        k.exit(container).unwrap();
        let tool = k.fork(Pid::INIT).unwrap();
        // A zombie's namespaces are not joinable (Linux releases them at
        // exit; this model keeps them observable but not adoptable).
        assert_eq!(
            k.setns(tool, container, &[NamespaceKind::Mount]),
            Err(Errno::ESRCH)
        );
        k.reap(container).unwrap();
        assert_eq!(k.mount_ns_count(), 1);
    }

    #[test]
    fn fanotify_is_scoped_per_mount_namespace() {
        use cntr_types::{Mode, OpenFlags};
        let k = kernel();
        let a = k.fork(Pid::INIT).unwrap();
        let b = k.fork(Pid::INIT).unwrap();
        k.unshare(a, &[NamespaceKind::Mount]).unwrap();
        k.unshare(b, &[NamespaceKind::Mount]).unwrap();
        // Two concurrent recorders, one per container namespace.
        k.fanotify_start(a).unwrap();
        k.fanotify_start(b).unwrap();
        for (pid, path) in [(a, "/a.bin"), (b, "/b.bin")] {
            let fd = k
                .open(pid, path, OpenFlags::create(), Mode::RW_R__R__)
                .unwrap();
            k.close(pid, fd).unwrap();
            let fd = k
                .open(pid, path, OpenFlags::RDONLY, Mode::RW_R__R__)
                .unwrap();
            k.close(pid, fd).unwrap();
        }
        let ev_a = k.fanotify_stop(a).unwrap();
        let ev_b = k.fanotify_stop(b).unwrap();
        assert!(ev_a.iter().all(|e| e.path == "/a.bin"), "{ev_a:?}");
        assert!(ev_b.iter().all(|e| e.path == "/b.bin"), "{ev_b:?}");
        assert!(!ev_a.is_empty() && !ev_b.is_empty());
        // A recorder armed in a namespace that dies is cleaned up with it.
        k.fanotify_start(a).unwrap();
        k.exit(a).unwrap();
        k.reap(a).unwrap();
        k.exit(b).unwrap();
        k.reap(b).unwrap();
        assert_eq!(k.inner.fanotify.lock().len(), 0);
    }

    #[test]
    fn unshare_requires_sys_admin() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        let mut creds = Credentials::host_root();
        creds.caps.remove(Capability::SysAdmin);
        k.set_creds(child, creds).unwrap();
        assert_eq!(k.unshare(child, &[NamespaceKind::Mount]), Err(Errno::EPERM));
    }

    #[test]
    fn setns_adopts_target_namespaces() {
        let k = kernel();
        let container = k.fork(Pid::INIT).unwrap();
        k.unshare(container, &[NamespaceKind::Mount, NamespaceKind::Pid])
            .unwrap();
        let tool = k.fork(Pid::INIT).unwrap();
        k.setns(tool, container, &[NamespaceKind::Mount, NamespaceKind::Pid])
            .unwrap();
        let a = k.proc_info(container).unwrap().ns;
        let b = k.proc_info(tool).unwrap().ns;
        assert_eq!(a.mount, b.mount);
        assert_eq!(a.pid, b.pid);
        assert_ne!(a.net, NamespaceId(0));
    }

    #[test]
    fn environment_roundtrip() {
        let k = kernel();
        k.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
        assert_eq!(
            k.getenv(Pid::INIT, "PATH").unwrap().as_deref(),
            Some("/usr/bin")
        );
        let mut env = BTreeMap::new();
        env.insert("ONLY".to_string(), "this".to_string());
        k.set_environ(Pid::INIT, env).unwrap();
        assert_eq!(k.getenv(Pid::INIT, "PATH").unwrap(), None);
        assert_eq!(
            k.getenv(Pid::INIT, "ONLY").unwrap().as_deref(),
            Some("this")
        );
    }

    #[test]
    fn cgroup_attach_updates_process() {
        let k = kernel();
        let g = k.cgroup_create("/docker").unwrap();
        k.cgroup_attach(Pid::INIT, &g).unwrap();
        assert_eq!(k.proc_info(Pid::INIT).unwrap().cgroup, g);
        assert_eq!(k.cgroup_members(&g).unwrap(), vec![Pid::INIT]);
    }

    #[test]
    fn pipes_and_splice() {
        let k = kernel();
        let (r1, w1) = k.pipe(Pid::INIT).unwrap();
        let (r2, w2) = k.pipe(Pid::INIT).unwrap();
        // Feed pipe 1, splice into pipe 2, read from pipe 2.
        k.write_fd(Pid::INIT, w1, b"spliced bytes").unwrap();
        let moved = k.splice(Pid::INIT, r1, w2, 1024).unwrap();
        assert_eq!(moved, 13);
        let mut buf = [0u8; 32];
        let n = k.read_fd(Pid::INIT, r2, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"spliced bytes");
    }

    #[test]
    fn socketpair_roundtrip() {
        let k = kernel();
        let (a, b) = k.socketpair(Pid::INIT).unwrap();
        k.write_fd(Pid::INIT, a, b"msg").unwrap();
        let mut buf = [0u8; 8];
        let n = k.read_fd(Pid::INIT, b, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"msg");
    }

    #[test]
    fn epoll_over_pipe() {
        let k = kernel();
        let ep = k.epoll_create(Pid::INIT).unwrap();
        let (r, w) = k.pipe(Pid::INIT).unwrap();
        k.epoll_add(Pid::INIT, ep, r, 42, Events::IN).unwrap();
        assert!(k.epoll_wait(Pid::INIT, ep).unwrap().is_empty());
        k.write_fd(Pid::INIT, w, b"!").unwrap();
        let ready = k.epoll_wait(Pid::INIT, ep).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 42);
    }
}
