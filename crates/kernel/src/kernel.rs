//! The kernel object: global tables and process-level system calls.
//!
//! File and mount-table system calls (anything that resolves a path) live in
//! [`crate::vfs`]; this module owns process lifecycle, namespaces,
//! credentials, cgroups, pipes, sockets, epoll and `splice`.

use crate::cgroup::{CgroupLimits, CgroupPath, CgroupTree};
use crate::cred::Credentials;
use crate::epoll::{Epoll, Events};
use crate::mount::{CacheMode, MountId, MountNs};
use crate::ns::{NamespaceId, NamespaceKind, NamespaceSet};
use crate::pagecache::{PageCache, PageCacheStats};
use crate::pipe::Pipe;
use crate::process::{FdEntry, FileKind, OpenFile, Process, ProcessState, VfsLoc};
use crate::socket::{SocketEnd, SocketListener};
use crate::table::{MountTable, ProcTable, DEFAULT_PROC_SHARDS};
use cntr_fs::Filesystem;
use cntr_types::{
    Capability, CostModel, DevId, Errno, Ino, OpenFlags, Pid, RlimitSet, SimClock, SysResult,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables of a simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Primitive cost model.
    pub cost: CostModel,
    /// Page-cache capacity in bytes (the paper's testbed has 16 GB RAM; a
    /// 12 GB cache leaves room for anonymous memory).
    pub page_cache_bytes: u64,
    /// Dirty-page threshold that triggers background writeback.
    pub dirty_limit_bytes: u64,
    /// Process-table shards (rounded up to a power of two). More shards
    /// let syscalls against unrelated pids run concurrently; `1` recreates
    /// the old giant-lock behaviour for comparison benchmarks.
    pub proc_shards: usize,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            cost: CostModel::calibrated(),
            page_cache_bytes: 12 << 30,
            dirty_limit_bytes: 64 << 20,
            proc_shards: DEFAULT_PROC_SHARDS,
        }
    }
}

/// One recorded file access (fanotify `FAN_OPEN`/`FAN_OPEN_EXEC`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanotifyEvent {
    /// Filesystem the file lives on.
    pub dev: DevId,
    /// Inode accessed.
    pub ino: Ino,
    /// Path as resolved by the accessing process.
    pub path: String,
}

/// The kernel's shared state, decomposed into independently locked
/// subsystems (see [`crate::table`] for the lock-ordering discipline).
pub(crate) struct KernelInner {
    pub clock: SimClock,
    pub cost: CostModel,
    pub page_cache: PageCache,
    /// The pid-sharded process table.
    pub procs: ProcTable,
    /// Per-namespace mount tables.
    pub mounts: MountTable,
    /// Namespace-id allocator (all seven kinds share the number space).
    pub next_ns: AtomicU64,
    /// The cgroup hierarchy.
    pub cgroups: Mutex<CgroupTree>,
    /// UTS-namespace hostnames.
    pub hostnames: RwLock<HashMap<NamespaceId, String>>,
    /// Listening Unix sockets, keyed by the socket inode they are bound to.
    pub socket_nodes: Mutex<HashMap<(DevId, Ino), Arc<SocketListener>>>,
    /// fanotify-style access recording (Docker Slim's mechanism): when
    /// armed, successful opens/execs append events here.
    pub fanotify: Mutex<Option<Vec<FanotifyEvent>>>,
}

/// A handle to the simulated machine. Cloning is cheap; all clones share
/// state.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) inner: Arc<KernelInner>,
}

/// Everything CNTR gathers about a process before attaching (paper §3.2.1):
/// namespaces, cgroup, credentials (capabilities, LSM profile), environment.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    /// Process id.
    pub pid: Pid,
    /// Parent pid.
    pub ppid: Pid,
    /// Command name.
    pub name: String,
    /// Security context (uid/gid/caps/LSM profile).
    pub creds: Credentials,
    /// Namespace membership.
    pub ns: NamespaceSet,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Cgroup path.
    pub cgroup: CgroupPath,
    /// Root location (for diagnostics).
    pub root: VfsLoc,
    /// Lifecycle state.
    pub state: ProcessState,
}

impl Kernel {
    /// Boots a machine: namespace 1, mount 1 on `root_fs`, and `init`
    /// (pid 1, host root credentials).
    pub fn new(root_fs: Arc<dyn Filesystem>, cache: CacheMode, config: KernelConfig) -> Kernel {
        Kernel::with_clock(SimClock::new(), root_fs, cache, config)
    }

    /// Boots a machine on an existing clock (so filesystems created earlier
    /// share it).
    pub fn with_clock(
        clock: SimClock,
        root_fs: Arc<dyn Filesystem>,
        cache: CacheMode,
        config: KernelConfig,
    ) -> Kernel {
        let ns_id = NamespaceId(1);
        let mount_id = MountId(1);
        let root_ns = MountNs::new(ns_id, mount_id, root_fs, cache);
        let init = Process {
            pid: Pid::INIT,
            ppid: Pid(0),
            name: "init".to_string(),
            creds: Credentials::host_root(),
            ns: NamespaceSet::uniform(ns_id),
            cwd: VfsLoc {
                mount: mount_id,
                ino: Ino::ROOT,
            },
            cwd_path: "/".to_string(),
            root: VfsLoc {
                mount: mount_id,
                ino: Ino::ROOT,
            },
            env: BTreeMap::new(),
            rlimits: RlimitSet::default(),
            fds: HashMap::new(),
            next_fd: 0,
            cgroup: CgroupPath::root(),
            state: ProcessState::Running,
        };
        let mut cgroups = CgroupTree::new();
        cgroups
            .attach(Pid::INIT, &CgroupPath::root())
            .expect("root cgroup exists");
        let mut hostnames = HashMap::new();
        hostnames.insert(ns_id, "host".to_string());
        Kernel {
            inner: Arc::new(KernelInner {
                page_cache: PageCache::new(
                    clock.clone(),
                    config.cost,
                    config.page_cache_bytes,
                    config.dirty_limit_bytes,
                ),
                clock,
                cost: config.cost,
                procs: ProcTable::new(config.proc_shards, init),
                mounts: MountTable::new(root_ns),
                next_ns: AtomicU64::new(2),
                cgroups: Mutex::new(cgroups),
                hostnames: RwLock::new(hostnames),
                socket_nodes: Mutex::new(HashMap::new()),
                fanotify: Mutex::new(None),
            }),
        }
    }

    /// Number of process-table shards this machine was booted with.
    pub fn proc_shard_count(&self) -> usize {
        self.inner.procs.shard_count()
    }

    /// The machine's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.inner.cost
    }

    /// Page-cache counters.
    pub fn page_cache_stats(&self) -> PageCacheStats {
        self.inner.page_cache.stats()
    }

    /// Bytes of dirty data pending writeback.
    pub fn dirty_bytes(&self) -> u64 {
        self.inner.page_cache.dirty_bytes()
    }

    /// `sync(2)`: flushes all dirty pages.
    pub fn sync(&self) -> cntr_types::SysResult<()> {
        self.inner.page_cache.sync_all()
    }

    /// `echo 3 > /proc/sys/vm/drop_caches`: flushes and drops the page
    /// cache — used between benchmark phases to measure cold-cache paths.
    pub fn drop_caches(&self) -> cntr_types::SysResult<()> {
        self.inner.page_cache.drop_clean()
    }

    /// Drops one filesystem's cached pages only.
    pub fn drop_caches_for(&self, dev: DevId) -> cntr_types::SysResult<()> {
        self.inner.page_cache.drop_dev(dev)
    }

    /// Charges one syscall entry/exit.
    pub(crate) fn charge_syscall(&self) {
        self.inner.clock.advance(self.inner.cost.syscall_ns);
    }

    pub(crate) fn with_proc<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&Process) -> SysResult<T>,
    ) -> SysResult<T> {
        self.inner.procs.with(pid, f)
    }

    pub(crate) fn with_proc_mut<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&mut Process) -> SysResult<T>,
    ) -> SysResult<T> {
        self.inner.procs.with_mut(pid, f)
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// `fork(2)`: duplicates `parent`, returning the child pid.
    ///
    /// Both shards (parent's and child's) are held together while the child
    /// is inserted, so a concurrent `/proc` snapshot sees either the
    /// pre-fork or post-fork world — never a child without its parent.
    pub fn fork(&self, parent: Pid) -> SysResult<Pid> {
        self.charge_syscall();
        let child_pid = self.inner.procs.alloc_pid();
        let cgroup = {
            let mut pair = self.inner.procs.lock_pair(parent, child_pid);
            let parent_proc = pair.get(parent).ok_or(Errno::ESRCH)?;
            if parent_proc.state != ProcessState::Running {
                return Err(Errno::ESRCH);
            }
            let child = parent_proc.fork_into(child_pid);
            let cgroup = child.cgroup.clone();
            pair.insert(child);
            cgroup
        };
        // Processes-before-cgroups: the shard locks are released before the
        // cgroup tree is touched. Roll the insert back if attach fails —
        // dropping the removed process (and its cloned fd table, which can
        // release FUSE handles that re-enter the kernel) outside the shard
        // lock, as `exit`/`reap` do.
        if let Err(e) = self.inner.cgroups.lock().attach(child_pid, &cgroup) {
            let removed = {
                let mut shard = self.inner.procs.lock_shard_of(child_pid);
                shard.remove(&child_pid)
            };
            drop(removed);
            return Err(e);
        }
        Ok(child_pid)
    }

    /// Terminates a process, closing its descriptors.
    pub fn exit(&self, pid: Pid) -> SysResult<()> {
        self.charge_syscall();
        // Dropping fd entries can release FUSE file handles, which re-enters
        // the kernel through the server — so the drops must happen outside
        // the shard lock.
        let fds = self.inner.procs.with_mut(pid, |p| {
            p.state = ProcessState::Zombie;
            Ok(std::mem::take(&mut p.fds))
        })?;
        self.inner.cgroups.lock().detach_everywhere(pid);
        drop(fds);
        Ok(())
    }

    /// Reaps a zombie, removing it from the table.
    pub fn reap(&self, pid: Pid) -> SysResult<()> {
        // As in `exit`, the process (and anything it still references) must
        // be dropped outside the shard lock.
        let reaped = {
            let mut shard = self.inner.procs.lock_shard_of(pid);
            match shard.get(&pid) {
                Some(p) if p.state == ProcessState::Zombie => shard.remove(&pid),
                Some(_) => return Err(Errno::EBUSY),
                None => return Err(Errno::ESRCH),
            }
        };
        drop(reaped);
        Ok(())
    }

    /// True if the process exists and is running.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.inner
            .procs
            .with(pid, |p| Ok(p.state == ProcessState::Running))
            .unwrap_or(false)
    }

    /// All live pids (ordered).
    pub fn pids(&self) -> Vec<Pid> {
        self.inner.procs.pids()
    }

    /// The full context CNTR needs before attaching. All fields come from
    /// one shard acquisition — a consistent per-process snapshot.
    pub fn proc_info(&self, pid: Pid) -> SysResult<ProcInfo> {
        self.inner.procs.with(pid, |p| {
            Ok(ProcInfo {
                pid: p.pid,
                ppid: p.ppid,
                name: p.name.clone(),
                creds: p.creds.clone(),
                ns: p.ns,
                env: p.env.clone(),
                cgroup: p.cgroup.clone(),
                root: p.root,
                state: p.state,
            })
        })
    }

    /// Sets the command name.
    pub fn set_name(&self, pid: Pid, name: &str) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.name = name.to_string();
            Ok(())
        })
    }

    /// Sets an environment variable.
    pub fn setenv(&self, pid: Pid, key: &str, value: &str) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.env.insert(key.to_string(), value.to_string());
            Ok(())
        })
    }

    /// Reads an environment variable.
    pub fn getenv(&self, pid: Pid, key: &str) -> SysResult<Option<String>> {
        self.with_proc(pid, |p| Ok(p.env.get(key).cloned()))
    }

    /// Replaces the whole environment (what CNTR does in step #3: "applies
    /// all the environment variables that were read from the container
    /// process; with the exception of PATH").
    pub fn set_environ(&self, pid: Pid, env: BTreeMap<String, String>) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.env = env;
            Ok(())
        })
    }

    /// Replaces the credentials (privileged; used by the engine substrate
    /// when it builds containers, and by CNTR when dropping privileges).
    pub fn set_creds(&self, pid: Pid, creds: Credentials) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.creds = creds;
            Ok(())
        })
    }

    /// Reads the credentials.
    pub fn creds(&self, pid: Pid) -> SysResult<Credentials> {
        self.with_proc(pid, |p| Ok(p.creds.clone()))
    }

    /// The canonical current-working-directory path (what `pwd` prints).
    pub fn cwd_path(&self, pid: Pid) -> SysResult<String> {
        self.with_proc(pid, |p| Ok(p.cwd_path.clone()))
    }

    /// Arms fanotify-style access recording (Docker Slim's mechanism:
    /// "records all files that have been accessed during a container run in
    /// an efficient way using the fanotify kernel module", paper §5.3).
    pub fn fanotify_start(&self) {
        *self.inner.fanotify.lock() = Some(Vec::new());
    }

    /// Drains recorded events, keeping the recorder armed.
    pub fn fanotify_drain(&self) -> Vec<FanotifyEvent> {
        match self.inner.fanotify.lock().as_mut() {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        }
    }

    /// Disarms the recorder and returns the remaining events.
    pub fn fanotify_stop(&self) -> Vec<FanotifyEvent> {
        self.inner.fanotify.lock().take().unwrap_or_default()
    }

    /// Records one access if the recorder is armed.
    pub(crate) fn fanotify_record(&self, dev: DevId, ino: Ino, path: &str) {
        if let Some(events) = self.inner.fanotify.lock().as_mut() {
            events.push(FanotifyEvent {
                dev,
                ino,
                path: path.to_string(),
            });
        }
    }

    /// Reads the resource limits.
    pub fn rlimits(&self, pid: Pid) -> SysResult<RlimitSet> {
        self.with_proc(pid, |p| Ok(p.rlimits))
    }

    /// Updates the resource limits.
    pub fn set_rlimits(&self, pid: Pid, limits: RlimitSet) -> SysResult<()> {
        self.with_proc_mut(pid, |p| {
            p.rlimits = limits;
            Ok(())
        })
    }

    // ------------------------------------------------------------------
    // Namespaces
    // ------------------------------------------------------------------

    /// Allocates a fresh namespace id.
    pub(crate) fn alloc_ns_id(&self) -> NamespaceId {
        NamespaceId(self.inner.next_ns.fetch_add(1, Ordering::Relaxed))
    }

    /// `unshare(2)`: gives `pid` fresh namespaces of the listed kinds.
    /// Requires `CAP_SYS_ADMIN`.
    ///
    /// Lock order: the process shard is read (creds, current namespaces),
    /// released while the mount table / hostname copies are created, then
    /// written once with the complete new namespace set.
    pub fn unshare(&self, pid: Pid, kinds: &[NamespaceKind]) -> SysResult<()> {
        self.charge_syscall();
        let (caps, old_ns) = self.with_proc(pid, |p| Ok((p.creds.caps, p.ns)))?;
        if !caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let mut fresh: Vec<(NamespaceKind, NamespaceId)> = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let new_id = self.alloc_ns_id();
            if kind == NamespaceKind::Mount {
                let cloned = self
                    .inner
                    .mounts
                    .with_read(old_ns.mount, |ns| Ok(ns.clone_for(new_id)))?;
                self.inner.mounts.insert(cloned);
            }
            if kind == NamespaceKind::Uts {
                let mut hostnames = self.inner.hostnames.write();
                let name = hostnames.get(&old_ns.uts).cloned().unwrap_or_default();
                hostnames.insert(new_id, name);
            }
            fresh.push((kind, new_id));
        }
        // Only the unshared kinds are written back — a concurrent `setns`
        // on another kind is not clobbered by this syscall's earlier
        // snapshot of the namespace set.
        let res = self.with_proc_mut(pid, |p| {
            for &(kind, id) in &fresh {
                p.ns.set(kind, id);
            }
            Ok(())
        });
        if res.is_err() {
            // The process vanished (concurrent reap) before adopting the
            // new namespaces: deregister them rather than leaking tables
            // no process can ever reference.
            for &(kind, id) in &fresh {
                match kind {
                    NamespaceKind::Mount => self.inner.mounts.remove(id),
                    NamespaceKind::Uts => {
                        self.inner.hostnames.write().remove(&id);
                    }
                    _ => {}
                }
            }
        }
        res
    }

    /// `setns(2)`: moves `pid` into `target`'s namespaces of the listed
    /// kinds. Requires `CAP_SYS_ADMIN`. Joining a mount namespace resets
    /// root and cwd to that namespace's root, as in Linux.
    pub fn setns(&self, pid: Pid, target: Pid, kinds: &[NamespaceKind]) -> SysResult<()> {
        self.charge_syscall();
        let caps = self.with_proc(pid, |p| Ok(p.creds.caps))?;
        if !caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let target_ns = self.with_proc(target, |p| Ok(p.ns))?;
        // Gather the mount-namespace root before mutating the process, so
        // the final update is a single consistent shard write.
        let mut new_root: Option<VfsLoc> = None;
        for &kind in kinds {
            if kind == NamespaceKind::Mount {
                let id = target_ns.get(kind);
                new_root = Some(self.inner.mounts.with_read(id, |ns| {
                    let root_mount = ns.root_mount();
                    let root_ino = ns.get(root_mount)?.root_ino;
                    Ok(VfsLoc {
                        mount: root_mount,
                        ino: root_ino,
                    })
                })?);
            }
        }
        self.with_proc_mut(pid, |p| {
            for &kind in kinds {
                p.ns.set(kind, target_ns.get(kind));
            }
            if let Some(root) = new_root {
                p.root = root;
                p.cwd = root;
                p.cwd_path = "/".to_string();
            }
            Ok(())
        })
    }

    /// `sethostname(2)` in the caller's UTS namespace.
    pub fn sethostname(&self, pid: Pid, name: &str) -> SysResult<()> {
        let uts = self.with_proc(pid, |p| Ok(p.ns.uts))?;
        self.inner.hostnames.write().insert(uts, name.to_string());
        Ok(())
    }

    /// `gethostname(2)`.
    pub fn gethostname(&self, pid: Pid) -> SysResult<String> {
        let uts = self.with_proc(pid, |p| Ok(p.ns.uts))?;
        Ok(self
            .inner
            .hostnames
            .read()
            .get(&uts)
            .cloned()
            .unwrap_or_default())
    }

    // ------------------------------------------------------------------
    // Cgroups
    // ------------------------------------------------------------------

    /// Creates a cgroup.
    pub fn cgroup_create(&self, path: &str) -> SysResult<CgroupPath> {
        self.inner.cgroups.lock().create(path)
    }

    /// Moves a process into a cgroup.
    pub fn cgroup_attach(&self, pid: Pid, path: &CgroupPath) -> SysResult<()> {
        self.inner.cgroups.lock().attach(pid, path)?;
        let _ = self.with_proc_mut(pid, |p| {
            p.cgroup = path.clone();
            Ok(())
        });
        Ok(())
    }

    /// Sets cgroup limits.
    pub fn cgroup_set_limits(&self, path: &CgroupPath, limits: CgroupLimits) -> SysResult<()> {
        self.inner.cgroups.lock().set_limits(path, limits)
    }

    /// Reads cgroup members.
    pub fn cgroup_members(&self, path: &CgroupPath) -> SysResult<Vec<Pid>> {
        self.inner.cgroups.lock().members(path)
    }

    // ------------------------------------------------------------------
    // Pipes, sockets, epoll, splice
    // ------------------------------------------------------------------

    /// `pipe(2)`: returns `(read_fd, write_fd)`.
    pub fn pipe(&self, pid: Pid) -> SysResult<(u32, u32)> {
        self.charge_syscall();
        let pipe = Pipe::new();
        self.with_proc_mut(pid, |p| {
            let r = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::PipeRead(Arc::clone(&pipe)),
                    flags: OpenFlags::RDONLY,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            });
            let w = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::PipeWrite(Arc::clone(&pipe)),
                    flags: OpenFlags::WRONLY,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            });
            Ok((r, w))
        })
    }

    /// `socketpair(AF_UNIX, SOCK_STREAM)`.
    pub fn socketpair(&self, pid: Pid) -> SysResult<(u32, u32)> {
        self.charge_syscall();
        let (a, b) = SocketEnd::pair();
        self.with_proc_mut(pid, |p| {
            let fa = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(a.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            });
            let fb = p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(b.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            });
            Ok((fa, fb))
        })
    }

    /// `accept(2)` on a listener fd.
    pub fn accept(&self, pid: Pid, listener_fd: u32) -> SysResult<u32> {
        self.charge_syscall();
        let listener = self.with_proc(pid, |p| {
            let entry = p.fds.get(&listener_fd).ok_or(Errno::EBADF)?;
            match &entry.file.kind {
                FileKind::Listener(l) => Ok(Arc::clone(l)),
                _ => Err(Errno::ENOTSOCK),
            }
        })?;
        let end = listener.accept()?;
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(end.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            }))
        })
    }

    /// `epoll_create1(2)`.
    pub fn epoll_create(&self, pid: Pid) -> SysResult<u32> {
        self.charge_syscall();
        let ep = Epoll::new();
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Epoll(ep.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new(0),
                }),
                cloexec: false,
            }))
        })
    }

    /// `epoll_ctl(EPOLL_CTL_ADD)`: watches `fd` under `token`.
    pub fn epoll_add(&self, pid: Pid, epfd: u32, fd: u32, token: u64, ev: Events) -> SysResult<()> {
        self.charge_syscall();
        let (ep, source) = self.with_proc(pid, |p| {
            let ep = match &p.fds.get(&epfd).ok_or(Errno::EBADF)?.file.kind {
                FileKind::Epoll(e) => Arc::clone(e),
                _ => return Err(Errno::EINVAL),
            };
            let entry = p.fds.get(&fd).ok_or(Errno::EBADF)?;
            let source: Arc<dyn crate::pipe::Pollable> = match &entry.file.kind {
                FileKind::PipeRead(pipe) | FileKind::PipeWrite(pipe) => Arc::clone(pipe) as _,
                FileKind::Socket(s) => Arc::new(s.clone()) as _,
                FileKind::Listener(l) => Arc::clone(l) as _,
                _ => return Err(Errno::EPERM),
            };
            Ok((ep, source))
        })?;
        ep.add(token, source, ev)
    }

    /// `epoll_wait(2)` (non-blocking: returns what is ready now).
    pub fn epoll_wait(&self, pid: Pid, epfd: u32) -> SysResult<Vec<(u64, Events)>> {
        self.charge_syscall();
        let ep = self.with_proc(pid, |p| {
            match &p.fds.get(&epfd).ok_or(Errno::EBADF)?.file.kind {
                FileKind::Epoll(e) => Ok(Arc::clone(e)),
                _ => Err(Errno::EINVAL),
            }
        })?;
        Ok(ep.wait())
    }

    /// `splice(2)`: moves up to `len` bytes between two descriptors without
    /// copying through userspace. Supports pipe→pipe, socket→pipe and
    /// pipe→socket — the combinations CNTR's socket proxy uses (§3.2.4).
    pub fn splice(&self, pid: Pid, fd_in: u32, fd_out: u32, len: usize) -> SysResult<usize> {
        self.charge_syscall();
        let (src, dst) = self.with_proc(pid, |p| {
            let a = Arc::clone(&p.fds.get(&fd_in).ok_or(Errno::EBADF)?.file);
            let b = Arc::clone(&p.fds.get(&fd_out).ok_or(Errno::EBADF)?.file);
            Ok((a, b))
        })?;
        // Stage through a bounded kernel buffer; remap cost, not copy cost.
        let mut buf = vec![0u8; len.min(crate::pipe::PIPE_CAPACITY)];
        let n = match &src.kind {
            FileKind::PipeRead(pipe) => pipe.read(&mut buf)?,
            FileKind::Socket(s) => s.recv(&mut buf)?,
            _ => return Err(Errno::EINVAL),
        };
        if n == 0 {
            return Ok(0);
        }
        let written = match &dst.kind {
            FileKind::PipeWrite(pipe) => pipe.write(&buf[..n])?,
            FileKind::Socket(s) => s.send(&buf[..n])?,
            _ => return Err(Errno::EINVAL),
        };
        // Unwritten remainder is pushed back conceptually; the simulation
        // only reports what moved. Charge splice (page-remap) cost.
        self.inner
            .clock
            .advance(self.inner.cost.splice(written as u64));
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;

    fn kernel() -> Kernel {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default())
    }

    #[test]
    fn boot_creates_init() {
        let k = kernel();
        let info = k.proc_info(Pid::INIT).unwrap();
        assert_eq!(info.name, "init");
        assert!(info.creds.caps.has(Capability::SysAdmin));
        assert_eq!(k.pids(), vec![Pid::INIT]);
    }

    #[test]
    fn fork_exit_reap() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        assert_eq!(child, Pid(2));
        assert!(k.is_alive(child));
        assert_eq!(k.proc_info(child).unwrap().ppid, Pid::INIT);
        k.exit(child).unwrap();
        assert!(!k.is_alive(child));
        assert_eq!(k.reap(Pid::INIT), Err(Errno::EBUSY));
        k.reap(child).unwrap();
        assert_eq!(k.proc_info(child).map(|_| ()), Err(Errno::ESRCH));
    }

    #[test]
    fn unshare_gives_fresh_namespaces() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        let before = k.proc_info(child).unwrap().ns;
        k.unshare(child, &[NamespaceKind::Mount, NamespaceKind::Uts])
            .unwrap();
        let after = k.proc_info(child).unwrap().ns;
        assert_eq!(
            before.diff(&after),
            vec![NamespaceKind::Mount, NamespaceKind::Uts]
        );
        // Hostname was inherited into the new UTS namespace.
        assert_eq!(k.gethostname(child).unwrap(), "host");
        k.sethostname(child, "container").unwrap();
        assert_eq!(k.gethostname(child).unwrap(), "container");
        assert_eq!(k.gethostname(Pid::INIT).unwrap(), "host");
    }

    #[test]
    fn unshare_requires_sys_admin() {
        let k = kernel();
        let child = k.fork(Pid::INIT).unwrap();
        let mut creds = Credentials::host_root();
        creds.caps.remove(Capability::SysAdmin);
        k.set_creds(child, creds).unwrap();
        assert_eq!(k.unshare(child, &[NamespaceKind::Mount]), Err(Errno::EPERM));
    }

    #[test]
    fn setns_adopts_target_namespaces() {
        let k = kernel();
        let container = k.fork(Pid::INIT).unwrap();
        k.unshare(container, &[NamespaceKind::Mount, NamespaceKind::Pid])
            .unwrap();
        let tool = k.fork(Pid::INIT).unwrap();
        k.setns(tool, container, &[NamespaceKind::Mount, NamespaceKind::Pid])
            .unwrap();
        let a = k.proc_info(container).unwrap().ns;
        let b = k.proc_info(tool).unwrap().ns;
        assert_eq!(a.mount, b.mount);
        assert_eq!(a.pid, b.pid);
        assert_ne!(a.net, NamespaceId(0));
    }

    #[test]
    fn environment_roundtrip() {
        let k = kernel();
        k.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
        assert_eq!(
            k.getenv(Pid::INIT, "PATH").unwrap().as_deref(),
            Some("/usr/bin")
        );
        let mut env = BTreeMap::new();
        env.insert("ONLY".to_string(), "this".to_string());
        k.set_environ(Pid::INIT, env).unwrap();
        assert_eq!(k.getenv(Pid::INIT, "PATH").unwrap(), None);
        assert_eq!(
            k.getenv(Pid::INIT, "ONLY").unwrap().as_deref(),
            Some("this")
        );
    }

    #[test]
    fn cgroup_attach_updates_process() {
        let k = kernel();
        let g = k.cgroup_create("/docker").unwrap();
        k.cgroup_attach(Pid::INIT, &g).unwrap();
        assert_eq!(k.proc_info(Pid::INIT).unwrap().cgroup, g);
        assert_eq!(k.cgroup_members(&g).unwrap(), vec![Pid::INIT]);
    }

    #[test]
    fn pipes_and_splice() {
        let k = kernel();
        let (r1, w1) = k.pipe(Pid::INIT).unwrap();
        let (r2, w2) = k.pipe(Pid::INIT).unwrap();
        // Feed pipe 1, splice into pipe 2, read from pipe 2.
        k.write_fd(Pid::INIT, w1, b"spliced bytes").unwrap();
        let moved = k.splice(Pid::INIT, r1, w2, 1024).unwrap();
        assert_eq!(moved, 13);
        let mut buf = [0u8; 32];
        let n = k.read_fd(Pid::INIT, r2, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"spliced bytes");
    }

    #[test]
    fn socketpair_roundtrip() {
        let k = kernel();
        let (a, b) = k.socketpair(Pid::INIT).unwrap();
        k.write_fd(Pid::INIT, a, b"msg").unwrap();
        let mut buf = [0u8; 8];
        let n = k.read_fd(Pid::INIT, b, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"msg");
    }

    #[test]
    fn epoll_over_pipe() {
        let k = kernel();
        let ep = k.epoll_create(Pid::INIT).unwrap();
        let (r, w) = k.pipe(Pid::INIT).unwrap();
        k.epoll_add(Pid::INIT, ep, r, 42, Events::IN).unwrap();
        assert!(k.epoll_wait(Pid::INIT, ep).unwrap().is_empty());
        k.write_fd(Pid::INIT, w, b"!").unwrap();
        let ready = k.epoll_wait(Pid::INIT, ep).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 42);
    }
}
