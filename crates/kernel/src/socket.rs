//! Unix domain stream sockets.
//!
//! CNTR's socket proxy (paper §3.2.4, "Unix socket forwarding") exists
//! because a Unix socket *file* visible through CntrFS has a different inode
//! than the real socket, so the kernel will not associate `connect()` on it
//! with the listening server. The proxy accepts connections inside the
//! application container and splices the bytes to the real server socket in
//! the debug container or on the host. These are the sockets it proxies.

use crate::pipe::{Pipe, Pollable};
use cntr_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One established connection: a pair of directional byte streams.
#[derive(Debug)]
pub struct SocketConn {
    a_to_b: Arc<Pipe>,
    b_to_a: Arc<Pipe>,
}

/// Which side of a connection an endpoint holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

/// One endpoint of an established Unix stream connection.
#[derive(Debug, Clone)]
pub struct SocketEnd {
    conn: Arc<SocketConn>,
    side: Side,
}

impl SocketEnd {
    /// Creates a connected socket pair (`socketpair(2)`).
    pub fn pair() -> (SocketEnd, SocketEnd) {
        let conn = Arc::new(SocketConn {
            a_to_b: Pipe::new(),
            b_to_a: Pipe::new(),
        });
        (
            SocketEnd {
                conn: Arc::clone(&conn),
                side: Side::A,
            },
            SocketEnd {
                conn,
                side: Side::B,
            },
        )
    }

    fn out_pipe(&self) -> &Arc<Pipe> {
        match self.side {
            Side::A => &self.conn.a_to_b,
            Side::B => &self.conn.b_to_a,
        }
    }

    fn in_pipe(&self) -> &Arc<Pipe> {
        match self.side {
            Side::A => &self.conn.b_to_a,
            Side::B => &self.conn.a_to_b,
        }
    }

    /// Sends bytes to the peer.
    pub fn send(&self, data: &[u8]) -> SysResult<usize> {
        self.out_pipe().write(data).map_err(|e| {
            if e == Errno::EPIPE {
                Errno::ECONNRESET
            } else {
                e
            }
        })
    }

    /// Receives bytes from the peer (0 = orderly shutdown).
    pub fn recv(&self, buf: &mut [u8]) -> SysResult<usize> {
        self.in_pipe().read(buf)
    }

    /// Shuts down this endpoint (both directions).
    pub fn shutdown(&self) {
        self.out_pipe().close_write();
        self.in_pipe().close_read();
    }

    /// `shutdown(SHUT_WR)`: closes the outbound direction only. The peer
    /// drains whatever is in flight and then reads EOF; this endpoint can
    /// still receive. This is how the attach plane propagates a
    /// half-close across a forwarded pair.
    pub fn shutdown_write(&self) {
        self.out_pipe().close_write();
    }

    /// True once this endpoint's outbound direction has been shut down.
    pub fn write_shutdown(&self) -> bool {
        self.out_pipe().write_closed()
    }

    /// Puts bytes back at the front of the receive queue, undoing a
    /// `recv` (the `splice` push-back path).
    pub fn unrecv(&self, data: &[u8]) {
        self.in_pipe().unread(data);
    }

    /// Bytes queued for reading.
    pub fn pending(&self) -> usize {
        self.in_pipe().len()
    }
}

impl Pollable for SocketEnd {
    fn poll_readable(&self) -> bool {
        self.in_pipe().poll_readable()
    }

    fn poll_writable(&self) -> bool {
        self.out_pipe().poll_writable()
    }

    fn poll_hangup(&self) -> bool {
        self.in_pipe().write_closed() && self.in_pipe().is_empty()
    }
}

/// A listening Unix socket bound to a filesystem path.
#[derive(Debug)]
pub struct SocketListener {
    /// The address it was bound to (diagnostics).
    pub path: String,
    backlog: Mutex<VecDeque<SocketEnd>>,
    closed: Mutex<bool>,
}

impl SocketListener {
    /// Creates a listener (the VFS creates the socket inode separately).
    pub fn new(path: &str) -> Arc<SocketListener> {
        Arc::new(SocketListener {
            path: path.to_string(),
            backlog: Mutex::new_class("kernel.socket.backlog", VecDeque::new()),
            closed: Mutex::new_class("kernel.socket.closed", false),
        })
    }

    /// Client side of `connect(2)`: enqueues one end, returns the other.
    pub fn connect(&self) -> SysResult<SocketEnd> {
        if *self.closed.lock() {
            return Err(Errno::ECONNREFUSED);
        }
        let (server, client) = SocketEnd::pair();
        self.backlog.lock().push_back(server);
        Ok(client)
    }

    /// Server side of `accept(2)`; `EAGAIN` when the backlog is empty.
    pub fn accept(&self) -> SysResult<SocketEnd> {
        self.backlog.lock().pop_front().ok_or(Errno::EAGAIN)
    }

    /// Stops accepting connections.
    pub fn close(&self) {
        *self.closed.lock() = true;
    }

    /// Pending un-accepted connections.
    pub fn backlog_len(&self) -> usize {
        self.backlog.lock().len()
    }
}

impl Pollable for SocketListener {
    fn poll_readable(&self) -> bool {
        !self.backlog.lock().is_empty()
    }

    fn poll_writable(&self) -> bool {
        false
    }

    fn poll_hangup(&self) -> bool {
        *self.closed.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_talks_both_ways() {
        let (a, b) = SocketEnd::pair();
        a.send(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn listener_connect_accept() {
        let l = SocketListener::new("/run/x11.sock");
        assert_eq!(l.accept().map(|_| ()), Err(Errno::EAGAIN));
        let client = l.connect().unwrap();
        assert!(l.poll_readable());
        let server = l.accept().unwrap();
        client.send(b"hello x11").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.recv(&mut buf).unwrap(), 9);
    }

    #[test]
    fn closed_listener_refuses() {
        let l = SocketListener::new("/sock");
        l.close();
        assert_eq!(l.connect().map(|_| ()), Err(Errno::ECONNREFUSED));
    }

    #[test]
    fn shutdown_propagates_to_peer() {
        let (a, b) = SocketEnd::pair();
        a.send(b"bye").unwrap();
        a.shutdown();
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(b.recv(&mut buf).unwrap(), 0, "EOF after shutdown");
        assert!(b.poll_hangup());
        assert_eq!(b.send(b"x"), Err(Errno::ECONNRESET));
    }
}
