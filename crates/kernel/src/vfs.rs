//! The VFS: path resolution across mounts, and every path/fd system call.
//!
//! Resolution follows Linux: walk component by component from the process
//! root (absolute paths) or cwd (relative), cross mountpoints downward into
//! the topmost stacked mount, handle `..` physically via the walk stack
//! (never escaping a `chroot` jail), and chase symlinks up to a depth of 40.
//! Reads and writes on regular files go through the shared page cache
//! according to the mount's [`CacheMode`].

use crate::kernel::Kernel;
use crate::mount::{CacheMode, Mount, MountFlags, MountId, MountNs, Propagation};
use crate::pagecache::FileRef;
use crate::process::{FdEntry, FileKind, OpenFile, VfsLoc};
use crate::socket::{SocketEnd, SocketListener};
use cntr_fs::{Filesystem, FsContext, XattrFlags};
use cntr_types::{
    Capability, DevId, Dirent, Errno, FileType, Gid, Ino, Mode, OpenFlags, Pid, RenameFlags,
    SetAttr, Stat, SysResult, Uid,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Maximum symlink traversals in one resolution (Linux: 40).
const MAX_SYMLINKS: u32 = 40;

/// Result of resolving a path.
#[derive(Clone)]
pub struct Resolved {
    /// Location (mount + inode).
    pub loc: VfsLoc,
    /// The filesystem of that mount.
    pub fs: Arc<dyn Filesystem>,
    /// Attributes at resolution time.
    pub stat: Stat,
    /// The mount's cache policy.
    pub cache: CacheMode,
    /// Whether the mount is read-only.
    pub readonly: bool,
}

/// Which seek anchor `lseek` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the beginning.
    Set,
    /// From the current offset.
    Cur,
    /// From the end of file.
    End,
}

/// `access(2)` request bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Read permission wanted.
    pub r: bool,
    /// Write permission wanted.
    pub w: bool,
    /// Execute/search permission wanted.
    pub x: bool,
}

impl Access {
    /// Read-only check.
    pub const R: Access = Access {
        r: true,
        w: false,
        x: false,
    };
    /// Write-only check.
    pub const W: Access = Access {
        r: false,
        w: true,
        x: false,
    };
    /// Execute check.
    pub const X: Access = Access {
        r: false,
        w: false,
        x: true,
    };
}

fn fs_context(creds: &crate::cred::Credentials) -> FsContext {
    FsContext {
        uid: creds.uid,
        gid: creds.gid,
        groups: creds.groups.clone(),
        cap_fsetid: creds.caps.has(Capability::Fsetid),
    }
}

/// Classic Unix permission check with `CAP_DAC_OVERRIDE` semantics.
fn check_access(stat: &Stat, creds: &crate::cred::Credentials, want: Access) -> SysResult<()> {
    if creds.caps.has(Capability::DacOverride) {
        // DAC override grants r/w always; x needs at least one x bit.
        if want.x {
            let any_x = stat.mode.bits() & 0o111 != 0 || stat.is_dir();
            if !any_x {
                return Err(Errno::EACCES);
            }
        }
        return Ok(());
    }
    let class = if creds.uid == stat.uid {
        0
    } else if creds.gid == stat.gid || creds.groups.contains(&stat.gid) {
        1
    } else {
        2
    };
    let bits = stat.mode.class_bits(class);
    let need = (u8::from(want.r) << 2) | (u8::from(want.w) << 1) | u8::from(want.x);
    if bits & need == need {
        Ok(())
    } else {
        Err(Errno::EACCES)
    }
}

struct WalkState {
    ns: MountNs,
    root: VfsLoc,
    cur: VfsLoc,
    stack: Vec<VfsLoc>,
    symlinks: u32,
}

impl Kernel {
    fn snapshot_ns(&self, pid: Pid) -> SysResult<(MountNs, VfsLoc, VfsLoc)> {
        // Processes-before-mounts: the shard lock is released before the
        // mount table is read; the walk then runs on a private snapshot.
        let (ns_id, root, cwd) = self.with_proc(pid, |p| Ok((p.ns.mount, p.root, p.cwd)))?;
        let ns = self.inner.mounts.snapshot(ns_id)?;
        Ok((ns, root, cwd))
    }

    /// Descends through stacked mounts at `loc`.
    fn cross_mounts(ns: &MountNs, mut loc: VfsLoc) -> VfsLoc {
        while let Some(m) = ns.mount_at(loc.mount, loc.ino) {
            loc = VfsLoc {
                mount: m.id,
                ino: m.root_ino,
            };
        }
        loc
    }

    fn walk(&self, w: &mut WalkState, path: &str, follow_last: bool) -> SysResult<()> {
        let mut components: Vec<String> = Vec::new();
        if path.starts_with('/') {
            w.cur = Self::cross_mounts(&w.ns, w.root);
            w.stack.clear();
        }
        components.extend(
            path.split('/')
                .filter(|c| !c.is_empty() && *c != ".")
                .map(String::from),
        );

        let mut i = 0;
        while i < components.len() {
            let name = components[i].clone();
            let is_last = i == components.len() - 1;
            if name == ".." {
                if let Some(prev) = w.stack.pop() {
                    w.cur = prev;
                }
                // At the root the stack is empty: `..` stays (chroot jail).
                i += 1;
                continue;
            }
            let mount = w.ns.get(w.cur.mount)?.clone();
            self.inner.clock.advance(self.inner.cost.dcache_hit_ns);
            let stat = mount.fs.lookup(w.cur.ino, &name)?;
            if stat.is_symlink() && (!is_last || follow_last) {
                w.symlinks += 1;
                if w.symlinks > MAX_SYMLINKS {
                    return Err(Errno::ELOOP);
                }
                let target = mount.fs.readlink(stat.ino)?;
                if target.starts_with('/') {
                    w.cur = Self::cross_mounts(&w.ns, w.root);
                    w.stack.clear();
                }
                let mut rest: Vec<String> = target
                    .split('/')
                    .filter(|c| !c.is_empty() && *c != ".")
                    .map(String::from)
                    .collect();
                rest.extend(components.drain(i + 1..));
                components.truncate(i);
                components.append(&mut rest);
                // Restart at the spliced components.
                continue;
            }
            let next = VfsLoc {
                mount: w.cur.mount,
                ino: stat.ino,
            };
            let crossed = Self::cross_mounts(&w.ns, next);
            w.stack.push(w.cur);
            w.cur = crossed;
            i += 1;
        }
        Ok(())
    }

    /// Resolves `path` for `pid`. `follow_last` controls final-symlink
    /// chasing (`stat` vs `lstat`, `O_NOFOLLOW`).
    pub fn resolve(&self, pid: Pid, path: &str, follow_last: bool) -> SysResult<Resolved> {
        let (ns, root, cwd) = self.snapshot_ns(pid)?;
        let mut w = WalkState {
            ns,
            root,
            cur: cwd,
            stack: Vec::new(),
            symlinks: 0,
        };
        if !path.starts_with('/') {
            // Rebuild the ancestor stack for the cwd by resolving the stored
            // canonical cwd path (kept symlink-free by chdir).
            let cwd_path = self.with_proc(pid, |p| Ok(p.cwd_path.clone()))?;
            w.cur = Self::cross_mounts(&w.ns, w.root);
            self.walk(&mut w, &cwd_path, true)?;
        }
        self.walk(&mut w, path, follow_last)?;
        let mount = w.ns.get(w.cur.mount)?.clone();
        let stat = mount.fs.getattr(w.cur.ino)?;
        Ok(Resolved {
            loc: w.cur,
            fs: mount.fs,
            stat,
            cache: mount.cache,
            readonly: mount.flags.readonly,
        })
    }

    /// Resolves the parent directory of `path`, returning the final
    /// component name alongside.
    pub fn resolve_parent(&self, pid: Pid, path: &str) -> SysResult<(Resolved, String)> {
        let trimmed = path.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(Errno::EEXIST);
        }
        let (dir, name) = match trimmed.rsplit_once('/') {
            Some(("", n)) => ("/".to_string(), n.to_string()),
            Some((d, n)) => (d.to_string(), n.to_string()),
            None => (".".to_string(), trimmed.to_string()),
        };
        if name.is_empty() || name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        let dir = if dir == "." && !path.starts_with('/') {
            ".".to_string()
        } else {
            dir
        };
        let parent = self.resolve(pid, &dir, true)?;
        if !parent.stat.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent, name))
    }

    // ------------------------------------------------------------------
    // open / close / read / write
    // ------------------------------------------------------------------

    /// `open(2)` / `openat(2)` with `O_CREAT` support.
    pub fn open(&self, pid: Pid, path: &str, flags: OpenFlags, mode: Mode) -> SysResult<u32> {
        self.charge_syscall();
        let (creds, mnt_ns) = self.with_proc(pid, |p| Ok((p.creds.clone(), p.ns.mount)))?;
        let follow = !flags.contains(OpenFlags::NOFOLLOW);

        let resolved = match self.resolve(pid, path, follow) {
            Ok(r) => {
                if flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL) {
                    return Err(Errno::EEXIST);
                }
                if r.stat.is_symlink() {
                    return Err(Errno::ELOOP);
                }
                r
            }
            Err(Errno::ENOENT) if flags.contains(OpenFlags::CREAT) => {
                let (parent, name) = self.resolve_parent(pid, path)?;
                if parent.readonly {
                    return Err(Errno::EROFS);
                }
                check_access(&parent.stat, &creds, Access::W)?;
                let ctx = fs_context(&creds);
                let st =
                    parent
                        .fs
                        .mknod(parent.loc.ino, &name, FileType::Regular, mode, 0, &ctx)?;
                Resolved {
                    loc: VfsLoc {
                        mount: parent.loc.mount,
                        ino: st.ino,
                    },
                    fs: parent.fs,
                    stat: st,
                    cache: parent.cache,
                    readonly: parent.readonly,
                }
            }
            Err(e) => return Err(e),
        };

        let want = Access {
            r: flags.mode.readable(),
            w: flags.mode.writable(),
            x: false,
        };
        check_access(&resolved.stat, &creds, want)?;
        if flags.mode.writable() && resolved.readonly {
            return Err(Errno::EROFS);
        }

        let kind = match resolved.stat.ftype {
            FileType::Directory => {
                if flags.mode.writable() {
                    return Err(Errno::EISDIR);
                }
                FileKind::Directory {
                    mount: resolved.loc.mount,
                    dev: resolved.fs.fs_id(),
                    ino: resolved.loc.ino,
                }
            }
            FileType::CharDevice => match resolved.stat.rdev {
                0x0103 => FileKind::DevNull,
                0x0105 => FileKind::DevZero,
                0x0109 => FileKind::DevUrandom,
                // /dev/fuse (10:229) and /dev/tty (5:0): control-style
                // descriptors; the FUSE session itself is modelled by
                // `cntr-fuse`, so the fd only needs to exist.
                0x0AE5 | 0x0500 => FileKind::DevNull,
                _ => return Err(Errno::ENXIO),
            },
            FileType::Socket => return Err(Errno::ENXIO),
            FileType::Fifo | FileType::BlockDevice => return Err(Errno::ENXIO),
            FileType::Symlink => return Err(Errno::ELOOP),
            FileType::Regular => {
                let dev = resolved.fs.fs_id();
                self.fanotify_record(mnt_ns, dev, resolved.loc.ino, path);
                // FOPEN_KEEP_CACHE off: invalidate this file's pages on open.
                if !resolved.cache.keep_cache {
                    self.inner
                        .page_cache
                        .invalidate_file(dev, resolved.loc.ino)?;
                }
                // O_DIRECT coherency: flush and drop buffered pages so
                // direct I/O observes (and produces) on-disk state.
                if flags.contains(OpenFlags::DIRECT) {
                    self.inner
                        .page_cache
                        .invalidate_file(dev, resolved.loc.ino)?;
                }
                let fh = resolved.fs.open(resolved.loc.ino, flags)?;
                if flags.contains(OpenFlags::TRUNC) && flags.mode.writable() {
                    self.inner
                        .page_cache
                        .truncate_file(dev, resolved.loc.ino, 0);
                }
                FileKind::Regular {
                    mount: resolved.loc.mount,
                    dev,
                    cache: resolved.cache,
                    file: Arc::new(FileRef {
                        fs: Arc::clone(&resolved.fs),
                        ino: resolved.loc.ino,
                        fh,
                    }),
                }
            }
        };

        let limit = self.rlimits(pid)?.get(cntr_types::RlimitKind::Nofile).soft;
        self.with_proc_mut(pid, |p| {
            if p.fds.len() as u64 >= limit {
                return Err(Errno::EMFILE);
            }
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind,
                    flags,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: flags.contains(OpenFlags::CLOEXEC),
            }))
        })
    }

    /// `close(2)`. Pipe ends get their half-close semantics; the last
    /// descriptor of a bound listener unbinds it (see
    /// `Kernel::release_fd_entry`).
    pub fn close(&self, pid: Pid, fd: u32) -> SysResult<()> {
        self.charge_syscall();
        let entry = self.with_proc_mut(pid, |p| p.fds.remove(&fd).ok_or(Errno::EBADF))?;
        self.release_fd_entry(entry);
        Ok(())
    }

    /// `dup(2)`.
    pub fn dup(&self, pid: Pid, fd: u32) -> SysResult<u32> {
        self.charge_syscall();
        self.with_proc_mut(pid, |p| {
            let entry = p.fds.get(&fd).ok_or(Errno::EBADF)?.clone();
            Ok(p.install_fd(entry))
        })
    }

    fn get_file(&self, pid: Pid, fd: u32) -> SysResult<Arc<OpenFile>> {
        self.with_proc(pid, |p| {
            p.fds
                .get(&fd)
                .map(|e| Arc::clone(&e.file))
                .ok_or(Errno::EBADF)
        })
    }

    /// Reads at the fd's current offset, advancing it.
    pub fn read_fd(&self, pid: Pid, fd: u32, buf: &mut [u8]) -> SysResult<usize> {
        let file = self.get_file(pid, fd)?;
        let mut off = file.offset.lock();
        let n = self.read_at_inner(pid, &file, *off, buf)?;
        *off += n as u64;
        Ok(n)
    }

    /// `pread(2)`.
    pub fn pread(&self, pid: Pid, fd: u32, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        let file = self.get_file(pid, fd)?;
        self.read_at_inner(pid, &file, offset, buf)
    }

    fn read_at_inner(
        &self,
        _pid: Pid,
        file: &OpenFile,
        offset: u64,
        buf: &mut [u8],
    ) -> SysResult<usize> {
        self.charge_syscall();
        match &file.kind {
            FileKind::Regular {
                dev,
                cache,
                file: fref,
                ..
            } => {
                if !file.flags.mode.readable() {
                    return Err(Errno::EBADF);
                }
                if file.flags.contains(OpenFlags::DIRECT) {
                    return fref.fs.read(fref.ino, fref.fh, offset, buf);
                }
                let fs_size = fref.fs.getattr(fref.ino)?.size;
                let size = self
                    .inner
                    .page_cache
                    .effective_size(*dev, fref.ino, fs_size);
                if offset >= size {
                    return Ok(0);
                }
                let n = (buf.len() as u64).min(size - offset) as usize;
                self.inner
                    .page_cache
                    .read(*dev, *cache, fref, offset, &mut buf[..n])
            }
            FileKind::Directory { .. } => Err(Errno::EISDIR),
            FileKind::PipeRead(p) => p.read(buf),
            FileKind::PipeWrite(_) => Err(Errno::EBADF),
            FileKind::Socket(s) => s.recv(buf),
            FileKind::Listener(_) | FileKind::Epoll(_) => Err(Errno::EINVAL),
            FileKind::DevNull => Ok(0),
            FileKind::DevZero => {
                buf.fill(0);
                Ok(buf.len())
            }
            FileKind::DevUrandom => {
                // Deterministic xorshift stream seeded by the offset.
                let mut x = offset.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for b in buf.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *b = x as u8;
                }
                Ok(buf.len())
            }
        }
    }

    /// Writes at the fd's current offset, advancing it.
    pub fn write_fd(&self, pid: Pid, fd: u32, data: &[u8]) -> SysResult<usize> {
        let file = self.get_file(pid, fd)?;
        let mut off = file.offset.lock();
        let n = self.write_at_inner(pid, &file, *off, data)?;
        *off = if file.flags.contains(OpenFlags::APPEND) {
            // Append mode: offset tracks EOF after the write.
            match &file.kind {
                FileKind::Regular {
                    dev, file: fref, ..
                } => {
                    let fs_size = fref.fs.getattr(fref.ino)?.size;
                    self.inner
                        .page_cache
                        .effective_size(*dev, fref.ino, fs_size)
                }
                _ => *off + n as u64,
            }
        } else {
            *off + n as u64
        };
        Ok(n)
    }

    /// `pwrite(2)`.
    pub fn pwrite(&self, pid: Pid, fd: u32, offset: u64, data: &[u8]) -> SysResult<usize> {
        let file = self.get_file(pid, fd)?;
        self.write_at_inner(pid, &file, offset, data)
    }

    fn write_at_inner(
        &self,
        pid: Pid,
        file: &OpenFile,
        offset: u64,
        data: &[u8],
    ) -> SysResult<usize> {
        self.charge_syscall();
        match &file.kind {
            FileKind::Regular {
                dev,
                cache,
                file: fref,
                ..
            } => {
                if !file.flags.mode.writable() {
                    return Err(Errno::EBADF);
                }
                let fs_stat = fref.fs.getattr(fref.ino)?;
                let fs_size = fs_stat.size;
                let eff = self
                    .inner
                    .page_cache
                    .effective_size(*dev, fref.ino, fs_size);
                let offset = if file.flags.contains(OpenFlags::APPEND) {
                    eff
                } else {
                    offset
                };
                // Writes strip setuid/setgid immediately (the data may sit
                // in the page cache for a while, but the mode change is a
                // metadata operation and happens at write time).
                if fs_stat.mode.is_setuid() || fs_stat.mode.is_setgid() {
                    let cleared = fs_stat.mode.clear_suid_sgid();
                    let creds = self.creds(pid)?;
                    let _ =
                        fref.fs
                            .setattr(fref.ino, &SetAttr::chmod(cleared), &fs_context(&creds));
                }
                // RLIMIT_FSIZE: enforced only when the filesystem replays the
                // caller's limits (CntrFS does not — xfstests #228).
                if fref.fs.features().enforces_caller_fsize {
                    let end = offset + data.len() as u64;
                    if end > eff {
                        self.rlimits(pid)?.check_fsize(end)?;
                    }
                }
                // Capability stripping: the kernel consults
                // `security.capability` before every write. Native
                // filesystems answer from the inode; FUSE pays a round trip
                // each time (the Apache result in Figure 2).
                if !fref.fs.features().xattr_cached {
                    let _ = fref.fs.getxattr(fref.ino, "security.capability");
                }
                if file.flags.contains(OpenFlags::DIRECT) {
                    return fref.fs.write(fref.ino, fref.fh, offset, data);
                }
                let n = self
                    .inner
                    .page_cache
                    .write(*dev, *cache, fref, offset, data)?;
                if file.flags.contains(OpenFlags::SYNC) {
                    self.inner.page_cache.fsync(*dev, fref, true)?;
                }
                Ok(n)
            }
            FileKind::Directory { .. } => Err(Errno::EISDIR),
            FileKind::PipeWrite(p) => p.write(data),
            FileKind::PipeRead(_) => Err(Errno::EBADF),
            FileKind::Socket(s) => s.send(data),
            FileKind::Listener(_) | FileKind::Epoll(_) => Err(Errno::EINVAL),
            FileKind::DevNull | FileKind::DevZero | FileKind::DevUrandom => Ok(data.len()),
        }
    }

    /// `lseek(2)`.
    pub fn lseek(&self, pid: Pid, fd: u32, offset: i64, whence: Whence) -> SysResult<u64> {
        self.charge_syscall();
        let file = self.get_file(pid, fd)?;
        let size = match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => {
                let fs_size = fref.fs.getattr(fref.ino)?.size;
                self.inner
                    .page_cache
                    .effective_size(*dev, fref.ino, fs_size)
            }
            FileKind::Directory { .. } => 0,
            _ => return Err(Errno::ESPIPE),
        };
        let mut off = file.offset.lock();
        let base = match whence {
            Whence::Set => 0i128,
            Whence::Cur => *off as i128,
            Whence::End => size as i128,
        };
        let new = base + offset as i128;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        *off = new as u64;
        Ok(*off)
    }

    /// `fsync(2)` / `fdatasync(2)`.
    pub fn fsync(&self, pid: Pid, fd: u32, datasync: bool) -> SysResult<()> {
        self.charge_syscall();
        let file = self.get_file(pid, fd)?;
        match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => self.inner.page_cache.fsync(*dev, fref, datasync),
            _ => Err(Errno::EINVAL),
        }
    }

    /// A relaxed sync: dirty pages are handed to the filesystem (background
    /// writeback) but no durability barrier is awaited. This is CNTR's
    /// delayed-sync behaviour under `FUSE_WRITEBACK_CACHE` (paper §3.3:
    /// "this optimization sacrifices write consistency for performance by
    /// delaying the sync operation").
    pub fn fsync_relaxed(&self, pid: Pid, fd: u32) -> SysResult<()> {
        self.charge_syscall();
        let file = self.get_file(pid, fd)?;
        match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => self.inner.page_cache.flush_file(*dev, fref.ino),
            _ => Err(Errno::EINVAL),
        }
    }

    // ------------------------------------------------------------------
    // Metadata syscalls
    // ------------------------------------------------------------------

    /// `stat(2)` (follows symlinks).
    pub fn stat(&self, pid: Pid, path: &str) -> SysResult<Stat> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        let mut st = r.stat;
        // Writeback may hold a larger size and newer mtime than the
        // filesystem has seen.
        let dev = r.fs.fs_id();
        st.size = self.inner.page_cache.effective_size(dev, st.ino, st.size);
        if let Some(t) = self.inner.page_cache.pending_mtime(dev, st.ino) {
            st.mtime = st.mtime.max(t);
        }
        Ok(st)
    }

    /// `lstat(2)` (does not follow the final symlink).
    pub fn lstat(&self, pid: Pid, path: &str) -> SysResult<Stat> {
        self.charge_syscall();
        let r = self.resolve(pid, path, false)?;
        let mut st = r.stat;
        let dev = r.fs.fs_id();
        st.size = self.inner.page_cache.effective_size(dev, st.ino, st.size);
        if let Some(t) = self.inner.page_cache.pending_mtime(dev, st.ino) {
            st.mtime = st.mtime.max(t);
        }
        Ok(st)
    }

    /// `fstat(2)`.
    pub fn fstat(&self, pid: Pid, fd: u32) -> SysResult<Stat> {
        self.charge_syscall();
        let file = self.get_file(pid, fd)?;
        match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => {
                let mut st = fref.fs.getattr(fref.ino)?;
                st.size = self.inner.page_cache.effective_size(*dev, st.ino, st.size);
                if let Some(t) = self.inner.page_cache.pending_mtime(*dev, st.ino) {
                    st.mtime = st.mtime.max(t);
                }
                Ok(st)
            }
            FileKind::Directory { mount, ino, .. } => {
                let (ns, _, _) = self.snapshot_ns(pid)?;
                ns.get(*mount)?.fs.getattr(*ino)
            }
            _ => Err(Errno::EBADF),
        }
    }

    /// `mkdir(2)`.
    pub fn mkdir(&self, pid: Pid, path: &str, mode: Mode) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let (parent, name) = self.resolve_parent(pid, path)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        check_access(&parent.stat, &creds, Access::W)?;
        parent
            .fs
            .mkdir(parent.loc.ino, &name, mode, &fs_context(&creds))
            .map(|_| ())
    }

    /// `mknod(2)` for fifos, sockets and device nodes.
    pub fn mknod(
        &self,
        pid: Pid,
        path: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
    ) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if matches!(ftype, FileType::CharDevice | FileType::BlockDevice)
            && !creds.caps.has(Capability::Mknod)
        {
            return Err(Errno::EPERM);
        }
        let (parent, name) = self.resolve_parent(pid, path)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        parent
            .fs
            .mknod(
                parent.loc.ino,
                &name,
                ftype,
                mode,
                rdev,
                &fs_context(&creds),
            )
            .map(|_| ())
    }

    /// `unlink(2)`.
    pub fn unlink(&self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let (parent, name) = self.resolve_parent(pid, path)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        check_access(&parent.stat, &creds, Access::W)?;
        // Deregister a bound socket if one lived here; connections already
        // accepted stay open, new ones are refused.
        if let Ok(st) = parent.fs.lookup(parent.loc.ino, &name) {
            if st.ftype == FileType::Socket {
                if let Some(bound) = self
                    .inner
                    .socket_nodes
                    .lock()
                    .remove(&(parent.fs.fs_id(), st.ino))
                {
                    bound.listener.close();
                }
            }
        }
        parent.fs.unlink(parent.loc.ino, &name)
    }

    /// `rmdir(2)`.
    pub fn rmdir(&self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let (parent, name) = self.resolve_parent(pid, path)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        check_access(&parent.stat, &creds, Access::W)?;
        parent.fs.rmdir(parent.loc.ino, &name)
    }

    /// `rename(2)` / `renameat2(2)`.
    pub fn rename(&self, pid: Pid, from: &str, to: &str, flags: RenameFlags) -> SysResult<()> {
        self.charge_syscall();
        let (src_parent, src_name) = self.resolve_parent(pid, from)?;
        let (dst_parent, dst_name) = self.resolve_parent(pid, to)?;
        if src_parent.readonly || dst_parent.readonly {
            return Err(Errno::EROFS);
        }
        if !Arc::ptr_eq(&src_parent.fs, &dst_parent.fs) {
            return Err(Errno::EXDEV);
        }
        src_parent.fs.rename(
            src_parent.loc.ino,
            &src_name,
            dst_parent.loc.ino,
            &dst_name,
            flags,
        )
    }

    /// `link(2)`.
    pub fn link(&self, pid: Pid, existing: &str, new: &str) -> SysResult<()> {
        self.charge_syscall();
        let src = self.resolve(pid, existing, false)?;
        let (dst_parent, name) = self.resolve_parent(pid, new)?;
        if dst_parent.readonly {
            return Err(Errno::EROFS);
        }
        if !Arc::ptr_eq(&src.fs, &dst_parent.fs) {
            return Err(Errno::EXDEV);
        }
        dst_parent
            .fs
            .link(src.loc.ino, dst_parent.loc.ino, &name)
            .map(|_| ())
    }

    /// `symlink(2)`.
    pub fn symlink(&self, pid: Pid, target: &str, linkpath: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let (parent, name) = self.resolve_parent(pid, linkpath)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        parent
            .fs
            .symlink(parent.loc.ino, &name, target, &fs_context(&creds))
            .map(|_| ())
    }

    /// `readlink(2)`.
    pub fn readlink(&self, pid: Pid, path: &str) -> SysResult<String> {
        self.charge_syscall();
        let r = self.resolve(pid, path, false)?;
        r.fs.readlink(r.loc.ino)
    }

    /// `getdents(2)`: directory entries including synthesized `.` and `..`.
    pub fn readdir(&self, pid: Pid, path: &str) -> SysResult<Vec<Dirent>> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        if !r.stat.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        let mut out = vec![
            Dirent {
                ino: r.loc.ino,
                name: ".".to_string(),
                ftype: FileType::Directory,
            },
            Dirent {
                ino: r.loc.ino,
                name: "..".to_string(),
                ftype: FileType::Directory,
            },
        ];
        out.extend(r.fs.readdir(r.loc.ino)?);
        Ok(out)
    }

    /// `statfs(2)`.
    pub fn statfs(&self, pid: Pid, path: &str) -> SysResult<cntr_types::Statfs> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        r.fs.statfs()
    }

    /// `chmod(2)`.
    pub fn chmod(&self, pid: Pid, path: &str, mode: Mode) -> SysResult<()> {
        self.setattr_path(pid, path, &SetAttr::chmod(mode))
    }

    /// `chown(2)`.
    pub fn chown(&self, pid: Pid, path: &str, uid: Uid, gid: Gid) -> SysResult<()> {
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::Chown) && creds.uid != uid {
            return Err(Errno::EPERM);
        }
        self.setattr_path(pid, path, &SetAttr::chown(uid, gid))
    }

    /// `truncate(2)`.
    pub fn truncate(&self, pid: Pid, path: &str, size: u64) -> SysResult<()> {
        let r = self.resolve(pid, path, true)?;
        self.inner
            .page_cache
            .truncate_file(r.fs.fs_id(), r.loc.ino, size);
        self.setattr_path(pid, path, &SetAttr::truncate(size))
    }

    /// `ftruncate(2)`.
    pub fn ftruncate(&self, pid: Pid, fd: u32, size: u64) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let file = self.get_file(pid, fd)?;
        match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => {
                if !file.flags.mode.writable() {
                    return Err(Errno::EBADF);
                }
                self.inner.page_cache.truncate_file(*dev, fref.ino, size);
                fref.fs
                    .setattr(fref.ino, &SetAttr::truncate(size), &fs_context(&creds))
                    .map(|_| ())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// `utimensat(2)`-style timestamp update.
    pub fn utimens(
        &self,
        pid: Pid,
        path: &str,
        atime: Option<cntr_types::Timespec>,
        mtime: Option<cntr_types::Timespec>,
    ) -> SysResult<()> {
        self.setattr_path(
            pid,
            path,
            &SetAttr {
                atime,
                mtime,
                ..SetAttr::default()
            },
        )
    }

    fn setattr_path(&self, pid: Pid, path: &str, attr: &SetAttr) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let r = self.resolve(pid, path, true)?;
        if r.readonly {
            return Err(Errno::EROFS);
        }
        r.fs.setattr(r.loc.ino, attr, &fs_context(&creds))
            .map(|_| ())
    }

    /// `access(2)`.
    pub fn access(&self, pid: Pid, path: &str, want: Access) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let r = self.resolve(pid, path, true)?;
        check_access(&r.stat, &creds, want)
    }

    /// `getxattr(2)`.
    pub fn getxattr(&self, pid: Pid, path: &str, name: &str) -> SysResult<Vec<u8>> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        r.fs.getxattr(r.loc.ino, name)
    }

    /// `setxattr(2)`.
    pub fn setxattr(
        &self,
        pid: Pid,
        path: &str,
        name: &str,
        value: &[u8],
        flags: XattrFlags,
    ) -> SysResult<()> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        if r.readonly {
            return Err(Errno::EROFS);
        }
        r.fs.setxattr(r.loc.ino, name, value, flags)
    }

    /// `listxattr(2)`.
    pub fn listxattr(&self, pid: Pid, path: &str) -> SysResult<Vec<String>> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        r.fs.listxattr(r.loc.ino)
    }

    /// `removexattr(2)`.
    pub fn removexattr(&self, pid: Pid, path: &str, name: &str) -> SysResult<()> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        if r.readonly {
            return Err(Errno::EROFS);
        }
        r.fs.removexattr(r.loc.ino, name)
    }

    /// Executes (maps) a binary: requires execute permission and `mmap`
    /// support on the filesystem. Returns the file contents — the simulated
    /// `execve` image. Over CntrFS this works because CNTR chose `mmap`
    /// support over `O_DIRECT` (paper §5.1).
    pub fn exec_read(&self, pid: Pid, path: &str) -> SysResult<Vec<u8>> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        let r = self.resolve(pid, path, true)?;
        if !r.stat.is_file() {
            return Err(Errno::EACCES);
        }
        check_access(&r.stat, &creds, Access::X)?;
        let fd = self.open(pid, path, OpenFlags::RDONLY, Mode::RW_R__R__)?;
        let size = self
            .inner
            .page_cache
            .effective_size(r.fs.fs_id(), r.loc.ino, r.stat.size);
        let mut out = vec![0u8; size as usize];
        let mut done = 0;
        while done < out.len() {
            let n = self.pread(pid, fd, done as u64, &mut out[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        self.close(pid, fd)?;
        out.truncate(done);
        Ok(out)
    }

    /// `name_to_handle_at(2)`: fails with `EOPNOTSUPP` on filesystems whose
    /// inodes are not exportable (CntrFS — xfstests #426).
    pub fn name_to_handle(&self, pid: Pid, path: &str) -> SysResult<u64> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        r.fs.export_handle(r.loc.ino)
    }

    /// `fallocate(2)`.
    pub fn fallocate(
        &self,
        pid: Pid,
        fd: u32,
        offset: u64,
        len: u64,
        mode: cntr_fs::FallocateMode,
    ) -> SysResult<()> {
        self.charge_syscall();
        let file = self.get_file(pid, fd)?;
        match &file.kind {
            FileKind::Regular {
                dev, file: fref, ..
            } => {
                if mode == cntr_fs::FallocateMode::PunchHole {
                    // Flush buffered data first, punch, then drop cached
                    // pages in the range so the hole reads as zeroes.
                    self.inner.page_cache.flush_file(*dev, fref.ino)?;
                    fref.fs.fallocate(fref.ino, fref.fh, offset, len, mode)?;
                    self.inner
                        .page_cache
                        .drop_range(*dev, fref.ino, offset, len);
                    Ok(())
                } else {
                    fref.fs.fallocate(fref.ino, fref.fh, offset, len, mode)
                }
            }
            _ => Err(Errno::EINVAL),
        }
    }

    // ------------------------------------------------------------------
    // Directory / root changes
    // ------------------------------------------------------------------

    /// `chdir(2)`. The canonical cwd path is kept for relative resolution.
    pub fn chdir(&self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        if !r.stat.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        let canon = self.canonicalize(pid, path)?;
        self.with_proc_mut(pid, |p| {
            p.cwd = r.loc;
            p.cwd_path = canon;
            Ok(())
        })
    }

    /// `chroot(2)`: requires `CAP_SYS_CHROOT`.
    pub fn chroot(&self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysChroot) {
            return Err(Errno::EPERM);
        }
        let r = self.resolve(pid, path, true)?;
        if !r.stat.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        self.with_proc_mut(pid, |p| {
            p.root = r.loc;
            p.cwd = r.loc;
            p.cwd_path = "/".to_string();
            Ok(())
        })
    }

    /// Lexically canonicalizes `path` against the stored cwd (the walk has
    /// already validated it resolves).
    fn canonicalize(&self, pid: Pid, path: &str) -> SysResult<String> {
        let base = if path.starts_with('/') {
            String::new()
        } else {
            self.with_proc(pid, |p| Ok(p.cwd_path.clone()))?
        };
        let joined = format!("{base}/{path}");
        let mut parts: Vec<&str> = Vec::new();
        for c in joined.split('/') {
            match c {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                other => parts.push(other),
            }
        }
        Ok(format!("/{}", parts.join("/")))
    }

    // ------------------------------------------------------------------
    // Mount syscalls
    // ------------------------------------------------------------------

    fn alloc_mount_id(&self) -> MountId {
        self.inner.mounts.alloc_mount_id()
    }

    /// `mount(2)` of a filesystem instance at `path`.
    pub fn mount_fs(
        &self,
        pid: Pid,
        path: &str,
        fs: Arc<dyn Filesystem>,
        cache: CacheMode,
        flags: MountFlags,
    ) -> SysResult<MountId> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let at = self.resolve(pid, path, true)?;
        if !at.stat.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        let root_ino = fs.root_ino();
        let id = self.alloc_mount_id();
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            ns.add_mount(id, fs, root_ino, at.loc.mount, at.loc.ino, cache, flags)
        })?;
        // Propagate into shared peers of the parent mount.
        self.propagate_mount(ns_id, at.loc.mount, at.loc.ino);
        Ok(id)
    }

    /// Shared prologue of both bind variants: privilege check, source and
    /// target resolution, and the file-over-file / dir-over-dir type check.
    /// Returns `(source, target, caller's mount namespace)`.
    fn bind_prologue(
        &self,
        pid: Pid,
        src: &str,
        dst: &str,
    ) -> SysResult<(Resolved, Resolved, crate::ns::NamespaceId)> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let source = self.resolve(pid, src, true)?;
        let target = self.resolve(pid, dst, true)?;
        // A bind mount may cover a file with a file, or a dir with a dir.
        if source.stat.is_dir() != target.stat.is_dir() {
            return Err(if source.stat.is_dir() {
                Errno::ENOTDIR
            } else {
                Errno::EISDIR
            });
        }
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        Ok((source, target, ns_id))
    }

    /// `mount --bind src dst` (optionally read-only). Binds the *subtree* at
    /// `src` — the primitive CNTR uses for `/proc`, `/dev` and `/etc` files.
    pub fn bind_mount(
        &self,
        pid: Pid,
        src: &str,
        dst: &str,
        flags: MountFlags,
    ) -> SysResult<MountId> {
        let (source, target, ns_id) = self.bind_prologue(pid, src, dst)?;
        let id = self.alloc_mount_id();
        self.inner.mounts.with_write(ns_id, |ns| {
            let cache = ns.get(source.loc.mount)?.cache;
            ns.add_mount(
                id,
                source.fs,
                source.loc.ino,
                target.loc.mount,
                target.loc.ino,
                cache,
                flags,
            )
        })?;
        self.propagate_mount(ns_id, target.loc.mount, target.loc.ino);
        Ok(id)
    }

    /// `mount --rbind src dst`: like [`Kernel::bind_mount`], but child
    /// mounts under the source are replicated under the new bind — what
    /// CNTR relies on when re-mounting "all pre-existing mountpoints, from
    /// the application container" beneath `/var/lib/cntr` (paper §3.2.3).
    ///
    /// Children are replicated when their parent mount is part of the bound
    /// tree; a bind of a subdirectory does not filter children by subtree
    /// position (a simplification over Linux).
    pub fn bind_mount_recursive(
        &self,
        pid: Pid,
        src: &str,
        dst: &str,
        flags: MountFlags,
    ) -> SysResult<MountId> {
        let (source, target, ns_id) = self.bind_prologue(pid, src, dst)?;
        let top = self.alloc_mount_id();
        // The top bind and the subtree replication commit under ONE write
        // lock of the caller's namespace, so a concurrent mount/umount can
        // never observe (or destroy) a partially replicated tree.
        self.inner.mounts.with_write(ns_id, |ns| {
            let cache = ns.get(source.loc.mount)?.cache;
            ns.add_mount(
                top,
                Arc::clone(&source.fs),
                source.loc.ino,
                target.loc.mount,
                target.loc.ino,
                cache,
                flags,
            )?;
            // Breadth-first replication of the mount tree under the source.
            let mut mapping: std::collections::HashMap<MountId, MountId> =
                std::collections::HashMap::new();
            mapping.insert(source.loc.mount, top);
            let mut replicas: Vec<(MountId, Mount)> = Vec::new();
            let mut changed = true;
            let all: Vec<Mount> = ns.iter().cloned().collect();
            while changed {
                changed = false;
                for m in &all {
                    if mapping.contains_key(&m.id) {
                        continue;
                    }
                    let Some((parent, at_ino)) = m.parent else {
                        continue;
                    };
                    if let Some(&new_parent) = mapping.get(&parent) {
                        let id = self.inner.mounts.alloc_mount_id();
                        let mut clone = m.clone();
                        clone.id = id;
                        clone.parent = Some((new_parent, at_ino));
                        clone.propagation = crate::mount::Propagation::Private;
                        mapping.insert(m.id, id);
                        replicas.push((id, clone));
                        changed = true;
                    }
                }
            }
            for (id, m) in replicas {
                ns.add_mount(
                    id,
                    m.fs,
                    m.root_ino,
                    m.parent.expect("set above").0,
                    m.parent.expect("set above").1,
                    m.cache,
                    m.flags,
                )?;
            }
            Ok(())
        })?;
        self.propagate_mount(ns_id, target.loc.mount, target.loc.ino);
        Ok(top)
    }

    /// `mount --move src dst`: relocates the mount at `src` to `dst`.
    pub fn move_mount(&self, pid: Pid, src: &str, dst: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let source = self.resolve(pid, src, true)?;
        let target = self.resolve(pid, dst, true)?;
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            // `src` must resolve to the root of a mount.
            let m = ns.get(source.loc.mount)?;
            if m.root_ino != source.loc.ino || m.parent.is_none() {
                return Err(Errno::EINVAL);
            }
            ns.move_mount(source.loc.mount, target.loc.mount, target.loc.ino)
        })
    }

    /// `umount(2)`.
    pub fn umount(&self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let at = self.resolve(pid, path, true)?;
        // Flush this filesystem's dirty pages before detach — only this
        // one's: unmounting one container must not drain (or fail on)
        // every other container's dirty data.
        self.inner.page_cache.sync_dev(at.fs.fs_id())?;
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            let m = ns.get(at.loc.mount)?;
            if m.root_ino != at.loc.ino {
                return Err(Errno::EINVAL);
            }
            ns.umount(at.loc.mount).map(|_| ())
        })
    }

    /// `mount --make-rprivate /`: stops all propagation in the caller's
    /// namespace. The first thing CNTR does in the nested namespace.
    pub fn make_rprivate(&self, pid: Pid) -> SysResult<()> {
        self.charge_syscall();
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            ns.make_all_private();
            Ok(())
        })
    }

    /// `mount --make-shared` on the mount containing `path`.
    pub fn make_shared(&self, pid: Pid, path: &str, peer_group: u64) -> SysResult<()> {
        self.charge_syscall();
        let at = self.resolve(pid, path, true)?;
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            ns.set_propagation(at.loc.mount, Propagation::Shared(peer_group))
        })
    }

    /// Replicates a new mount at `(parent, ino)` into every namespace whose
    /// copy of `parent` shares a peer group with this one.
    ///
    /// Peer namespaces are visited one at a time — no two inner mount locks
    /// are ever held together (rule 3 of the locking discipline), so a
    /// concurrent propagation from another namespace cannot deadlock.
    fn propagate_mount(&self, origin_ns: crate::ns::NamespaceId, parent: MountId, at_ino: Ino) {
        let mounts = &self.inner.mounts;
        let origin = mounts.with_read(origin_ns, |ns| {
            let group = match ns.get(parent).map(|m| m.propagation) {
                Ok(Propagation::Shared(g)) => g,
                _ => return Ok(None),
            };
            Ok(ns.mount_at(parent, at_ino).cloned().map(|m| (group, m)))
        });
        let Ok(Some((group, new_mount))) = origin else {
            return;
        };
        for ns_id in mounts.ids() {
            if ns_id == origin_ns {
                continue;
            }
            let is_peer = mounts
                .with_read(ns_id, |ns| {
                    Ok(ns
                        .get(parent)
                        .is_ok_and(|m| m.propagation == Propagation::Shared(group)))
                })
                .unwrap_or(false);
            if !is_peer {
                continue;
            }
            let id = mounts.alloc_mount_id();
            let _ = mounts.with_write(ns_id, |ns| {
                // Re-checked under the write lock: the peer may have been
                // reconfigured between the read and the write.
                if !ns
                    .get(parent)
                    .is_ok_and(|m| m.propagation == Propagation::Shared(group))
                {
                    return Ok(());
                }
                ns.add_mount(
                    id,
                    Arc::clone(&new_mount.fs),
                    new_mount.root_ino,
                    parent,
                    at_ino,
                    new_mount.cache,
                    new_mount.flags,
                )
                .map(|_| ())
            });
        }
    }

    /// Adopts another process's root directory — the effect of
    /// `chroot("/proc/<target>/root")`, which attach tools use after
    /// `setns` so they land in the target's *chrooted* view rather than the
    /// mount namespace root. Requires `CAP_SYS_CHROOT`.
    pub fn adopt_root(&self, pid: Pid, target: Pid) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysChroot) {
            return Err(Errno::EPERM);
        }
        let root = self.with_proc(target, |p| Ok(p.root))?;
        self.with_proc_mut(pid, |p| {
            p.root = root;
            p.cwd = root;
            p.cwd_path = "/".to_string();
            Ok(())
        })
    }

    /// `pivot_root(2)` (simplified): makes the mount at `new_root` the root
    /// mount of the caller's mount namespace and moves the caller into it.
    /// Container runtimes use this so that *joining* the namespace later
    /// (`setns`) lands in the container rootfs — which is what lets CNTR
    /// see the application's filesystem after attaching.
    pub fn pivot_root(&self, pid: Pid, new_root: &str) -> SysResult<()> {
        self.charge_syscall();
        let creds = self.creds(pid)?;
        if !creds.caps.has(Capability::SysAdmin) {
            return Err(Errno::EPERM);
        }
        let at = self.resolve(pid, new_root, true)?;
        let ns_id = self.with_proc(pid, |p| Ok(p.ns.mount))?;
        self.inner.mounts.with_write(ns_id, |ns| {
            let m = ns.get(at.loc.mount)?;
            if m.root_ino != at.loc.ino || m.parent.is_none() {
                return Err(Errno::EINVAL);
            }
            ns.set_root(at.loc.mount)
        })?;
        self.with_proc_mut(pid, |p| {
            p.root = at.loc;
            p.cwd = at.loc;
            p.cwd_path = "/".to_string();
            Ok(())
        })
    }

    /// Passes an open descriptor to another process (`SCM_RIGHTS`): the
    /// receiving process gets a new fd sharing the same open file
    /// description. CNTR's socket proxy uses this to hold both ends of a
    /// forwarded connection in one process.
    pub fn send_fd(&self, from: Pid, fd: u32, to: Pid) -> SysResult<u32> {
        self.charge_syscall();
        let entry = self.with_proc(from, |p| p.fds.get(&fd).cloned().ok_or(Errno::EBADF))?;
        self.with_proc_mut(to, |p| Ok(p.install_fd(entry)))
    }

    /// Mounts a live `/proc` view at `path`.
    pub fn mount_procfs(&self, pid: Pid, path: &str) -> SysResult<MountId> {
        let procfs = crate::procfs::ProcFs::new(
            DevId(0x70726F63), // "proc"
            Arc::downgrade(&self.inner),
        );
        self.mount_fs(
            pid,
            path,
            procfs,
            CacheMode::uncached(),
            MountFlags::default(),
        )
    }

    /// Lists mounts visible to `pid` (`/proc/self/mounts`-ish).
    pub fn mounts(&self, pid: Pid) -> SysResult<Vec<(MountId, &'static str)>> {
        let (ns, _, _) = self.snapshot_ns(pid)?;
        Ok(ns.iter().map(|m| (m.id, m.fs.fs_type())).collect())
    }

    // ------------------------------------------------------------------
    // Unix sockets bound to filesystem paths
    // ------------------------------------------------------------------

    /// `bind(2)` + `listen(2)`: creates the socket inode and registers a
    /// listener under it, tagged with the caller's mount namespace — if
    /// that namespace dies (its last process is reaped) the listener is
    /// unbound, so a dead container's socket cannot accept connections.
    pub fn bind_listener(&self, pid: Pid, path: &str) -> SysResult<u32> {
        self.charge_syscall();
        let (creds, mnt_ns) = self.with_proc(pid, |p| Ok((p.creds.clone(), p.ns.mount)))?;
        let (parent, name) = self.resolve_parent(pid, path)?;
        if parent.readonly {
            return Err(Errno::EROFS);
        }
        let st = parent.fs.mknod(
            parent.loc.ino,
            &name,
            FileType::Socket,
            Mode::new(0o666),
            0,
            &fs_context(&creds),
        )?;
        let listener = SocketListener::new(path);
        self.inner.socket_nodes.lock().insert(
            (parent.fs.fs_id(), st.ino),
            crate::kernel::BoundSocket {
                mnt_ns,
                listener: Arc::clone(&listener),
            },
        );
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Listener(listener.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            }))
        })
    }

    /// `connect(2)` to a Unix socket path.
    ///
    /// Resolution goes through the caller's mount namespace: a socket file
    /// *seen through CntrFS* has a different `(dev, ino)` than the bound
    /// inode, so no listener is found and the connect fails — exactly the
    /// kernel behaviour that forces CNTR to implement its socket proxy
    /// (paper §3.2.4).
    pub fn connect(&self, pid: Pid, path: &str) -> SysResult<u32> {
        self.charge_syscall();
        let r = self.resolve(pid, path, true)?;
        if r.stat.ftype != FileType::Socket {
            return Err(Errno::ENOTSOCK);
        }
        let listener = self
            .inner
            .socket_nodes
            .lock()
            .get(&(r.fs.fs_id(), r.loc.ino))
            .map(|b| Arc::clone(&b.listener))
            .ok_or(Errno::ECONNREFUSED)?;
        let end: SocketEnd = listener.connect()?;
        self.with_proc_mut(pid, |p| {
            Ok(p.install_fd(FdEntry {
                file: Arc::new(OpenFile {
                    kind: FileKind::Socket(end.clone()),
                    flags: OpenFlags::RDWR,
                    offset: Mutex::new_class("kernel.fd_offset", 0),
                }),
                cloexec: false,
            }))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use cntr_fs::memfs::memfs;
    use cntr_types::SimClock;

    fn kernel() -> Kernel {
        let clock = SimClock::new();
        let fs = memfs(DevId(1), clock.clone());
        Kernel::with_clock(clock, fs, CacheMode::native(), KernelConfig::default())
    }

    const P: Pid = Pid::INIT;

    #[test]
    fn open_create_write_read() {
        let k = kernel();
        let fd = k
            .open(P, "/hello.txt", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        assert_eq!(k.write_fd(P, fd, b"hi there").unwrap(), 8);
        k.close(P, fd).unwrap();
        let fd = k
            .open(P, "/hello.txt", OpenFlags::RDONLY, Mode::RW_R__R__)
            .unwrap();
        let mut buf = [0u8; 16];
        let n = k.read_fd(P, fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi there");
        assert_eq!(k.read_fd(P, fd, &mut buf).unwrap(), 0, "EOF");
        k.close(P, fd).unwrap();
    }

    #[test]
    fn resolve_nested_paths_and_dotdot() {
        let k = kernel();
        k.mkdir(P, "/a", Mode::RWXR_XR_X).unwrap();
        k.mkdir(P, "/a/b", Mode::RWXR_XR_X).unwrap();
        k.mkdir(P, "/a/b/c", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(P, "/a/b/c/f.txt", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        let st = k.stat(P, "/a/b/c/../c/./f.txt").unwrap();
        assert!(st.is_file());
        // `..` above root stays at root.
        let st = k.stat(P, "/../../a").unwrap();
        assert!(st.is_dir());
    }

    #[test]
    fn symlink_resolution_and_loops() {
        let k = kernel();
        k.mkdir(P, "/dir", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(P, "/dir/real", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(P, fd, b"x").unwrap();
        k.close(P, fd).unwrap();
        k.symlink(P, "/dir/real", "/link").unwrap();
        assert_eq!(k.stat(P, "/link").unwrap().size, 1);
        assert!(k.lstat(P, "/link").unwrap().is_symlink());
        // Relative symlink.
        k.symlink(P, "real", "/dir/rel").unwrap();
        assert_eq!(k.stat(P, "/dir/rel").unwrap().size, 1);
        // Loop.
        k.symlink(P, "/loop2", "/loop1").unwrap();
        k.symlink(P, "/loop1", "/loop2").unwrap();
        assert_eq!(k.stat(P, "/loop1"), Err(Errno::ELOOP));
    }

    #[test]
    fn chdir_relative_resolution() {
        let k = kernel();
        k.mkdir(P, "/work", Mode::RWXR_XR_X).unwrap();
        k.mkdir(P, "/work/sub", Mode::RWXR_XR_X).unwrap();
        k.chdir(P, "/work").unwrap();
        let fd = k
            .open(P, "sub/file", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        assert!(k.stat(P, "/work/sub/file").unwrap().is_file());
        k.chdir(P, "sub").unwrap();
        assert!(k.stat(P, "file").unwrap().is_file());
        assert!(k.stat(P, "../sub/file").unwrap().is_file());
    }

    #[test]
    fn mount_crossing_and_umount() {
        let k = kernel();
        k.mkdir(P, "/mnt", Mode::RWXR_XR_X).unwrap();
        let sub = memfs(DevId(2), k.clock().clone());
        k.mount_fs(P, "/mnt", sub, CacheMode::native(), MountFlags::default())
            .unwrap();
        let fd = k
            .open(P, "/mnt/inside", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        let st = k.stat(P, "/mnt/inside").unwrap();
        assert_eq!(st.dev, DevId(2), "file lives on the mounted fs");
        // `..` out of the mount lands back on the root fs.
        assert_eq!(k.stat(P, "/mnt/..").unwrap().dev, DevId(1));
        k.umount(P, "/mnt").unwrap();
        assert_eq!(k.stat(P, "/mnt/inside"), Err(Errno::ENOENT));
    }

    #[test]
    fn bind_mount_subtree() {
        let k = kernel();
        k.mkdir(P, "/data", Mode::RWXR_XR_X).unwrap();
        k.mkdir(P, "/data/sub", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(P, "/data/sub/f", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        k.mkdir(P, "/view", Mode::RWXR_XR_X).unwrap();
        k.bind_mount(P, "/data/sub", "/view", MountFlags::default())
            .unwrap();
        assert!(k.stat(P, "/view/f").unwrap().is_file());
        // Readonly bind.
        k.mkdir(P, "/roview", Mode::RWXR_XR_X).unwrap();
        k.bind_mount(P, "/data/sub", "/roview", MountFlags { readonly: true })
            .unwrap();
        assert_eq!(
            k.open(P, "/roview/new", OpenFlags::create(), Mode::RW_R__R__),
            Err(Errno::EROFS)
        );
    }

    #[test]
    fn chroot_jails_resolution() {
        let k = kernel();
        k.mkdir(P, "/jail", Mode::RWXR_XR_X).unwrap();
        k.mkdir(P, "/jail/etc", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(P, "/jail/etc/passwd", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        let fd = k
            .open(P, "/secret", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        let child = k.fork(P).unwrap();
        k.chroot(child, "/jail").unwrap();
        assert!(k.stat(child, "/etc/passwd").unwrap().is_file());
        assert_eq!(k.stat(child, "/secret"), Err(Errno::ENOENT));
        // Escaping with `..` is futile.
        assert_eq!(k.stat(child, "/../../secret"), Err(Errno::ENOENT));
        // The parent is unaffected.
        assert!(k.stat(P, "/secret").unwrap().is_file());
    }

    #[test]
    fn permissions_enforced_for_unprivileged() {
        let k = kernel();
        let fd = k
            .open(P, "/private", OpenFlags::create(), Mode::RW_______)
            .unwrap();
        k.close(P, fd).unwrap();
        let user = k.fork(P).unwrap();
        let mut creds = crate::cred::Credentials::host_root();
        creds.uid = Uid(1000);
        creds.gid = Gid(1000);
        creds.caps = cntr_types::CapSet::EMPTY;
        creds.bounding = cntr_types::CapSet::EMPTY;
        k.set_creds(user, creds).unwrap();
        assert_eq!(
            k.open(user, "/private", OpenFlags::RDONLY, Mode::RW_R__R__),
            Err(Errno::EACCES)
        );
        assert_eq!(k.access(user, "/private", Access::R), Err(Errno::EACCES));
        assert!(k.access(P, "/private", Access::R).is_ok());
    }

    #[test]
    fn readdir_includes_dot_entries() {
        let k = kernel();
        k.mkdir(P, "/d", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(P, "/d/x", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        let names: Vec<String> = k
            .readdir(P, "/d")
            .unwrap()
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec![".", "..", "x"]);
    }

    #[test]
    fn lseek_whence() {
        let k = kernel();
        let fd = k
            .open(P, "/f", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(P, fd, b"0123456789").unwrap();
        assert_eq!(k.lseek(P, fd, 2, Whence::Set).unwrap(), 2);
        assert_eq!(k.lseek(P, fd, 3, Whence::Cur).unwrap(), 5);
        assert_eq!(k.lseek(P, fd, -1, Whence::End).unwrap(), 9);
        assert_eq!(k.lseek(P, fd, -100, Whence::Cur), Err(Errno::EINVAL));
    }

    #[test]
    fn dev_nodes() {
        let k = kernel();
        k.mkdir(P, "/dev", Mode::RWXR_XR_X).unwrap();
        k.mknod(
            P,
            "/dev/null",
            FileType::CharDevice,
            Mode::new(0o666),
            0x0103,
        )
        .unwrap();
        k.mknod(
            P,
            "/dev/zero",
            FileType::CharDevice,
            Mode::new(0o666),
            0x0105,
        )
        .unwrap();
        let null = k
            .open(P, "/dev/null", OpenFlags::RDWR, Mode::RW_R__R__)
            .unwrap();
        assert_eq!(k.write_fd(P, null, b"discard").unwrap(), 7);
        let mut buf = [1u8; 4];
        assert_eq!(k.read_fd(P, null, &mut buf).unwrap(), 0);
        let zero = k
            .open(P, "/dev/zero", OpenFlags::RDONLY, Mode::RW_R__R__)
            .unwrap();
        assert_eq!(k.read_fd(P, zero, &mut buf).unwrap(), 4);
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn unix_socket_bind_connect() {
        let k = kernel();
        let listener_fd = k.bind_listener(P, "/app.sock").unwrap();
        assert_eq!(k.stat(P, "/app.sock").unwrap().ftype, FileType::Socket);
        let client_fd = k.connect(P, "/app.sock").unwrap();
        let server_fd = k.accept(P, listener_fd).unwrap();
        k.write_fd(P, client_fd, b"query").unwrap();
        let mut buf = [0u8; 8];
        let n = k.read_fd(P, server_fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"query");
        // Unlinking the socket file deregisters the listener.
        k.unlink(P, "/app.sock").unwrap();
        assert_eq!(k.connect(P, "/app.sock"), Err(Errno::ENOENT));
    }

    #[test]
    fn listener_unbinds_on_last_close() {
        let k = kernel();
        let fd = k.bind_listener(P, "/srv.sock").unwrap();
        let dup = k.dup(P, fd).unwrap();
        // One descriptor closed: the dup still holds the listener open.
        k.close(P, fd).unwrap();
        let c = k.connect(P, "/srv.sock").unwrap();
        k.close(P, c).unwrap();
        // Last descriptor closed: unbound — the socket *file* remains (as
        // in Linux) but connecting to it is refused.
        k.close(P, dup).unwrap();
        assert_eq!(k.stat(P, "/srv.sock").unwrap().ftype, FileType::Socket);
        assert_eq!(k.connect(P, "/srv.sock"), Err(Errno::ECONNREFUSED));
        assert_eq!(k.socket_node_count(), 0);
    }

    #[test]
    fn listener_unbinds_when_holder_exits() {
        let k = kernel();
        let server = k.fork(P).unwrap();
        let _fd = k.bind_listener(server, "/app.sock").unwrap();
        assert!(k.connect(P, "/app.sock").is_ok());
        // The server exits without closing: its fd table is torn down and
        // the listener unbinds with it.
        k.exit(server).unwrap();
        k.reap(server).unwrap();
        assert_eq!(k.connect(P, "/app.sock"), Err(Errno::ECONNREFUSED));
        assert_eq!(k.socket_node_count(), 0);
    }

    #[test]
    fn listener_dies_with_its_mount_namespace() {
        let k = kernel();
        let container = k.fork(P).unwrap();
        k.unshare(container, &[crate::ns::NamespaceKind::Mount])
            .unwrap();
        let fd = k.bind_listener(container, "/db.sock").unwrap();
        // Leak the fd into init's table (as a proxy might): even though a
        // descriptor survives, the binding namespace's death unbinds the
        // listener — a dead container must not keep accepting connections.
        k.send_fd(container, fd, P).unwrap();
        assert!(k.connect(container, "/db.sock").is_ok());
        k.exit(container).unwrap();
        k.reap(container).unwrap();
        assert_eq!(k.socket_node_count(), 0);
        // The namespace clone shared the root filesystem, so init still
        // sees the socket file — but nobody is listening behind it.
        assert_eq!(k.connect(P, "/db.sock"), Err(Errno::ECONNREFUSED));
    }

    #[test]
    fn rename_and_link_cross_device_rejected() {
        let k = kernel();
        k.mkdir(P, "/mnt", Mode::RWXR_XR_X).unwrap();
        let sub = memfs(DevId(2), k.clock().clone());
        k.mount_fs(P, "/mnt", sub, CacheMode::native(), MountFlags::default())
            .unwrap();
        let fd = k
            .open(P, "/f", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(P, fd).unwrap();
        assert_eq!(
            k.rename(P, "/f", "/mnt/f", RenameFlags::NONE),
            Err(Errno::EXDEV)
        );
        assert_eq!(k.link(P, "/f", "/mnt/f"), Err(Errno::EXDEV));
    }

    #[test]
    fn rlimit_fsize_enforced_on_native_fs() {
        let k = kernel();
        let mut limits = cntr_types::RlimitSet::default();
        limits
            .set(
                cntr_types::RlimitKind::Fsize,
                cntr_types::Rlimit {
                    soft: 100,
                    hard: 100,
                },
            )
            .unwrap();
        k.set_rlimits(P, limits).unwrap();
        let fd = k
            .open(P, "/cap", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        assert_eq!(k.write_fd(P, fd, &[0u8; 100]).unwrap(), 100);
        assert_eq!(k.write_fd(P, fd, &[0u8; 1]), Err(Errno::EFBIG));
    }

    #[test]
    fn exec_read_requires_x_bit() {
        let k = kernel();
        let fd = k
            .open(P, "/bin-tool", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(P, fd, b"#!binary").unwrap();
        k.close(P, fd).unwrap();
        assert_eq!(k.exec_read(P, "/bin-tool"), Err(Errno::EACCES));
        k.chmod(P, "/bin-tool", Mode::RWXR_XR_X).unwrap();
        assert_eq!(k.exec_read(P, "/bin-tool").unwrap(), b"#!binary");
    }

    #[test]
    fn o_direct_rejected_when_fs_lacks_it() {
        // MemFs supports O_DIRECT; a features-stripped fs is exercised via
        // CntrFS in the xfstests crate. Here we check O_DIRECT pass-through.
        let k = kernel();
        let fd = k
            .open(
                P,
                "/d",
                OpenFlags::create().with(OpenFlags::DIRECT),
                Mode::RW_R__R__,
            )
            .unwrap();
        k.write_fd(P, fd, b"direct").unwrap();
        k.close(P, fd).unwrap();
        assert_eq!(k.stat(P, "/d").unwrap().size, 6);
    }

    #[test]
    fn stat_sees_writeback_pending_size() {
        let k = kernel();
        let fd = k
            .open(P, "/wb", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(P, fd, &[1u8; 5000]).unwrap();
        // Dirty data not yet flushed, but stat must show 5000.
        assert_eq!(k.stat(P, "/wb").unwrap().size, 5000);
        k.fsync(P, fd, false).unwrap();
        assert_eq!(k.stat(P, "/wb").unwrap().size, 5000);
    }

    #[test]
    fn shared_propagation_replicates_mounts() {
        let k = kernel();
        k.mkdir(P, "/shared", Mode::RWXR_XR_X).unwrap();
        k.make_shared(P, "/", 1).unwrap();
        let child = k.fork(P).unwrap();
        k.unshare(child, &[crate::ns::NamespaceKind::Mount])
            .unwrap();
        // Keep the clone's root shared too (clone preserved propagation).
        let sub = memfs(DevId(7), k.clock().clone());
        k.mount_fs(
            P,
            "/shared",
            sub,
            CacheMode::native(),
            MountFlags::default(),
        )
        .unwrap();
        // The mount propagated into the child's namespace.
        let fd = k
            .open(child, "/shared/x", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(child, fd).unwrap();
        assert_eq!(k.stat(child, "/shared/x").unwrap().dev, DevId(7));
        assert_eq!(k.stat(P, "/shared/x").unwrap().dev, DevId(7));
    }

    #[test]
    fn private_namespace_blocks_propagation() {
        let k = kernel();
        k.mkdir(P, "/vol", Mode::RWXR_XR_X).unwrap();
        let child = k.fork(P).unwrap();
        k.unshare(child, &[crate::ns::NamespaceKind::Mount])
            .unwrap();
        k.make_rprivate(child).unwrap();
        let sub = memfs(DevId(8), k.clock().clone());
        k.mount_fs(P, "/vol", sub, CacheMode::native(), MountFlags::default())
            .unwrap();
        // Host sees it; the private child namespace does not.
        assert_eq!(k.stat(P, "/vol").unwrap().dev, DevId(8));
        assert_eq!(k.stat(child, "/vol").unwrap().dev, DevId(1));
    }
}
