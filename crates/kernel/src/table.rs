//! Sharded kernel tables: the fine-grained locking layer under [`crate::Kernel`].
//!
//! The kernel used to serialize every syscall on a single `Mutex<KState>`.
//! That was correct but made hundreds of containers impossible to *run*
//! concurrently: two processes could not even `getenv` at the same time.
//! This module splits the state into independently locked subsystems:
//!
//! * `ProcTable` — the process table, sharded over a fixed power-of-two
//!   array of mutexes keyed by `pid % shards`. Syscalls touching one
//!   process lock one shard; unrelated pids proceed in parallel.
//! * `MountTable` — one `RwLock<MountNs>` per mount namespace behind an
//!   outer `RwLock` registry. Path resolution (read-mostly) takes read
//!   locks only, so `mount`/`umount` in one container no longer blocks
//!   lookups in every other container.
//! * `NsRefs` — per-namespace process reference counts, keyed by
//!   `(kind, id)`. Namespace lifetime is driven by these counts (like
//!   Linux's `nsproxy`): `fork` retains the child's whole set, `reap`
//!   releases it, `unshare`/`setns` *move* single references. When a
//!   count hits zero the namespace is dead and its backing state (mount
//!   table, hostname, bound sockets, fanotify recorder) is reclaimed.
//!
//! Id allocators (`next_pid`, `next_ns`, `next_mount`) are atomics; the
//! remaining small subsystems (cgroups, hostnames, bound sockets, fanotify)
//! each get their own lock on the kernel inner state.
//!
//! # Lock-ordering discipline
//!
//! Deadlock freedom rests on four rules, observed by every call site:
//!
//! 1. **At most one process shard is locked directly.** The only way to
//!    hold two is `ProcTable::lock_pair`, which acquires them in
//!    ascending shard-index order (`fork` uses this so a `/proc` snapshot
//!    never observes a child without its parent mid-fork).
//! 2. **Subsystem locks never nest.** Cross-subsystem operations
//!    (`fork` + cgroup attach, `unshare` + mount-table clone, `setns`)
//!    copy what they need out of one subsystem, release it, then touch the
//!    next — in the canonical order *processes → mounts → cgroups /
//!    hostnames / sockets / fanotify*.
//! 3. **Mount locks go outer-before-inner, one namespace at a time.** The
//!    registry read lock is dropped before an inner `MountNs` lock is
//!    taken (the `Arc` keeps the namespace alive), and no thread ever
//!    holds two inner mount locks simultaneously (propagation walks peers
//!    sequentially).
//! 4. **The `NsRefs` lock is a leaf.** It is the one exception to rule 2:
//!    it *may* be acquired while a process shard is held — refcount
//!    transitions must commit atomically with the `NamespaceSet` write
//!    they describe, or a concurrent `reap` could release references that
//!    were never retained — and nothing is ever acquired while holding
//!    it. Reclamation of the backing state of a dead namespace (the
//!    registry write, the `Arc` drops) happens strictly *after* both the
//!    shard and the `NsRefs` lock are released.
//!
//! # Refcount rules
//!
//! * Every process in the table (running *or* zombie) holds exactly one
//!   reference on each of the seven `(kind, id)` pairs of its
//!   `NamespaceSet`. References are released at `reap`, not `exit` — a
//!   zombie's namespaces stay observable through `/proc` until reaped.
//! * `unshare` registers the fresh namespace's backing state *before*
//!   attaching it; the reference moves old → new inside the process-shard
//!   closure (`NsRefs::transfer`). If attaching fails (the process was
//!   reaped concurrently) the fresh namespace has zero refs and is fed to
//!   the same GC path as any dead namespace.
//! * `setns` adoption pins the target namespaces with
//!   `NsRefs::adopt_set`, which refuses (`ESRCH`) unless every target
//!   count is still positive — a namespace observed at zero has been (or
//!   is being) reclaimed and can never be resurrected.

use crate::mount::{MountId, MountNs};
use crate::ns::{NamespaceId, NamespaceKind, NamespaceSet, ALL_KINDS};
use crate::process::Process;
use cntr_types::{Errno, Pid, SysResult};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of process-table shards (a power of two).
pub const DEFAULT_PROC_SHARDS: usize = 16;

/// Lock-class names of the kernel's subsystem locks, in documented rank
/// order. The names live here, next to the prose discipline above, and
/// `declare_lock_discipline` feeds the same table to the lockdep
/// checker — so the comment and the enforcement can never drift apart.
pub mod lock_class {
    /// One pid shard of the process table (rank 0; sharded-ascending).
    pub const PROC_SHARD: &str = "kernel.proc_shard";
    /// The outer mount-namespace registry (rank 1).
    pub const MOUNTS_REGISTRY: &str = "kernel.mounts.registry";
    /// One namespace's inner mount table (rank 2; never two at once).
    pub const MOUNTS_NS: &str = "kernel.mounts.ns";
    /// The cgroup tree (leaf rank).
    pub const CGROUPS: &str = "kernel.cgroups";
    /// Per-namespace UTS hostnames (leaf rank).
    pub const HOSTNAMES: &str = "kernel.hostnames";
    /// Bound unix-socket nodes (leaf rank).
    pub const SOCKET_NODES: &str = "kernel.socket_nodes";
    /// Fanotify recorders (leaf rank).
    pub const FANOTIFY: &str = "kernel.fanotify";
    /// Namespace refcounts (leaf rank; the rule-4 exception — may nest
    /// under a process shard, never acquires anything itself).
    pub const NS_REFS: &str = "kernel.ns_refs";
    /// The page-cache LRU state (rank 4): page slots, the active/inactive
    /// lists and the per-file dirty indexes. Ranked *above* every subsystem
    /// lock so teardown paths (namespace GC, unmount) that reach the cache
    /// while a ranked kernel lock is held stay ascending-legal; nothing is
    /// ever acquired while holding it — every fill, write-back and
    /// `FileRef` drop happens after it is released.
    pub const PAGECACHE_LRU: &str = "pagecache.lru";
    /// The background-flusher control block (rank 5): thread handle of the
    /// kworker-style write-back thread. Taken only to spawn or wake the
    /// flusher — never while the flusher itself runs, and never across its
    /// park point.
    pub const PAGECACHE_FLUSHER: &str = "pagecache.flusher";
}

/// Encodes the module-level lock-ordering discipline into the lockdep
/// checker: the pid-shard class takes ascending instance ranks only
/// (rule 1, the `lock_pair` idiom), and the subsystem rank order is
/// *processes → mount registry → mount ns → leaf subsystems*, with
/// distinct leaf subsystems forbidden to nest (rules 2–4). Idempotent;
/// runs on every table construction so no test can boot a kernel that
/// escapes the discipline.
pub(crate) fn declare_lock_discipline() {
    lockdep::set_shape(
        lock_class::PROC_SHARD,
        lockdep::Shape::Sharded { ascending: true },
    );
    lockdep::ordering(&[
        &[lock_class::PROC_SHARD],
        &[lock_class::MOUNTS_REGISTRY],
        &[lock_class::MOUNTS_NS],
        &[
            lock_class::CGROUPS,
            lock_class::HOSTNAMES,
            lock_class::SOCKET_NODES,
            lock_class::FANOTIFY,
            lock_class::NS_REFS,
        ],
        &[lock_class::PAGECACHE_LRU],
        &[lock_class::PAGECACHE_FLUSHER],
    ]);
}

type Shard = HashMap<Pid, Process>;

/// The pid-sharded process table.
pub(crate) struct ProcTable {
    shards: Box<[Mutex<Shard>]>,
    mask: usize,
    next_pid: AtomicU32,
}

impl ProcTable {
    /// Creates a table with `shards` shards (rounded up to a power of two)
    /// holding `init` as pid 1.
    pub fn new(shards: usize, init: Process) -> ProcTable {
        declare_lock_discipline();
        let n = shards.max(1).next_power_of_two();
        let table = ProcTable {
            // The shard index doubles as the lockdep instance rank:
            // `lock_pair`'s ascending-index order is what the checker
            // verifies on every nested shard acquisition.
            shards: (0..n)
                .map(|i| Mutex::new_ranked(lock_class::PROC_SHARD, i as u32, HashMap::new()))
                .collect(),
            mask: n - 1,
            next_pid: AtomicU32::new(2),
        };
        table.shards[table.index(init.pid)]
            .lock()
            .insert(init.pid, init);
        table
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn index(&self, pid: Pid) -> usize {
        pid.raw() as usize & self.mask
    }

    /// Allocates a fresh pid. Atomic: concurrent forks can never hand out
    /// the same pid twice (a fork that later fails burns its pid, as the
    /// real kernel may).
    pub fn alloc_pid(&self) -> Pid {
        Pid(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs `f` over the process, holding only its shard.
    pub fn with<T>(&self, pid: Pid, f: impl FnOnce(&Process) -> SysResult<T>) -> SysResult<T> {
        let shard = self.shards[self.index(pid)].lock();
        let p = shard.get(&pid).ok_or(Errno::ESRCH)?;
        f(p)
    }

    /// Runs `f` over the process mutably, holding only its shard.
    pub fn with_mut<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&mut Process) -> SysResult<T>,
    ) -> SysResult<T> {
        let mut shard = self.shards[self.index(pid)].lock();
        let p = shard.get_mut(&pid).ok_or(Errno::ESRCH)?;
        f(p)
    }

    /// True if the pid is in the table (any lifecycle state).
    pub fn contains(&self, pid: Pid) -> bool {
        self.shards[self.index(pid)].lock().contains_key(&pid)
    }

    /// Locks the shard owning `pid` (single-shard compound operations).
    pub fn lock_shard_of(&self, pid: Pid) -> MutexGuard<'_, Shard> {
        self.shards[self.index(pid)].lock()
    }

    /// Locks the shards of `a` and `b` together, in ascending shard-index
    /// order (rule 1 of the module-level discipline). Used by `fork` so the
    /// parent's shard stays held while the child is inserted.
    pub fn lock_pair(&self, a: Pid, b: Pid) -> ShardPair<'_> {
        let (ia, ib) = (self.index(a), self.index(b));
        let (lo_idx, hi_idx) = (ia.min(ib), ia.max(ib));
        let lo = self.shards[lo_idx].lock();
        let hi = (lo_idx != hi_idx).then(|| self.shards[hi_idx].lock());
        ShardPair {
            lo,
            hi,
            lo_idx,
            mask: self.mask,
        }
    }

    /// All pids, ordered. Shards are locked one at a time in index order;
    /// the listing is a snapshot, not an atomic view of the whole table.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = Vec::new();
        for shard in self.shards.iter() {
            v.extend(shard.lock().keys().copied());
        }
        v.sort_unstable();
        v
    }
}

/// Two process shards held together, acquired in ascending index order.
pub(crate) struct ShardPair<'a> {
    lo: MutexGuard<'a, Shard>,
    hi: Option<MutexGuard<'a, Shard>>,
    lo_idx: usize,
    mask: usize,
}

impl ShardPair<'_> {
    fn map_for(&mut self, pid: Pid) -> &mut Shard {
        if pid.raw() as usize & self.mask == self.lo_idx {
            &mut self.lo
        } else {
            self.hi.as_mut().expect("pid belongs to one of the pair")
        }
    }

    /// The process, if present in either held shard.
    pub fn get(&mut self, pid: Pid) -> Option<&Process> {
        let shard: &Shard = self.map_for(pid);
        shard.get(&pid)
    }

    /// Inserts a process into whichever held shard owns its pid.
    pub fn insert(&mut self, p: Process) {
        self.map_for(p.pid).insert(p.pid, p);
    }
}

/// Per-namespace mount tables behind reader/writer locks.
pub(crate) struct MountTable {
    namespaces: RwLock<HashMap<NamespaceId, Arc<RwLock<MountNs>>>>,
    next_mount: AtomicU64,
}

impl MountTable {
    /// Creates the registry holding namespace 1's table.
    pub fn new(root: MountNs) -> MountTable {
        let mut m = HashMap::new();
        m.insert(
            root.id,
            Arc::new(RwLock::new_class(lock_class::MOUNTS_NS, root)),
        );
        MountTable {
            namespaces: RwLock::new_class(lock_class::MOUNTS_REGISTRY, m),
            next_mount: AtomicU64::new(2),
        }
    }

    /// Allocates a fresh mount id (atomic, lock-free).
    pub fn alloc_mount_id(&self) -> MountId {
        MountId(self.next_mount.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers a new namespace's mount table.
    pub fn insert(&self, ns: MountNs) {
        let id = ns.id;
        let entry = Arc::new(RwLock::new_class(lock_class::MOUNTS_NS, ns));
        self.namespaces.write().insert(id, entry);
    }

    /// Deregisters a namespace, returning its table so the caller can drop
    /// it — and the filesystem `Arc`s it pins — *outside* the registry
    /// lock. Called by namespace GC when the last process reference dies.
    #[must_use = "drop the returned table outside any kernel lock"]
    pub fn remove(&self, id: NamespaceId) -> Option<Arc<RwLock<MountNs>>> {
        self.namespaces.write().remove(&id)
    }

    /// Number of registered namespaces.
    pub fn len(&self) -> usize {
        self.namespaces.read().len()
    }

    fn handle(&self, id: NamespaceId) -> SysResult<Arc<RwLock<MountNs>>> {
        // The outer registry lock is released before the caller touches the
        // inner lock (rule 3: outer-before-inner, never held together).
        self.namespaces
            .read()
            .get(&id)
            .cloned()
            .ok_or(Errno::EINVAL)
    }

    /// Clones one namespace's table (path resolution works on a private
    /// snapshot, so a concurrent umount cannot invalidate a walk mid-way).
    pub fn snapshot(&self, id: NamespaceId) -> SysResult<MountNs> {
        let ns = self.handle(id)?;
        let snap = ns.read().clone();
        Ok(snap)
    }

    /// Runs `f` under one namespace's read lock.
    pub fn with_read<T>(
        &self,
        id: NamespaceId,
        f: impl FnOnce(&MountNs) -> SysResult<T>,
    ) -> SysResult<T> {
        let ns = self.handle(id)?;
        let guard = ns.read();
        f(&guard)
    }

    /// Runs `f` under one namespace's write lock.
    pub fn with_write<T>(
        &self,
        id: NamespaceId,
        f: impl FnOnce(&mut MountNs) -> SysResult<T>,
    ) -> SysResult<T> {
        let ns = self.handle(id)?;
        let mut guard = ns.write();
        f(&mut guard)
    }

    /// Ids of every registered namespace.
    pub fn ids(&self) -> Vec<NamespaceId> {
        let mut v: Vec<NamespaceId> = self.namespaces.read().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Per-namespace process reference counts (the simulation's `nsproxy`).
///
/// One count per `(kind, id)` pair: namespace ids are unique across kinds
/// *except* for the boot namespace, where id 1 names all seven initial
/// namespaces — hence the kind in the key. A count reaching zero removes
/// the entry; the caller receives the dead pair and reclaims its backing
/// state outside this lock (rule 4 of the module discipline).
pub(crate) struct NsRefs {
    counts: Mutex<HashMap<(NamespaceKind, NamespaceId), u64>>,
}

impl NsRefs {
    /// Creates the table holding one reference per kind for `init`'s set.
    pub fn new(init: &NamespaceSet) -> NsRefs {
        let refs = NsRefs {
            counts: Mutex::new_class(lock_class::NS_REFS, HashMap::new()),
        };
        refs.retain_set(init);
        refs
    }

    /// Takes one reference on every `(kind, id)` of `set` — what a process
    /// acquires at `fork` (the parent's live references guarantee the
    /// entries exist; boot creates them).
    pub fn retain_set(&self, set: &NamespaceSet) {
        let mut counts = self.counts.lock();
        for kind in ALL_KINDS {
            *counts.entry((kind, set.get(kind))).or_insert(0) += 1;
        }
    }

    /// Drops one reference on every `(kind, id)` of `set` — what `reap`
    /// releases. Returns the pairs whose count reached zero: those
    /// namespaces are dead and must be garbage-collected by the caller.
    pub fn release_set(&self, set: &NamespaceSet) -> Vec<(NamespaceKind, NamespaceId)> {
        let mut counts = self.counts.lock();
        let mut dead = Vec::new();
        for kind in ALL_KINDS {
            if Self::release_one(&mut counts, kind, set.get(kind)) {
                dead.push((kind, set.get(kind)));
            }
        }
        dead
    }

    /// Moves one reference from `old` to `new` for `kind` — the `unshare`
    /// transition. `new` is a freshly allocated id, so its entry is
    /// created here. Returns the dead pair if `old`'s count hit zero.
    pub fn transfer(
        &self,
        kind: NamespaceKind,
        old: NamespaceId,
        new: NamespaceId,
    ) -> Option<(NamespaceKind, NamespaceId)> {
        if old == new {
            return None;
        }
        let mut counts = self.counts.lock();
        *counts.entry((kind, new)).or_insert(0) += 1;
        Self::release_one(&mut counts, kind, old).then_some((kind, old))
    }

    /// Atomically adopts a set of existing namespaces — the `setns`
    /// transition. Every `(kind, new)` must still be alive (count > 0):
    /// a namespace at zero has been handed to GC and can never be
    /// resurrected, so the whole adoption fails with `ESRCH`. On success
    /// each reference moves old → new; returns the old pairs that died.
    pub fn adopt_set(
        &self,
        moves: &[(NamespaceKind, NamespaceId, NamespaceId)],
    ) -> SysResult<Vec<(NamespaceKind, NamespaceId)>> {
        let mut counts = self.counts.lock();
        for &(kind, old, new) in moves {
            if old != new && counts.get(&(kind, new)).copied().unwrap_or(0) == 0 {
                return Err(Errno::ESRCH);
            }
        }
        let mut dead = Vec::new();
        for &(kind, old, new) in moves {
            if old == new {
                continue;
            }
            *counts.entry((kind, new)).or_insert(0) += 1;
            if Self::release_one(&mut counts, kind, old) {
                dead.push((kind, old));
            }
        }
        Ok(dead)
    }

    fn release_one(
        counts: &mut HashMap<(NamespaceKind, NamespaceId), u64>,
        kind: NamespaceKind,
        id: NamespaceId,
    ) -> bool {
        match counts.get_mut(&(kind, id)) {
            Some(c) if *c > 1 => {
                *c -= 1;
                false
            }
            Some(_) => {
                counts.remove(&(kind, id));
                true
            }
            None => {
                debug_assert!(false, "released a reference never retained: {kind} {id}");
                false
            }
        }
    }

    /// Process count of one namespace (0 = dead / never existed).
    pub fn count(&self, kind: NamespaceKind, id: NamespaceId) -> u64 {
        self.counts
            .lock()
            .get(&(kind, id))
            .copied()
            .unwrap_or_default()
    }

    /// Number of live `(kind, id)` entries (7 on a freshly booted machine).
    pub fn len(&self) -> usize {
        self.counts.lock().len()
    }

    /// All live entries, sorted by id then kind order (for `/proc`).
    pub fn snapshot(&self) -> Vec<(NamespaceKind, NamespaceId, u64)> {
        let kind_pos = |k: NamespaceKind| ALL_KINDS.iter().position(|&x| x == k).unwrap_or(0);
        let mut v: Vec<(NamespaceKind, NamespaceId, u64)> = self
            .counts
            .lock()
            .iter()
            .map(|(&(kind, id), &count)| (kind, id, count))
            .collect();
        v.sort_unstable_by_key(|&(kind, id, _)| (id, kind_pos(kind)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupPath;
    use crate::cred::Credentials;
    use crate::ns::NamespaceSet;
    use crate::process::{ProcessState, VfsLoc};
    use cntr_types::{Ino, RlimitSet};
    use std::collections::BTreeMap;

    fn proc(pid: Pid) -> Process {
        Process {
            pid,
            ppid: Pid(0),
            name: "p".into(),
            creds: Credentials::host_root(),
            ns: NamespaceSet::uniform(NamespaceId(1)),
            cwd: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            cwd_path: "/".into(),
            root: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            env: BTreeMap::new(),
            rlimits: RlimitSet::default(),
            fds: HashMap::new(),
            next_fd: 0,
            cgroup: CgroupPath::root(),
            state: ProcessState::Running,
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let t = ProcTable::new(10, proc(Pid(1)));
        assert_eq!(t.shard_count(), 16);
        let t = ProcTable::new(1, proc(Pid(1)));
        assert_eq!(t.shard_count(), 1);
    }

    #[test]
    fn alloc_pid_is_unique_across_threads() {
        let t = Arc::new(ProcTable::new(16, proc(Pid(1))));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|_| t.alloc_pid()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Pid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate pid handed out");
    }

    #[test]
    fn lock_pair_same_and_distinct_shards() {
        let t = ProcTable::new(4, proc(Pid(1)));
        // Same shard (1 and 5 with mask 3 both map to shard 1).
        let mut pair = t.lock_pair(Pid(1), Pid(5));
        assert!(pair.get(Pid(1)).is_some());
        pair.insert(proc(Pid(5)));
        assert!(pair.get(Pid(5)).is_some());
        drop(pair);
        // Distinct shards.
        let mut pair = t.lock_pair(Pid(1), Pid(2));
        pair.insert(proc(Pid(2)));
        assert!(pair.get(Pid(2)).is_some());
        drop(pair);
        assert_eq!(t.pids(), vec![Pid(1), Pid(2), Pid(5)]);
    }

    /// Rule 1 enforced: the shard class is registered `Sharded { ascending:
    /// true }`, so taking a lower-indexed shard while holding a higher one
    /// — the mirror image of `lock_pair` — must panic deterministically.
    #[test]
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    fn descending_shard_acquisition_panics() {
        let err = std::thread::spawn(|| {
            let t = ProcTable::new(4, proc(Pid(1)));
            let _hi = t.shards[2].lock();
            let _lo = t.shards[0].lock();
        })
        .join()
        .expect_err("descending shard order must be rejected");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(msg.contains("lockdep:"), "{msg}");
        assert!(msg.contains("strictly ascending"), "{msg}");
        assert!(msg.contains(lock_class::PROC_SHARD), "{msg}");
    }

    /// The ascending direction — `lock_pair`'s order — stays allowed.
    #[test]
    fn ascending_shard_acquisition_is_allowed() {
        let t = ProcTable::new(4, proc(Pid(1)));
        let _lo = t.shards[0].lock();
        let _hi = t.shards[2].lock();
    }

    #[test]
    fn ns_refs_retain_release_roundtrip() {
        let init = NamespaceSet::uniform(NamespaceId(1));
        let refs = NsRefs::new(&init);
        assert_eq!(refs.len(), 7);
        assert_eq!(refs.count(NamespaceKind::Mount, NamespaceId(1)), 1);
        refs.retain_set(&init); // fork
        assert_eq!(refs.count(NamespaceKind::Mount, NamespaceId(1)), 2);
        assert!(refs.release_set(&init).is_empty(), "init still holds refs");
        // Releasing the last holder reports every pair dead.
        let dead = refs.release_set(&init);
        assert_eq!(dead.len(), 7);
        assert_eq!(refs.len(), 0);
    }

    #[test]
    fn ns_refs_transfer_creates_new_and_kills_old() {
        let init = NamespaceSet::uniform(NamespaceId(1));
        let refs = NsRefs::new(&init);
        // A second process unshares its mount namespace.
        let mut child = init;
        refs.retain_set(&child);
        assert_eq!(
            refs.transfer(NamespaceKind::Mount, child.mount, NamespaceId(2)),
            None,
            "init still references mount ns 1"
        );
        child.set(NamespaceKind::Mount, NamespaceId(2));
        assert_eq!(refs.count(NamespaceKind::Mount, NamespaceId(2)), 1);
        // Unsharing again abandons ns 2 — its sole reference moves away.
        assert_eq!(
            refs.transfer(NamespaceKind::Mount, NamespaceId(2), NamespaceId(3)),
            Some((NamespaceKind::Mount, NamespaceId(2)))
        );
        assert_eq!(refs.count(NamespaceKind::Mount, NamespaceId(2)), 0);
    }

    #[test]
    fn ns_refs_adopt_refuses_dead_namespace() {
        let init = NamespaceSet::uniform(NamespaceId(1));
        let refs = NsRefs::new(&init);
        // Nothing ever lived in ns 9: adoption must fail atomically.
        let moves = [
            (NamespaceKind::Mount, NamespaceId(1), NamespaceId(9)),
            (NamespaceKind::Uts, NamespaceId(1), NamespaceId(1)),
        ];
        assert_eq!(refs.adopt_set(&moves), Err(Errno::ESRCH));
        // The failed adoption must not have touched any count.
        assert_eq!(refs.count(NamespaceKind::Mount, NamespaceId(1)), 1);
        assert_eq!(refs.len(), 7);
        // Adopting a live namespace moves the reference.
        refs.transfer(NamespaceKind::Mount, NamespaceId(1), NamespaceId(2));
        // (init now in mount ns 2; a forked process in ns 2 adopts... back
        // to a dead ns 1 must fail, self-moves are no-ops.)
        assert_eq!(
            refs.adopt_set(&[(NamespaceKind::Mount, NamespaceId(2), NamespaceId(1))]),
            Err(Errno::ESRCH),
            "mount ns 1 died when its last reference moved away"
        );
        assert_eq!(
            refs.adopt_set(&[(NamespaceKind::Mount, NamespaceId(2), NamespaceId(2))]),
            Ok(Vec::new())
        );
    }

    #[test]
    fn mount_table_remove_returns_table_for_deferred_drop() {
        use crate::mount::CacheMode;
        use cntr_fs::memfs::memfs;
        use cntr_types::{DevId, SimClock};
        let root = MountNs::new(
            NamespaceId(1),
            MountId(1),
            memfs(DevId(1), SimClock::new()),
            CacheMode::native(),
        );
        let t = MountTable::new(root);
        let clone = t
            .with_read(NamespaceId(1), |ns| Ok(ns.clone_for(NamespaceId(2))))
            .unwrap();
        t.insert(clone);
        assert_eq!(t.len(), 2);
        let removed = t.remove(NamespaceId(2)).expect("registered above");
        assert_eq!(t.len(), 1);
        assert_eq!(removed.read().id, NamespaceId(2));
        assert!(t.remove(NamespaceId(2)).is_none());
    }

    #[test]
    fn mount_table_snapshot_missing_ns() {
        use crate::mount::CacheMode;
        use cntr_fs::memfs::memfs;
        use cntr_types::{DevId, SimClock};
        let ns = MountNs::new(
            NamespaceId(1),
            MountId(1),
            memfs(DevId(1), SimClock::new()),
            CacheMode::native(),
        );
        let t = MountTable::new(ns);
        assert!(t.snapshot(NamespaceId(1)).is_ok());
        assert_eq!(t.snapshot(NamespaceId(9)).map(|_| ()), Err(Errno::EINVAL));
        assert_eq!(t.ids(), vec![NamespaceId(1)]);
        assert_eq!(t.alloc_mount_id(), MountId(2));
        assert_eq!(t.alloc_mount_id(), MountId(3));
    }
}
