//! Sharded kernel tables: the fine-grained locking layer under [`crate::Kernel`].
//!
//! The kernel used to serialize every syscall on a single `Mutex<KState>`.
//! That was correct but made hundreds of containers impossible to *run*
//! concurrently: two processes could not even `getenv` at the same time.
//! This module splits the state into independently locked subsystems:
//!
//! * `ProcTable` — the process table, sharded over a fixed power-of-two
//!   array of mutexes keyed by `pid % shards`. Syscalls touching one
//!   process lock one shard; unrelated pids proceed in parallel.
//! * `MountTable` — one `RwLock<MountNs>` per mount namespace behind an
//!   outer `RwLock` registry. Path resolution (read-mostly) takes read
//!   locks only, so `mount`/`umount` in one container no longer blocks
//!   lookups in every other container.
//!
//! Id allocators (`next_pid`, `next_ns`, `next_mount`) are atomics; the
//! remaining small subsystems (cgroups, hostnames, bound sockets, fanotify)
//! each get their own lock on the kernel inner state.
//!
//! # Lock-ordering discipline
//!
//! Deadlock freedom rests on three rules, observed by every call site:
//!
//! 1. **At most one process shard is locked directly.** The only way to
//!    hold two is `ProcTable::lock_pair`, which acquires them in
//!    ascending shard-index order (`fork` uses this so a `/proc` snapshot
//!    never observes a child without its parent mid-fork).
//! 2. **Subsystem locks never nest.** Cross-subsystem operations
//!    (`fork` + cgroup attach, `unshare` + mount-table clone, `setns`)
//!    copy what they need out of one subsystem, release it, then touch the
//!    next — in the canonical order *processes → mounts → cgroups /
//!    hostnames / sockets / fanotify*.
//! 3. **Mount locks go outer-before-inner, one namespace at a time.** The
//!    registry read lock is dropped before an inner `MountNs` lock is
//!    taken (the `Arc` keeps the namespace alive), and no thread ever
//!    holds two inner mount locks simultaneously (propagation walks peers
//!    sequentially).

use crate::mount::{MountId, MountNs};
use crate::ns::NamespaceId;
use crate::process::Process;
use cntr_types::{Errno, Pid, SysResult};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of process-table shards (a power of two).
pub const DEFAULT_PROC_SHARDS: usize = 16;

type Shard = HashMap<Pid, Process>;

/// The pid-sharded process table.
pub(crate) struct ProcTable {
    shards: Box<[Mutex<Shard>]>,
    mask: usize,
    next_pid: AtomicU32,
}

impl ProcTable {
    /// Creates a table with `shards` shards (rounded up to a power of two)
    /// holding `init` as pid 1.
    pub fn new(shards: usize, init: Process) -> ProcTable {
        let n = shards.max(1).next_power_of_two();
        let table = ProcTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            next_pid: AtomicU32::new(2),
        };
        table.shards[table.index(init.pid)]
            .lock()
            .insert(init.pid, init);
        table
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn index(&self, pid: Pid) -> usize {
        pid.raw() as usize & self.mask
    }

    /// Allocates a fresh pid. Atomic: concurrent forks can never hand out
    /// the same pid twice (a fork that later fails burns its pid, as the
    /// real kernel may).
    pub fn alloc_pid(&self) -> Pid {
        Pid(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs `f` over the process, holding only its shard.
    pub fn with<T>(&self, pid: Pid, f: impl FnOnce(&Process) -> SysResult<T>) -> SysResult<T> {
        let shard = self.shards[self.index(pid)].lock();
        let p = shard.get(&pid).ok_or(Errno::ESRCH)?;
        f(p)
    }

    /// Runs `f` over the process mutably, holding only its shard.
    pub fn with_mut<T>(
        &self,
        pid: Pid,
        f: impl FnOnce(&mut Process) -> SysResult<T>,
    ) -> SysResult<T> {
        let mut shard = self.shards[self.index(pid)].lock();
        let p = shard.get_mut(&pid).ok_or(Errno::ESRCH)?;
        f(p)
    }

    /// True if the pid is in the table (any lifecycle state).
    pub fn contains(&self, pid: Pid) -> bool {
        self.shards[self.index(pid)].lock().contains_key(&pid)
    }

    /// Locks the shard owning `pid` (single-shard compound operations).
    pub fn lock_shard_of(&self, pid: Pid) -> MutexGuard<'_, Shard> {
        self.shards[self.index(pid)].lock()
    }

    /// Locks the shards of `a` and `b` together, in ascending shard-index
    /// order (rule 1 of the module-level discipline). Used by `fork` so the
    /// parent's shard stays held while the child is inserted.
    pub fn lock_pair(&self, a: Pid, b: Pid) -> ShardPair<'_> {
        let (ia, ib) = (self.index(a), self.index(b));
        let (lo_idx, hi_idx) = (ia.min(ib), ia.max(ib));
        let lo = self.shards[lo_idx].lock();
        let hi = (lo_idx != hi_idx).then(|| self.shards[hi_idx].lock());
        ShardPair {
            lo,
            hi,
            lo_idx,
            mask: self.mask,
        }
    }

    /// All pids, ordered. Shards are locked one at a time in index order;
    /// the listing is a snapshot, not an atomic view of the whole table.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = Vec::new();
        for shard in self.shards.iter() {
            v.extend(shard.lock().keys().copied());
        }
        v.sort_unstable();
        v
    }
}

/// Two process shards held together, acquired in ascending index order.
pub(crate) struct ShardPair<'a> {
    lo: MutexGuard<'a, Shard>,
    hi: Option<MutexGuard<'a, Shard>>,
    lo_idx: usize,
    mask: usize,
}

impl ShardPair<'_> {
    fn map_for(&mut self, pid: Pid) -> &mut Shard {
        if pid.raw() as usize & self.mask == self.lo_idx {
            &mut self.lo
        } else {
            self.hi.as_mut().expect("pid belongs to one of the pair")
        }
    }

    /// The process, if present in either held shard.
    pub fn get(&mut self, pid: Pid) -> Option<&Process> {
        let shard: &Shard = self.map_for(pid);
        shard.get(&pid)
    }

    /// Inserts a process into whichever held shard owns its pid.
    pub fn insert(&mut self, p: Process) {
        self.map_for(p.pid).insert(p.pid, p);
    }
}

/// Per-namespace mount tables behind reader/writer locks.
pub(crate) struct MountTable {
    namespaces: RwLock<HashMap<NamespaceId, Arc<RwLock<MountNs>>>>,
    next_mount: AtomicU64,
}

impl MountTable {
    /// Creates the registry holding namespace 1's table.
    pub fn new(root: MountNs) -> MountTable {
        let mut m = HashMap::new();
        m.insert(root.id, Arc::new(RwLock::new(root)));
        MountTable {
            namespaces: RwLock::new(m),
            next_mount: AtomicU64::new(2),
        }
    }

    /// Allocates a fresh mount id (atomic, lock-free).
    pub fn alloc_mount_id(&self) -> MountId {
        MountId(self.next_mount.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers a new namespace's mount table.
    pub fn insert(&self, ns: MountNs) {
        self.namespaces
            .write()
            .insert(ns.id, Arc::new(RwLock::new(ns)));
    }

    /// Deregisters a namespace (rollback of a failed `unshare`; the table
    /// and its filesystem `Arc`s drop once the last snapshot dies).
    pub fn remove(&self, id: NamespaceId) {
        self.namespaces.write().remove(&id);
    }

    fn handle(&self, id: NamespaceId) -> SysResult<Arc<RwLock<MountNs>>> {
        // The outer registry lock is released before the caller touches the
        // inner lock (rule 3: outer-before-inner, never held together).
        self.namespaces
            .read()
            .get(&id)
            .cloned()
            .ok_or(Errno::EINVAL)
    }

    /// Clones one namespace's table (path resolution works on a private
    /// snapshot, so a concurrent umount cannot invalidate a walk mid-way).
    pub fn snapshot(&self, id: NamespaceId) -> SysResult<MountNs> {
        let ns = self.handle(id)?;
        let snap = ns.read().clone();
        Ok(snap)
    }

    /// Runs `f` under one namespace's read lock.
    pub fn with_read<T>(
        &self,
        id: NamespaceId,
        f: impl FnOnce(&MountNs) -> SysResult<T>,
    ) -> SysResult<T> {
        let ns = self.handle(id)?;
        let guard = ns.read();
        f(&guard)
    }

    /// Runs `f` under one namespace's write lock.
    pub fn with_write<T>(
        &self,
        id: NamespaceId,
        f: impl FnOnce(&mut MountNs) -> SysResult<T>,
    ) -> SysResult<T> {
        let ns = self.handle(id)?;
        let mut guard = ns.write();
        f(&mut guard)
    }

    /// Ids of every registered namespace.
    pub fn ids(&self) -> Vec<NamespaceId> {
        let mut v: Vec<NamespaceId> = self.namespaces.read().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupPath;
    use crate::cred::Credentials;
    use crate::ns::NamespaceSet;
    use crate::process::{ProcessState, VfsLoc};
    use cntr_types::{Ino, RlimitSet};
    use std::collections::BTreeMap;

    fn proc(pid: Pid) -> Process {
        Process {
            pid,
            ppid: Pid(0),
            name: "p".into(),
            creds: Credentials::host_root(),
            ns: NamespaceSet::uniform(NamespaceId(1)),
            cwd: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            cwd_path: "/".into(),
            root: VfsLoc {
                mount: MountId(1),
                ino: Ino::ROOT,
            },
            env: BTreeMap::new(),
            rlimits: RlimitSet::default(),
            fds: HashMap::new(),
            next_fd: 0,
            cgroup: CgroupPath::root(),
            state: ProcessState::Running,
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let t = ProcTable::new(10, proc(Pid(1)));
        assert_eq!(t.shard_count(), 16);
        let t = ProcTable::new(1, proc(Pid(1)));
        assert_eq!(t.shard_count(), 1);
    }

    #[test]
    fn alloc_pid_is_unique_across_threads() {
        let t = Arc::new(ProcTable::new(16, proc(Pid(1))));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|_| t.alloc_pid()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Pid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate pid handed out");
    }

    #[test]
    fn lock_pair_same_and_distinct_shards() {
        let t = ProcTable::new(4, proc(Pid(1)));
        // Same shard (1 and 5 with mask 3 both map to shard 1).
        let mut pair = t.lock_pair(Pid(1), Pid(5));
        assert!(pair.get(Pid(1)).is_some());
        pair.insert(proc(Pid(5)));
        assert!(pair.get(Pid(5)).is_some());
        drop(pair);
        // Distinct shards.
        let mut pair = t.lock_pair(Pid(1), Pid(2));
        pair.insert(proc(Pid(2)));
        assert!(pair.get(Pid(2)).is_some());
        drop(pair);
        assert_eq!(t.pids(), vec![Pid(1), Pid(2), Pid(5)]);
    }

    #[test]
    fn mount_table_snapshot_missing_ns() {
        use crate::mount::CacheMode;
        use cntr_fs::memfs::memfs;
        use cntr_types::{DevId, SimClock};
        let ns = MountNs::new(
            NamespaceId(1),
            MountId(1),
            memfs(DevId(1), SimClock::new()),
            CacheMode::native(),
        );
        let t = MountTable::new(ns);
        assert!(t.snapshot(NamespaceId(1)).is_ok());
        assert_eq!(t.snapshot(NamespaceId(9)).map(|_| ()), Err(Errno::EINVAL));
        assert_eq!(t.ids(), vec![NamespaceId(1)]);
        assert_eq!(t.alloc_mount_id(), MountId(2));
        assert_eq!(t.alloc_mount_id(), MountId(3));
    }
}
