//! Write-back batching: contiguous dirty runs flush as single large
//! writes, observable in `flush_batches`/`flushed_pages` — plus the
//! threaded-transport write-back deadlock regression re-run with batching
//! enabled.

use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::conn::ThreadedTransport;
use cntr_fuse::proto::{Reply, Request};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, FuseHandler, Transport};
use cntr_kernel::pagecache::{FileRef, PageCache};
use cntr_kernel::CacheMode;
use cntr_types::{CostModel, DevId, FileType, Ino, Mode, OpenFlags, SimClock};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 4096;

fn cache_with(coalesce: bool, dirty_limit: u64) -> (Arc<PageCache>, Arc<FileRef>, DevId) {
    let clock = SimClock::new();
    let fs = memfs(DevId(1), clock.clone());
    let st = fs
        .mknod(
            Ino::ROOT,
            "f",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &FsContext::root(),
        )
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    let file = Arc::new(FileRef {
        fs: fs as Arc<dyn Filesystem>,
        ino: st.ino,
        fh,
    });
    let cache = Arc::new(
        PageCache::new(clock, CostModel::calibrated(), 256 << 20, dirty_limit)
            .with_coalesce(coalesce),
    );
    (cache, file, DevId(1))
}

/// 256 contiguous dirty pages must flush as exactly one batched write.
#[test]
fn contiguous_run_flushes_as_one_batch() {
    let (cache, file, dev) = cache_with(true, 1 << 30);
    let mode = CacheMode::native();
    cache
        .write(dev, mode, &file, 0, &vec![7u8; 256 * PAGE])
        .unwrap();
    cache.flush_file(dev, file.ino).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.flushed_pages, 256, "all dirty pages written back");
    assert_eq!(stats.flush_batches, 1, "one contiguous run = one write");
    // The data really landed.
    assert_eq!(file.fs.getattr(file.ino).unwrap().size, 256 * PAGE as u64);
}

/// A one-page hole splits the dirty set into exactly two batches.
#[test]
fn a_hole_splits_the_run_into_two_batches() {
    let (cache, file, dev) = cache_with(true, 1 << 30);
    let mode = CacheMode::native();
    // Pages 0..128 dirty, page 128 clean (hole), pages 129..256 dirty.
    cache
        .write(dev, mode, &file, 0, &vec![1u8; 128 * PAGE])
        .unwrap();
    cache
        .write(dev, mode, &file, 129 * PAGE as u64, &vec![2u8; 127 * PAGE])
        .unwrap();
    cache.flush_file(dev, file.ino).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.flushed_pages, 255);
    assert_eq!(stats.flush_batches, 2, "the hole forces exactly two runs");
}

/// With coalescing disabled every page is its own write — the per-page
/// baseline the batched path is measured against.
#[test]
fn uncoalesced_writeback_is_one_write_per_page() {
    let (cache, file, dev) = cache_with(false, 1 << 30);
    let mode = CacheMode::native();
    cache
        .write(dev, mode, &file, 0, &vec![9u8; 256 * PAGE])
        .unwrap();
    cache.flush_file(dev, file.ino).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.flushed_pages, 256);
    assert_eq!(stats.flush_batches, 256, "no coalescing = per-page writes");
}

/// A server handler whose request handling *re-enters the transport it is
/// served by* — the shape of a FUSE server whose backing I/O trips
/// write-back of pages belonging to the very mount it serves. With one
/// worker, the re-entrant request deadlocks unless the transport executes
/// worker-originated requests inline (the PR 3 fix, re-proven here with
/// batched write-back issuing large spliced WRITE requests).
#[derive(Clone)]
struct ReentrantHandler {
    inner: FsHandler,
    transport: Arc<Mutex<Option<Arc<dyn Transport>>>>,
}

impl FuseHandler for ReentrantHandler {
    fn handle(&self, req: Request) -> Reply {
        if matches!(req, Request::Write { .. }) {
            let t = self.transport.lock().clone();
            if let Some(t) = t {
                // The server's backing write re-enters its own mount.
                let reply = t.call(Request::Getattr { ino: Ino::ROOT });
                assert!(
                    !matches!(reply, Reply::Err(_)),
                    "re-entrant request must be served"
                );
            }
        }
        self.inner.handle(req)
    }
}

#[test]
fn batched_writeback_survives_threaded_reentrancy() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let clock = SimClock::new();
        let backing = memfs(DevId(5), clock.clone());
        let transport_slot = Arc::new(Mutex::new(None));
        let handler = ReentrantHandler {
            inner: FsHandler::new(backing),
            transport: Arc::clone(&transport_slot),
        };
        // One worker: a queued re-entrant request can never be served.
        let transport = Arc::new(ThreadedTransport::new(handler, 1));
        *transport_slot.lock() = Some(Arc::clone(&transport) as Arc<dyn Transport>);
        let client = FuseClientFs::mount(
            DevId(0xC1),
            clock.clone(),
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        let st = client
            .mknod(
                Ino::ROOT,
                "wb",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = client.open(st.ino, OpenFlags::RDWR).unwrap();
        // A small dirty limit so write-back (batched, splice-write on)
        // triggers repeatedly while ops are in flight.
        let cache = Arc::new(
            PageCache::new(clock, CostModel::calibrated(), 64 << 20, 8 * PAGE as u64)
                .with_coalesce(true),
        );
        let dev = DevId(0xC1);
        let fref = Arc::new(FileRef {
            fs: Arc::clone(&client) as Arc<dyn Filesystem>,
            ino: st.ino,
            fh,
        });
        let mode = CacheMode::native();
        let payload = vec![0xABu8; 16 * PAGE];
        for round in 0..8u64 {
            cache
                .write(dev, mode, &fref, round * payload.len() as u64, &payload)
                .unwrap();
        }
        cache.fsync(dev, &fref, false).unwrap();
        // Everything flushed; the batched runs really landed.
        assert_eq!(cache.dirty_bytes(), 0);
        assert_eq!(
            client.getattr(st.ino).unwrap().size,
            8 * 16 * PAGE as u64,
            "batched write-back must deliver every run"
        );
        let mut buf = vec![0u8; PAGE];
        cache.read(dev, mode, &fref, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xAB));
        let stats = cache.stats();
        assert!(stats.flush_batches > 0);
        assert!(
            stats.flush_batches < stats.flushed_pages,
            "write-back stayed batched under the threaded transport: \
             batches={} pages={}",
            stats.flush_batches,
            stats.flushed_pages
        );
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(60)).expect(
        "deadlock: a worker-originated (re-entrant) write-back request \
         was queued behind itself instead of executing inline",
    );
}

/// The same re-entrancy trap over the io_uring-style ring transport: a
/// single reaper with a depth-8 SQ and batched doorbells. A worker whose
/// handler re-enters `call` would queue the request on its own ring and
/// park behind it forever — the ring must execute worker-originated
/// requests inline exactly like the threaded path.
#[test]
fn batched_writeback_survives_ring_reentrancy() {
    use cntr_fuse::RingTransport;

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let clock = SimClock::new();
        let backing = memfs(DevId(6), clock.clone());
        let transport_slot = Arc::new(Mutex::new(None));
        let handler = ReentrantHandler {
            inner: FsHandler::new(backing),
            transport: Arc::clone(&transport_slot),
        };
        // One reaper: a queued re-entrant request can never be served.
        let transport = Arc::new(RingTransport::new(handler, 1, 8, 4));
        *transport_slot.lock() = Some(Arc::clone(&transport) as Arc<dyn Transport>);
        let client = FuseClientFs::mount(
            DevId(0xC2),
            clock.clone(),
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        let st = client
            .mknod(
                Ino::ROOT,
                "wb",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = client.open(st.ino, OpenFlags::RDWR).unwrap();
        let cache = Arc::new(
            PageCache::new(clock, CostModel::calibrated(), 64 << 20, 8 * PAGE as u64)
                .with_coalesce(true),
        );
        let dev = DevId(0xC2);
        let fref = Arc::new(FileRef {
            fs: Arc::clone(&client) as Arc<dyn Filesystem>,
            ino: st.ino,
            fh,
        });
        let mode = CacheMode::native();
        let payload = vec![0xCDu8; 16 * PAGE];
        for round in 0..8u64 {
            cache
                .write(dev, mode, &fref, round * payload.len() as u64, &payload)
                .unwrap();
        }
        cache.fsync(dev, &fref, false).unwrap();
        assert_eq!(cache.dirty_bytes(), 0);
        assert_eq!(
            client.getattr(st.ino).unwrap().size,
            8 * 16 * PAGE as u64,
            "batched write-back must deliver every run over the ring"
        );
        let mut buf = vec![0u8; PAGE];
        cache.read(dev, mode, &fref, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xCD));
        let stats = cache.stats();
        assert!(stats.flush_batches > 0);
        assert!(
            stats.flush_batches < stats.flushed_pages,
            "write-back stayed batched under the ring transport: \
             batches={} pages={}",
            stats.flush_batches,
            stats.flushed_pages
        );
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(60)).expect(
        "deadlock: a reaper-originated (re-entrant) write-back request \
         was queued on its own submission ring instead of executing inline",
    );
}
