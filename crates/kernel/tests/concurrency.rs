//! Multithreaded stress of the sharded kernel: 8 OS threads fork, exec,
//! attach (setns + adopt_root), mount and umount across 64 containers.
//!
//! The assertions are the invariants the giant-lock kernel enforced by
//! construction and the sharded kernel must preserve under real
//! concurrency:
//!
//! * the test terminates (no deadlock between shard / mount / subsystem
//!   locks — any ordering bug hangs the suite),
//! * every pid handed out is unique,
//! * `/proc` snapshots are never torn (a child observed via `/proc` always
//!   has a live parent at snapshot time),
//! * refcounts hold: an umounted filesystem drops back to a single `Arc`
//!   reference, the process table returns to exactly the survivors, and
//!   the root cgroup tracks the live pid set,
//! * namespace GC holds: once every container is exited and reaped, the
//!   mount-namespace registry, the hostname map, the socket-node map and
//!   the per-namespace refcount table all return to the boot baseline —
//!   no transition under 8-thread churn leaks or double-frees a
//!   namespace.

use cntr_fs::memfs::memfs;
use cntr_kernel::kernel::KernelConfig;
use cntr_kernel::{CacheMode, Kernel, MountFlags, NamespaceKind};
use cntr_types::{DevId, Mode, OpenFlags, Pid, SimClock};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

const THREADS: usize = 8;
const CONTAINERS: usize = 64;
const ROUNDS: usize = 25;

struct Harness {
    kernel: Kernel,
    clock: SimClock,
    /// Every pid ever returned by `fork`, for the uniqueness assertion.
    all_pids: Mutex<HashSet<Pid>>,
}

impl Harness {
    fn fork(&self, parent: Pid) -> Pid {
        let pid = self.kernel.fork(parent).expect("fork");
        assert!(
            self.all_pids.lock().insert(pid),
            "duplicate pid {pid} handed out"
        );
        pid
    }
}

fn read_to_string(kernel: &Kernel, pid: Pid, path: &str) -> String {
    let fd = kernel
        .open(pid, path, OpenFlags::RDONLY, Mode::RW_R__R__)
        .expect("open");
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = kernel.read_fd(pid, fd, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    kernel.close(pid, fd).expect("close");
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn stress_fork_exec_attach_umount_across_containers() {
    let clock = SimClock::new();
    let root = memfs(DevId(1), clock.clone());
    let kernel = Kernel::with_clock(
        clock.clone(),
        root,
        CacheMode::native(),
        KernelConfig::default(),
    );
    kernel.mkdir(Pid::INIT, "/proc", Mode::RWXR_XR_X).unwrap();
    kernel.mount_procfs(Pid::INIT, "/proc").unwrap();

    // The boot baseline the namespace GC must restore at the end.
    let baseline = (
        kernel.mount_ns_ids(),
        kernel.hostname_count(),
        kernel.socket_node_count(),
        kernel.ns_ref_entries(),
    );
    assert_eq!(baseline.0.len(), 1);
    assert_eq!((baseline.1, baseline.2, baseline.3), (1, 0, 7));

    let harness = Arc::new(Harness {
        kernel: kernel.clone(),
        clock: clock.clone(),
        all_pids: Mutex::new_class("kernel.test.all_pids", HashSet::new()),
    });

    // 64 containers: own mount + UTS namespaces, private propagation, a
    // private working directory and an executable "binary".
    let mut containers = Vec::with_capacity(CONTAINERS);
    for i in 0..CONTAINERS {
        let pid = harness.fork(Pid::INIT);
        kernel
            .unshare(
                pid,
                &[NamespaceKind::Mount, NamespaceKind::Uts, NamespaceKind::Pid],
            )
            .expect("unshare");
        kernel.make_rprivate(pid).expect("make_rprivate");
        kernel.sethostname(pid, &format!("c{i}")).expect("hostname");
        let dir = format!("/c{i}");
        kernel.mkdir(pid, &dir, Mode::RWXR_XR_X).expect("mkdir");
        let bin = format!("{dir}/tool");
        let fd = kernel
            .open(pid, &bin, OpenFlags::create(), Mode::RWXR_XR_X)
            .expect("create tool");
        kernel.write_fd(pid, fd, b"#!tool").expect("write tool");
        kernel.close(pid, fd).expect("close tool");
        containers.push((pid, dir));
    }

    let mut handles = Vec::new();
    let per_thread = CONTAINERS / THREADS;
    for t in 0..THREADS {
        let harness = Arc::clone(&harness);
        let own: Vec<(Pid, String)> = containers[t * per_thread..(t + 1) * per_thread].to_vec();
        handles.push(std::thread::spawn(move || {
            let kernel = &harness.kernel;
            for round in 0..ROUNDS {
                for (cpid, dir) in &own {
                    let (cpid, idx) = (*cpid, round % 4);

                    // fork + /proc snapshot consistency: the child's status
                    // file must name a live parent the instant it exists.
                    let child = harness.fork(cpid);
                    let status = read_to_string(kernel, cpid, &format!("/proc/{child}/status"));
                    assert!(status.contains(&format!("PPid:\t{cpid}")), "{status}");

                    // exec: read the container's tool binary.
                    let image = kernel
                        .exec_read(child, &format!("{dir}/tool"))
                        .expect("exec");
                    assert_eq!(image, b"#!tool");

                    // attach (the CNTR protocol kernel steps): a host tool
                    // joins the container's namespaces and adopts its root.
                    let tool = harness.fork(Pid::INIT);
                    kernel
                        .setns(tool, cpid, &[NamespaceKind::Mount, NamespaceKind::Uts])
                        .expect("setns");
                    kernel.adopt_root(tool, cpid).expect("adopt_root");
                    // Joined the container's UTS namespace: same hostname.
                    assert_eq!(
                        kernel.gethostname(tool).expect("tool hostname"),
                        kernel.gethostname(cpid).expect("container hostname"),
                    );

                    // mount/umount churn in the container's namespace; the
                    // filesystem must be fully released afterwards.
                    let sub = memfs(DevId(10_000 + child.raw() as u64), harness.clock.clone());
                    let at = format!("{dir}/m{idx}");
                    let _ = kernel.mkdir(cpid, &at, Mode::RWXR_XR_X);
                    kernel
                        .mount_fs(
                            cpid,
                            &at,
                            Arc::clone(&sub) as Arc<dyn cntr_fs::Filesystem>,
                            CacheMode::native(),
                            MountFlags::default(),
                        )
                        .expect("mount");
                    let fd = kernel
                        .open(
                            cpid,
                            &format!("{at}/x"),
                            OpenFlags::create(),
                            Mode::RW_R__R__,
                        )
                        .expect("create in mount");
                    kernel.close(cpid, fd).expect("close");
                    kernel.umount(cpid, &at).expect("umount");
                    assert_eq!(
                        Arc::strong_count(&sub),
                        1,
                        "umounted filesystem must drop to one reference"
                    );

                    // Socket churn in the container's namespace: bind,
                    // connect, close everything, unlink — the node must
                    // fully unbind every round.
                    let sock = format!("{dir}/round.sock");
                    let lfd = kernel.bind_listener(cpid, &sock).expect("bind");
                    let cfd = kernel.connect(cpid, &sock).expect("connect");
                    let sfd = kernel.accept(cpid, lfd).expect("accept");
                    kernel.close(cpid, cfd).expect("close client");
                    kernel.close(cpid, sfd).expect("close server");
                    kernel.close(cpid, lfd).expect("close listener");
                    kernel.unlink(cpid, &sock).expect("unlink sock");

                    // Environment churn on the container (shard-local).
                    kernel
                        .setenv(cpid, "ROUND", &round.to_string())
                        .expect("setenv");

                    // Tear down this round's processes.
                    kernel.exit(tool).expect("exit tool");
                    kernel.reap(tool).expect("reap tool");
                    kernel.exit(child).expect("exit child");
                    kernel.reap(child).expect("reap child");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread must not panic");
    }

    // Survivors: init + the 64 containers, exactly.
    let mut expected: Vec<Pid> = vec![Pid::INIT];
    expected.extend(containers.iter().map(|(p, _)| *p));
    expected.sort_unstable();
    assert_eq!(kernel.pids(), expected);

    // The root cgroup tracks exactly the live pid set (every transient
    // process was detached on exit).
    let members = kernel
        .cgroup_members(&cntr_kernel::CgroupPath::root())
        .expect("members");
    let mut members = members;
    members.sort_unstable();
    assert_eq!(members, expected);

    // Hostname isolation survived the churn.
    for (i, (pid, _)) in containers.iter().enumerate() {
        assert_eq!(kernel.gethostname(*pid).unwrap(), format!("c{i}"));
    }
    assert_eq!(kernel.gethostname(Pid::INIT).unwrap(), "host");

    // Total forks: setup + 2 per container-round, all unique.
    let total = harness.all_pids.lock().len();
    assert_eq!(total, CONTAINERS + CONTAINERS * ROUNDS * 2);

    // While the containers live, their namespaces do: 64 mount namespaces
    // + the root, 64 hostnames + the host's.
    assert_eq!(kernel.mount_ns_ids().len(), 1 + CONTAINERS);
    assert_eq!(kernel.hostname_count(), 1 + CONTAINERS);

    // Namespace-GC invariant: exit + reap every container and the machine
    // must return to the boot baseline — registry, hostnames, socket
    // nodes and refcount entries all reclaimed, nothing double-freed.
    for (pid, _) in &containers {
        kernel.exit(*pid).expect("exit container");
        kernel.reap(*pid).expect("reap container");
    }
    assert_eq!(kernel.pids(), vec![Pid::INIT]);
    assert_eq!(
        (
            kernel.mount_ns_ids(),
            kernel.hostname_count(),
            kernel.socket_node_count(),
            kernel.ns_ref_entries(),
        ),
        baseline,
        "namespace GC must restore the boot baseline"
    );

    // Observability invariants at quiescence (this binary holds exactly one
    // test, so no concurrent test is mutating the process-global metrics).
    // Every page-cache lookup resolved to exactly one hit or miss — the
    // RAII/accounting symmetry satellite of the obs PR.
    let lookups = obs::counter_value("pagecache.lookups").unwrap_or(0);
    let hits = obs::counter_value("pagecache.hits").unwrap_or(0);
    let misses = obs::counter_value("pagecache.misses").unwrap_or(0);
    assert!(lookups > 0, "stress must have exercised the page cache");
    assert_eq!(
        hits + misses,
        lookups,
        "every lookup is exactly one hit or one miss"
    );

    // A threaded-FUSE bout and a ring-FUSE bout after the stress: request
    // accounting must be symmetric (started == completed) across both
    // dispatch shapes and the in-flight gauge must drain back to zero once
    // every worker went home.
    fuse_request_accounting_bout();
    fuse_ring_accounting_bout();
    let started = obs::counter_value("fuse.req.started").unwrap_or(0);
    let completed = obs::counter_value("fuse.req.completed").unwrap_or(0);
    assert!(started > 0, "the FUSE bout must have issued requests");
    assert_eq!(started, completed, "every request started must complete");
    assert_eq!(
        obs::gauge_value("fuse.req.in-flight").unwrap_or(0),
        0,
        "queue depth must return to zero at quiescence"
    );
    assert_eq!(
        obs::gauge_value("fuse.ring.queue-depth").unwrap_or(0),
        0,
        "submission rings must drain back to empty at quiescence"
    );
}

/// Hammers a threaded FUSE mount from several threads, then tears it down.
fn fuse_request_accounting_bout() {
    use cntr_fs::Filesystem;
    use cntr_fuse::conn::ThreadedTransport;
    use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig};
    use cntr_types::{CostModel, FileType, Ino};

    let clock = SimClock::new();
    let backing = memfs(DevId(7_000), clock.clone());
    let transport = Arc::new(ThreadedTransport::new(FsHandler::new(backing), 4));
    let client = FuseClientFs::mount(
        DevId(0xF0),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("fuse mount");

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            let ctx = cntr_fs::FsContext::root();
            let st = client
                .mknod(
                    Ino::ROOT,
                    &format!("f{t}"),
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &ctx,
                )
                .expect("mknod");
            let fh = client.open(st.ino, OpenFlags::RDWR).expect("open");
            let payload = vec![t as u8; 4096];
            for i in 0..32u64 {
                client.write(st.ino, fh, i * 4096, &payload).expect("write");
                let mut buf = [0u8; 4096];
                client.read(st.ino, fh, i * 4096, &mut buf).expect("read");
            }
            client.release(st.ino, fh).expect("release");
        }));
    }
    for h in handles {
        h.join().expect("fuse bout thread must not panic");
    }
}

/// The same hammering through the io_uring-style ring transport: batched
/// doorbells and multi-reap must preserve the exact accounting symmetry
/// the threaded path has, under the lockdep checkpoints at the ring's
/// park/reap points.
fn fuse_ring_accounting_bout() {
    use cntr_fs::Filesystem;
    use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, RingTransport};
    use cntr_types::{CostModel, FileType, Ino};

    let clock = SimClock::new();
    let backing = memfs(DevId(7_001), clock.clone());
    let transport = Arc::new(RingTransport::new(FsHandler::new(backing), 4, 64, 8));
    let client = FuseClientFs::mount(
        DevId(0xF1),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("fuse mount over ring");

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            let ctx = cntr_fs::FsContext::root();
            let st = client
                .mknod(
                    Ino::ROOT,
                    &format!("r{t}"),
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &ctx,
                )
                .expect("mknod");
            let fh = client.open(st.ino, OpenFlags::RDWR).expect("open");
            let payload = vec![t as u8; 4096];
            for i in 0..32u64 {
                client.write(st.ino, fh, i * 4096, &payload).expect("write");
                let mut buf = [0u8; 4096];
                client.read(st.ino, fh, i * 4096, &mut buf).expect("read");
            }
            client.release(st.ino, fh).expect("release");
        }));
    }
    for h in handles {
        h.join().expect("ring bout thread must not panic");
    }
}
