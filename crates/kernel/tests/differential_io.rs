//! The differential splice/batching oracle.
//!
//! Splice and write-back batching are *transport* optimizations: they may
//! change how bytes move, never what they say. This property test replays
//! random operation sequences — write / aligned write / read / truncate /
//! fsync / remount — through the full kernel VFS + page cache + FUSE stack
//! under **all four `InitFlags` splice combinations × write-back batching
//! on/off**, plus a native (non-FUSE) mount as the ground-truth oracle,
//! and demands byte-identical observations and final file contents from
//! every configuration.
//!
//! A divergence here means a real data-path bug: a spliced buffer aliased
//! after mutation, a batched flush writing the wrong run, a shared page
//! surviving a truncate.

use cntr_fs::memfs::memfs;
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, InitFlags, InlineTransport};
use cntr_kernel::{CacheMode, Kernel, KernelConfig, MountFlags};
use cntr_types::{CostModel, DevId, Mode, OpenFlags, Pid, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

const PAGE: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    /// Unaligned write: `(slot, offset, len-seed)`.
    Write(u8, u32, u16),
    /// Page-aligned contiguous write — the shape batching coalesces:
    /// `(slot, start_page, pages)`.
    WriteRun(u8, u8, u8),
    /// Read back `(slot, offset, len)`.
    Read(u8, u32, u16),
    /// `truncate(2)` to `(slot, size)`.
    Truncate(u8, u32),
    /// `fsync(2)` the slot's file.
    Fsync(u8),
    /// The umount/mount cycle: sync everything dirty, drop every cache
    /// (kernel pages and FUSE client entry/attr/readahead state), so all
    /// state must survive a full round trip through the server.
    Remount,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u32..196_608, 1u16..16_384).prop_map(|(s, o, l)| Op::Write(s, o, l)),
        (0u8..4, 0u8..48, 1u8..16).prop_map(|(s, p, n)| Op::WriteRun(s, p, n)),
        (0u8..4, 0u32..262_144, 1u16..16_384).prop_map(|(s, o, l)| Op::Read(s, o, l)),
        (0u8..4, 0u32..262_144).prop_map(|(s, z)| Op::Truncate(s, z)),
        (0u8..4).prop_map(Op::Fsync),
        Just(Op::Remount),
    ]
}

/// Deterministic payload bytes for a write op.
fn fill(slot: u8, offset: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (slot as usize * 31 + offset as usize + i * 7) as u8 ^ 0x5A)
        .collect()
}

fn fletcher(data: &[u8]) -> u32 {
    let (mut a, mut b) = (0u32, 0u32);
    for &byte in data {
        a = (a + u32::from(byte)) % 65521;
        b = (b + a) % 65521;
    }
    (b << 16) | a
}

/// One configuration under test.
struct Env {
    k: Kernel,
    pid: Pid,
    /// The FUSE client, when this env mounts one (None = native oracle).
    client: Option<Arc<FuseClientFs>>,
    label: String,
}

impl Env {
    fn fuse(splice_read: bool, splice_write: bool, coalesce: bool) -> Env {
        let clock = SimClock::new();
        let root = memfs(DevId(1), clock.clone());
        let config = KernelConfig {
            // A ceiling smaller than the op space's total footprint keeps
            // LRU reclaim (writeback-then-evict) running mid-sequence, and
            // a small dirty limit forces write-back too, so batched and
            // unbatched flushes interleave with the ops. The flusher stays
            // off: every flush happens at a deterministic point, which the
            // replay-comparison oracle depends on.
            page_cache_limit: 240 * PAGE,
            dirty_bytes: 48 * PAGE,
            background_writeback: false,
            coalesce_writeback: coalesce,
            ..KernelConfig::default()
        };
        let k = Kernel::with_clock(clock.clone(), root, CacheMode::native(), config);
        let pid = k.fork(Pid::INIT).expect("fork");
        k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
        let backing = memfs(DevId(2), clock.clone());
        let mut flags = InitFlags::cntr_default();
        flags.splice_read = splice_read;
        flags.splice_write = splice_write;
        let transport = InlineTransport::new(FsHandler::new(backing));
        let client = FuseClientFs::mount(
            DevId(0xC0),
            clock,
            CostModel::calibrated(),
            FuseConfig::optimized().with_flags(flags),
            transport,
        )
        .expect("mount fuse");
        let eff = client.effective_flags();
        let cache = CacheMode {
            writeback: eff.writeback_cache,
            keep_cache: eff.keep_cache,
            synthetic: false,
        };
        k.mount_fs(
            pid,
            "/mnt",
            Arc::clone(&client) as Arc<dyn cntr_fs::Filesystem>,
            cache,
            MountFlags::default(),
        )
        .expect("mount");
        Env {
            k,
            pid,
            client: Some(client),
            label: format!("fuse(sr={splice_read},sw={splice_write},batch={coalesce})"),
        }
    }

    fn native() -> Env {
        let clock = SimClock::new();
        let root = memfs(DevId(1), clock.clone());
        // The oracle runs under the same tight ceiling as the FUSE
        // configurations (reclaim enabled, deterministic inline flush), so
        // a reclaim-path divergence shows up on either side.
        let k = Kernel::with_clock(
            clock.clone(),
            root,
            CacheMode::native(),
            KernelConfig {
                page_cache_limit: 240 * PAGE,
                dirty_bytes: 48 * PAGE,
                background_writeback: false,
                ..KernelConfig::default()
            },
        );
        let pid = k.fork(Pid::INIT).expect("fork");
        k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
        let fs = memfs(DevId(2), clock);
        k.mount_fs(pid, "/mnt", fs, CacheMode::native(), MountFlags::default())
            .expect("mount");
        Env {
            k,
            pid,
            client: None,
            label: "native".to_string(),
        }
    }

    fn path(slot: u8) -> String {
        format!("/mnt/f{slot}")
    }

    /// Applies one op, producing an observation string every configuration
    /// must agree on.
    fn apply(&self, op: &Op) -> String {
        match op {
            Op::Write(slot, offset, lseed) => {
                self.write_at(*slot, u64::from(*offset), *lseed as usize)
            }
            Op::WriteRun(slot, page, pages) => self.write_at(
                *slot,
                u64::from(*page) * PAGE,
                *pages as usize * PAGE as usize,
            ),
            Op::Read(slot, offset, len) => {
                let fd = match self.k.open(
                    self.pid,
                    &Self::path(*slot),
                    OpenFlags::RDONLY,
                    Mode::RW_R__R__,
                ) {
                    Ok(fd) => fd,
                    Err(e) => return format!("read open {e}"),
                };
                let mut buf = vec![0u8; *len as usize];
                let out = match self.k.pread(self.pid, fd, u64::from(*offset), &mut buf) {
                    Ok(n) => format!("read {n} {:08x}", fletcher(&buf[..n])),
                    Err(e) => format!("read {e}"),
                };
                let _ = self.k.close(self.pid, fd);
                out
            }
            Op::Truncate(slot, size) => {
                match self
                    .k
                    .truncate(self.pid, &Self::path(*slot), u64::from(*size))
                {
                    Ok(()) => "trunc ok".to_string(),
                    Err(e) => format!("trunc {e}"),
                }
            }
            Op::Fsync(slot) => {
                let fd = match self.k.open(
                    self.pid,
                    &Self::path(*slot),
                    OpenFlags::RDWR,
                    Mode::RW_R__R__,
                ) {
                    Ok(fd) => fd,
                    Err(e) => return format!("fsync open {e}"),
                };
                let out = match self.k.fsync(self.pid, fd, false) {
                    Ok(()) => "fsync ok".to_string(),
                    Err(e) => format!("fsync {e}"),
                };
                let _ = self.k.close(self.pid, fd);
                out
            }
            Op::Remount => {
                self.k.sync().expect("sync");
                self.k.drop_caches().expect("drop caches");
                if let Some(client) = &self.client {
                    client.drop_caches();
                }
                "remount ok".to_string()
            }
        }
    }

    fn write_at(&self, slot: u8, offset: u64, len: usize) -> String {
        let fd = match self.k.open(
            self.pid,
            &Self::path(slot),
            OpenFlags::RDWR.with(OpenFlags::CREAT),
            Mode::RW_R__R__,
        ) {
            Ok(fd) => fd,
            Err(e) => return format!("write open {e}"),
        };
        let data = fill(slot, offset as u32, len);
        let out = match self.k.pwrite(self.pid, fd, offset, &data) {
            Ok(n) => format!("write {n}"),
            Err(e) => format!("write {e}"),
        };
        let _ = self.k.close(self.pid, fd);
        out
    }

    /// Final observable state: synced size + checksum of every slot.
    fn final_state(&self) -> Vec<String> {
        self.k.sync().expect("final sync");
        (0..4u8)
            .map(|slot| {
                let size = match self.k.stat(self.pid, &Self::path(slot)) {
                    Ok(st) => st.size,
                    Err(e) => return format!("f{slot}: {e}"),
                };
                let fd = self
                    .k
                    .open(
                        self.pid,
                        &Self::path(slot),
                        OpenFlags::RDONLY,
                        Mode::RW_R__R__,
                    )
                    .expect("open for final read");
                let mut content = Vec::new();
                let mut buf = vec![0u8; 16384];
                loop {
                    let n = self.k.read_fd(self.pid, fd, &mut buf).expect("final read");
                    if n == 0 {
                        break;
                    }
                    content.extend_from_slice(&buf[..n]);
                }
                let _ = self.k.close(self.pid, fd);
                format!("f{slot}: size={size} sum={:08x}", fletcher(&content))
            })
            .collect()
    }
}

/// The eight FUSE configurations (4 splice combos × batching on/off) plus
/// the native oracle.
fn all_envs() -> Vec<Env> {
    let mut envs = vec![Env::native()];
    for &sr in &[false, true] {
        for &sw in &[false, true] {
            for &batch in &[false, true] {
                envs.push(Env::fuse(sr, sw, batch));
            }
        }
    }
    envs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn splice_and_batching_never_change_observable_io(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let envs = all_envs();
        for (i, op) in ops.iter().enumerate() {
            let expected = envs[0].apply(op);
            for env in &envs[1..] {
                let got = env.apply(op);
                prop_assert_eq!(
                    &expected, &got,
                    "op {} ({:?}) diverged under {}", i, op, env.label
                );
            }
        }
        let oracle = envs[0].final_state();
        for env in &envs[1..] {
            let got = env.final_state();
            prop_assert_eq!(
                &oracle, &got,
                "final contents diverged under {}", env.label
            );
        }
    }
}

/// Batching changes *how* dirty pages flush, never what lands: the same
/// big contiguous write ends up byte-identical in the backing store, but
/// the coalescing is observable in the flush counters.
#[test]
fn batching_is_invisible_in_content_but_visible_in_counters() {
    let batched = Env::fuse(true, true, true);
    let unbatched = Env::fuse(true, true, false);
    for env in [&batched, &unbatched] {
        let out = env.apply(&Op::WriteRun(0, 0, 64));
        assert_eq!(out, "write 262144");
        assert_eq!(env.apply(&Op::Fsync(0)), "fsync ok");
    }
    assert_eq!(batched.final_state(), unbatched.final_state());
    let b = batched.k.page_cache_stats();
    let u = unbatched.k.page_cache_stats();
    assert_eq!(b.flushed_pages, u.flushed_pages, "same pages either way");
    assert!(
        b.flush_batches < u.flush_batches,
        "coalescing must issue fewer, larger write-back requests: \
         batched={} unbatched={}",
        b.flush_batches,
        u.flush_batches
    );
    assert_eq!(
        u.flush_batches, u.flushed_pages,
        "unbatched write-back is one request per page"
    );
}
