//! Memory-bound stress: the page-cache ceiling must hold under sustained
//! writes far past capacity, and nothing may be lost on the way down.
//!
//! The headline run writes **10× the cache ceiling across 64 containers**
//! and asserts, after every single write, that resident pages never exceed
//! `page_cache_limit` — the regression the two-list reclaim exists to fix:
//! the old evictor skipped dirty pages, so a pure-write workload (every
//! candidate dirty) grew the cache without bound. Contents are verified
//! byte-identical afterwards, so reclaim's writeback-then-evict path is
//! checked for data integrity, not just accounting.
//!
//! The threaded variant runs the same pressure from 8 OS threads with the
//! background flusher enabled. In debug and `--features lockdep` builds
//! this drives the flusher's park checkpoint and the `pagecache.lru` /
//! `pagecache.flusher` rank discipline under real interleavings — the
//! stress must finish lockdep-green.

use cntr_fs::memfs::memfs;
use cntr_kernel::kernel::KernelConfig;
use cntr_kernel::{CacheMode, Kernel, MountFlags, NamespaceKind};
use cntr_types::{DevId, Mode, OpenFlags, Pid, SimClock};
use std::sync::Arc;

const PAGE: usize = 4096;
const CONTAINERS: usize = 64;
/// Ceiling for the stress: 512 pages = 2 MiB.
const CEILING_PAGES: usize = 512;
/// Each container writes this many pages; 64 × 80 = 5120 pages = 10× the
/// ceiling.
const PAGES_PER_CONTAINER: usize = 80;

/// Deterministic, position-dependent payload so an evicted-then-reread page
/// that came back wrong (stale version, clipped run, lost write) cannot
/// masquerade as correct.
fn fill(container: usize, offset: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (container * 131 + offset as usize + i * 7) as u8 ^ 0xA5)
        .collect()
}

fn tight_kernel(background_writeback: bool) -> Kernel {
    let clock = SimClock::new();
    let root = memfs(DevId(1), clock.clone());
    Kernel::with_clock(
        clock,
        root,
        CacheMode::native(),
        KernelConfig {
            page_cache_limit: (CEILING_PAGES * PAGE) as u64,
            // The hard dirty threshold sits above the ceiling: the throttle
            // never fires, so only reclaim's writeback-then-evict path can
            // keep residency bounded — the exact regression under test.
            dirty_bytes: (2 * CEILING_PAGES * PAGE) as u64,
            background_writeback,
            ..KernelConfig::default()
        },
    )
}

/// Sets up `n` containers: own mount+UTS namespaces, private propagation,
/// and a private memfs mounted (write-back cached) at `/c{i}`.
fn containers(kernel: &Kernel, n: usize) -> Vec<(Pid, String)> {
    let clock = kernel.clock().clone();
    (0..n)
        .map(|i| {
            let pid = kernel.fork(Pid::INIT).expect("fork container");
            kernel
                .unshare(pid, &[NamespaceKind::Mount, NamespaceKind::Uts])
                .expect("unshare");
            kernel.make_rprivate(pid).expect("make_rprivate");
            let dir = format!("/c{i}");
            kernel.mkdir(pid, &dir, Mode::RWXR_XR_X).expect("mkdir");
            let fs = memfs(DevId(100 + i as u64), clock.clone());
            kernel
                .mount_fs(
                    pid,
                    &dir,
                    fs as Arc<dyn cntr_fs::Filesystem>,
                    CacheMode::native(),
                    MountFlags::default(),
                )
                .expect("mount container fs");
            (pid, dir)
        })
        .collect()
}

/// The deterministic headline run: single caller, inline write-back, the
/// bound checked after **every** write.
#[test]
fn pure_writes_10x_ceiling_across_64_containers_stay_bounded() {
    let kernel = tight_kernel(false);
    let limit = kernel.page_cache_capacity_pages();
    assert_eq!(limit, CEILING_PAGES);
    let cs = containers(&kernel, CONTAINERS);

    // Open one data file per container and keep the fds; round-robin the
    // writes so every container's pages age together (the fairest — and
    // for a per-file-victim flusher, hardest — interleaving).
    let fds: Vec<u32> = cs
        .iter()
        .enumerate()
        .map(|(i, (pid, _))| {
            kernel
                .open(
                    *pid,
                    &format!("/c{i}/data"),
                    OpenFlags::RDWR.with(OpenFlags::CREAT),
                    Mode::RW_R__R__,
                )
                .expect("create data file")
        })
        .collect();

    let chunk_pages = 4usize;
    let rounds = PAGES_PER_CONTAINER / chunk_pages;
    let mut peak = 0usize;
    for round in 0..rounds {
        for (i, (pid, _)) in cs.iter().enumerate() {
            let offset = (round * chunk_pages * PAGE) as u64;
            let data = fill(i, offset, chunk_pages * PAGE);
            let n = kernel
                .pwrite(*pid, fds[i], offset, &data)
                .expect("pwrite container data");
            assert_eq!(n, data.len());
            let resident = kernel.page_cache_resident_pages();
            peak = peak.max(resident);
            assert!(
                resident <= limit,
                "resident {resident} pages > ceiling {limit} after \
                 container {i} round {round} — the reclaim bound broke"
            );
        }
    }
    // The workload really did exceed the cache by 10×, and reclaim really
    // ran under write-only (all-dirty) pressure.
    assert_eq!(CONTAINERS * PAGES_PER_CONTAINER, 10 * CEILING_PAGES);
    let stats = kernel.page_cache_stats();
    assert!(stats.evictions > 0, "pressure must have evicted pages");
    assert!(
        stats.flushed_pages > 0,
        "an all-dirty cache can only shrink through write-back"
    );
    assert!(peak > limit / 2, "the workload never filled the cache");

    // Byte-identical readback of every page of every container, through
    // the same (now mostly evicted) cache.
    let mut buf = vec![0u8; PAGE];
    for (i, (pid, _)) in cs.iter().enumerate() {
        for page in 0..PAGES_PER_CONTAINER {
            let offset = (page * PAGE) as u64;
            let n = kernel
                .pread(*pid, fds[i], offset, &mut buf)
                .expect("pread back");
            assert_eq!(n, PAGE);
            assert_eq!(
                buf,
                fill(i, offset, PAGE),
                "container {i} page {page} corrupted"
            );
            let resident = kernel.page_cache_resident_pages();
            assert!(
                resident <= limit,
                "readback refill pushed residency to {resident} > {limit}"
            );
        }
    }

    // The LRU accounting is exact: the two lists partition residency.
    let (active, inactive) = kernel.page_cache_residency();
    assert_eq!(active + inactive, kernel.page_cache_resident_pages());
}

/// The same pressure from 8 OS threads with the background flusher on.
/// Exercises the `pagecache.lru`/`pagecache.flusher` lock discipline and
/// the flusher park checkpoint under real interleavings (lockdep-checked
/// in debug and `--features lockdep` builds). The bound allows a small
/// transient overage: each thread detects the crossing only after its own
/// insert.
#[test]
fn threaded_writers_with_flusher_stay_bounded_and_lossless() {
    const THREADS: usize = 8;
    let kernel = tight_kernel(true);
    let limit = kernel.page_cache_capacity_pages();
    let cs = containers(&kernel, CONTAINERS);

    let per_thread = CONTAINERS / THREADS;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let kernel = kernel.clone();
        let own: Vec<(usize, Pid)> = (t * per_thread..(t + 1) * per_thread)
            .map(|i| (i, cs[i].0))
            .collect();
        handles.push(std::thread::spawn(move || {
            for (i, pid) in own {
                let fd = kernel
                    .open(
                        pid,
                        &format!("/c{i}/data"),
                        OpenFlags::RDWR.with(OpenFlags::CREAT),
                        Mode::RW_R__R__,
                    )
                    .expect("create data file");
                for page in 0..PAGES_PER_CONTAINER {
                    let offset = (page * PAGE) as u64;
                    let data = fill(i, offset, PAGE);
                    kernel.pwrite(pid, fd, offset, &data).expect("pwrite");
                    let resident = kernel.page_cache_resident_pages();
                    assert!(
                        resident <= limit + THREADS * 4,
                        "resident {resident} far over ceiling {limit} under \
                         concurrent writers"
                    );
                }
                // fsync through the cache: must interleave safely with the
                // concurrent background flusher draining the same files.
                kernel.fsync(pid, fd, false).expect("fsync");
                kernel.close(pid, fd).expect("close");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread must not panic");
    }

    // All dirty data eventually drains (flusher or inline), and contents
    // survive the concurrent reclaim/write-back byte-identically.
    kernel.sync().expect("final sync");
    assert_eq!(kernel.dirty_bytes(), 0);
    let mut buf = vec![0u8; PAGE];
    for (i, (pid, _)) in cs.iter().enumerate() {
        let fd = kernel
            .open(
                *pid,
                &format!("/c{i}/data"),
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .expect("reopen");
        for page in 0..PAGES_PER_CONTAINER {
            let offset = (page * PAGE) as u64;
            assert_eq!(
                kernel.pread(*pid, fd, offset, &mut buf).expect("pread"),
                PAGE
            );
            assert_eq!(
                buf,
                fill(i, offset, PAGE),
                "container {i} page {page} corrupted under threads"
            );
        }
        kernel.close(*pid, fd).expect("close");
    }
}
