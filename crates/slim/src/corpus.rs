//! A deterministic synthetic Top-50 Docker Hub corpus.
//!
//! The paper evaluates Docker Slim on "the Top-50 popular official container
//! images hosted on Docker Hub ... maintained by Docker and contain\[ing\]
//! commonly used applications such as web servers, databases and web
//! applications" (§5.3). The images themselves are not redistributable, so
//! this corpus reproduces their *structure*: an application binary plus its
//! library closure and configuration (what the app touches at runtime), and
//! distro baggage — shells, coreutils, package managers, docs, locales —
//! that ships in the image but is never accessed. Six images mirror the
//! paper's finding that 6/50 contain "only single executables written in Go
//! and a few configuration files" and therefore reduce by <10%.
//!
//! Generation is seeded and deterministic: the same corpus is produced on
//! every run, so Figure 5 regenerates identically.

use crate::analyzer::{DockerSlim, SlimReport};
use cntr_engine::image::{Image, ImageBuilder};
use cntr_engine::runtime::boot_host;
use cntr_engine::{ContainerRuntime, EngineKind, Registry};
use cntr_types::SimClock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One corpus entry.
pub struct CorpusImage {
    /// The image.
    pub image: Arc<Image>,
    /// True for the Go-style single-binary images (expected reduction <10%).
    pub go_single_binary: bool,
}

/// The 44 application images (web servers, databases, web applications).
const APPS: [&str; 44] = [
    "nginx",
    "httpd",
    "redis",
    "memcached",
    "mysql",
    "mariadb",
    "postgres",
    "mongo",
    "cassandra",
    "couchdb",
    "rabbitmq",
    "kafka",
    "zookeeper",
    "elasticsearch",
    "kibana",
    "logstash",
    "solr",
    "influxdb",
    "telegraf",
    "neo4j",
    "wordpress",
    "drupal",
    "joomla",
    "ghost",
    "nextcloud",
    "owncloud",
    "phpmyadmin",
    "adminer",
    "mediawiki",
    "redmine",
    "jenkins",
    "sonarqube",
    "nexus",
    "teamcity",
    "gitea",
    "haproxy",
    "varnish",
    "squid",
    "tomcat",
    "jetty",
    "node-app",
    "rails-app",
    "django-app",
    "flask-app",
];

/// The 6 Go-style single-binary images (the paper's <10% group).
const GO_APPS: [&str; 6] = [
    "traefik",
    "consul",
    "vault",
    "etcd",
    "prometheus",
    "registry",
];

/// Builds the Top-50 corpus.
pub fn top50_corpus() -> Vec<CorpusImage> {
    let mut rng = SmallRng::seed_from_u64(0x00C1_47E0_2018);
    let mut corpus = Vec::with_capacity(50);
    for (i, name) in APPS.iter().enumerate() {
        // Target reduction spread over [0.55, 0.95]: together with the six
        // Go images this lands the corpus mean near the paper's 66.6%.
        let target = 0.55 + 0.40 * (i as f64 / (APPS.len() - 1) as f64);
        corpus.push(CorpusImage {
            image: build_app_image(&mut rng, name, target),
            go_single_binary: false,
        });
    }
    for name in GO_APPS {
        corpus.push(CorpusImage {
            image: build_go_image(&mut rng, name),
            go_single_binary: true,
        });
    }
    corpus
}

/// An application image: app + libs + configs, wrapped in distro baggage
/// sized to yield the target reduction.
fn build_app_image(rng: &mut SmallRng, name: &str, target_reduction: f64) -> Arc<Image> {
    let app_size = rng.gen_range(5_000_000u64..60_000_000);
    let nlibs = rng.gen_range(3usize..8);
    let lib_sizes: Vec<u64> = (0..nlibs)
        .map(|_| rng.gen_range(300_000u64..4_000_000))
        .collect();
    let needed: u64 = app_size + lib_sizes.iter().sum::<u64>();
    // baggage / (baggage + needed) = target → baggage = needed * t/(1-t).
    let baggage = (needed as f64 * target_reduction / (1.0 - target_reduction)) as u64;

    let lib_paths: Vec<String> = (0..nlibs)
        .map(|j| format!("/usr/lib/lib{name}{j}.so"))
        .collect();
    let dep_refs: Vec<&str> = lib_paths.iter().map(String::as_str).collect();

    let mut b = ImageBuilder::new(name, "latest")
        .layer(&format!("{name}-base"))
        // Distro baggage: shell, package manager, coreutils.
        .binary("/bin/bash", 1_100_000, &[])
        .binary("/usr/bin/apt", 4_000_000, &[])
        .binary("/usr/bin/dpkg", 2_500_000, &[]);
    for util in [
        "ls", "cp", "mv", "rm", "cat", "grep", "sed", "awk", "find", "tar", "gzip", "ps", "top",
        "less", "vi", "curl", "wget", "ping", "ss", "mount",
    ] {
        b = b.binary(&format!("/usr/bin/{util}"), 150_000, &[]);
    }
    let fixed_baggage: u64 = 1_100_000 + 4_000_000 + 2_500_000 + 20 * 150_000;
    let leftover = baggage.saturating_sub(fixed_baggage);
    // Remaining baggage split between docs, locales and man pages.
    b = b
        .file(&format!("/usr/share/doc/{name}/docs.tar"), leftover / 2)
        .file("/usr/share/locale/locales.db", leftover / 4)
        .file(
            "/usr/share/man/manpages.db",
            leftover - leftover / 2 - leftover / 4,
        );

    b = b.layer(&format!("{name}-app"));
    for (path, size) in lib_paths.iter().zip(&lib_sizes) {
        b = b.file(path, *size);
    }
    let entry = format!("/usr/sbin/{name}");
    b = b
        .binary(&entry, app_size, &dep_refs)
        .text(
            &format!("/etc/{name}.conf"),
            &format!("# {name} configuration\nlisten=0.0.0.0\n"),
        )
        .text("/etc/passwd", "root:x:0:0::/:/bin/bash\n")
        .env("APP_NAME", name)
        .entrypoint(&entry);
    b.build()
}

/// A Go-style image: one static binary, a config, and only a sliver of
/// extras — nearly nothing to remove.
fn build_go_image(rng: &mut SmallRng, name: &str) -> Arc<Image> {
    let app_size = rng.gen_range(15_000_000u64..80_000_000);
    // 2–8% of the image is removable (licenses, sample configs).
    let extra = (app_size as f64 * rng.gen_range(0.02..0.08)) as u64;
    let entry = format!("/usr/bin/{name}");
    ImageBuilder::new(name, "latest")
        .layer(&format!("{name}-binary"))
        .binary(&entry, app_size, &[])
        .text(&format!("/etc/{name}/config.yml"), "log_level: info\n")
        .file("/usr/share/LICENSES.tar", extra)
        .env("APP_NAME", name)
        .entrypoint(&entry)
        .build()
}

/// Runs the whole Figure-5 experiment: boots a host, starts each corpus
/// container, profiles it, and slims it. Returns one report per image.
pub fn run_figure5() -> Vec<SlimReport> {
    run_figure5_detailed().0
}

/// [`run_figure5`] plus the blob-store statistics of the run: all 50
/// corpus containers execute over shared overlay layers, so the stats
/// capture how much the content-addressed store deduplicated across the
/// whole Top-50 (the distro base layers repeat across images).
pub fn run_figure5_detailed() -> (Vec<SlimReport>, cntr_overlay::BlobStoreStats) {
    let corpus = top50_corpus();
    let k = boot_host(SimClock::new());
    let registry = Registry::new();
    for c in &corpus {
        registry.push(Arc::clone(&c.image));
    }
    let rt = ContainerRuntime::new(EngineKind::Docker, k, registry);
    let slim = DockerSlim::new();
    let reports = corpus
        .iter()
        .map(|c| {
            let cname = format!("c-{}", c.image.name);
            rt.run(&cname, &c.image.reference())
                .expect("corpus container starts");
            let report = slim.slim(&rt, &cname, &c.image).expect("slimming succeeds");
            rt.stop(&cname).expect("container stops");
            report
        })
        .collect();
    (reports, rt.blob_store().stats())
}

/// Summary statistics over Figure-5 reports.
#[derive(Debug, Clone, Copy)]
pub struct Figure5Stats {
    /// Mean reduction in percent (paper: 66.6%).
    pub mean_reduction: f64,
    /// Images reduced by less than 10% (paper: 6).
    pub below_10: usize,
    /// Fraction of images reduced by 60–97% (paper: >75%).
    pub frac_60_to_97: f64,
}

/// Computes the paper's headline statistics from per-image reports.
pub fn figure5_stats(reports: &[SlimReport]) -> Figure5Stats {
    let n = reports.len().max(1) as f64;
    let mean = reports
        .iter()
        .map(SlimReport::reduction_percent)
        .sum::<f64>()
        / n;
    let below_10 = reports
        .iter()
        .filter(|r| r.reduction_percent() < 10.0)
        .count();
    let in_band = reports
        .iter()
        .filter(|r| {
            let p = r.reduction_percent();
            (60.0..=97.0).contains(&p)
        })
        .count();
    Figure5Stats {
        mean_reduction: mean,
        below_10,
        frac_60_to_97: in_band as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_complete() {
        let a = top50_corpus();
        let b = top50_corpus();
        assert_eq!(a.len(), 50);
        assert_eq!(a.iter().filter(|c| c.go_single_binary).count(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image.reference(), y.image.reference());
            assert_eq!(x.image.size_bytes(), y.image.size_bytes());
        }
        // All references are distinct.
        let mut refs: Vec<String> = a.iter().map(|c| c.image.reference()).collect();
        refs.sort();
        refs.dedup();
        assert_eq!(refs.len(), 50);
    }

    #[test]
    fn figure5_matches_paper_shape() {
        let reports = run_figure5();
        assert_eq!(reports.len(), 50);
        let stats = figure5_stats(&reports);
        // Paper: 66.6% average reduction.
        assert!(
            (60.0..=72.0).contains(&stats.mean_reduction),
            "mean reduction {:.1}% out of band",
            stats.mean_reduction
        );
        // Paper: 6 of 50 images below 10%.
        assert_eq!(stats.below_10, 6, "exactly the Go images reduce <10%");
        // Paper: over 75% of containers reduced by 60–97%.
        assert!(
            stats.frac_60_to_97 > 0.6,
            "frac in 60-97 band: {:.2}",
            stats.frac_60_to_97
        );
    }

    #[test]
    fn go_images_are_single_binary_shaped() {
        let corpus = top50_corpus();
        for c in corpus.iter().filter(|c| c.go_single_binary) {
            let files = c.image.effective_files();
            let binaries = files
                .iter()
                .filter(|(p, n)| {
                    matches!(n, cntr_engine::NodeSpec::File { mode, .. } if mode.bits() & 0o111 != 0)
                        && !p.starts_with("/etc")
                })
                .count();
            assert_eq!(binaries, 1, "{} must ship one binary", c.image.name);
        }
    }
}
