//! Docker Slim reproduction: build minimal images from access analysis.
//!
//! The paper's effectiveness evaluation (§5.3, Figure 5) applies Docker
//! Slim to the Top-50 images on Docker Hub: "Docker Slim applies static and
//! dynamic analyses to build a smaller-sized container image that only
//! contains the files that are actually required by the application",
//! recording accesses with fanotify. The result: a **66.6% average size
//! reduction**, >75% of images reduced by 60–97%, and 6 of 50 images (Go
//! single-binary containers) below 10%.
//!
//! * [`analyzer`] — the static (dependency closure) and dynamic (fanotify
//!   recording) analyses and the slim-image builder,
//! * [`corpus`] — a deterministic synthetic Top-50 corpus whose file-level
//!   structure mirrors the real one (application + libraries vs distro
//!   baggage; six Go-style single-binary images).

pub mod analyzer;
pub mod corpus;

pub use analyzer::{DockerSlim, SlimReport};
pub use corpus::{top50_corpus, CorpusImage};
