//! The Docker Slim analyses and slim-image builder.

use cntr_engine::image::{FileEntry, Image, ImageConfig, Layer, NodeSpec};
use cntr_engine::ContainerRuntime;
use cntr_kernel::Kernel;
use cntr_overlay::DiffKind;
use cntr_types::{FileType, Mode, OpenFlags, SysResult};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Result of slimming one image.
#[derive(Debug, Clone)]
pub struct SlimReport {
    /// Image reference analyzed.
    pub reference: String,
    /// Original size in bytes.
    pub original_bytes: u64,
    /// Slim size in bytes.
    pub slim_bytes: u64,
    /// Paths kept.
    pub kept_files: usize,
    /// Paths dropped.
    pub dropped_files: usize,
    /// The built slim image.
    pub slim_image: Arc<Image>,
}

impl SlimReport {
    /// Size reduction in percent (the quantity Figure 5 plots).
    pub fn reduction_percent(&self) -> f64 {
        if self.original_bytes == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.slim_bytes as f64 / self.original_bytes as f64)
    }
}

/// The Docker Slim tool.
pub struct DockerSlim {
    /// Paths always kept regardless of analysis (Docker Slim's defaults).
    keep_always: Vec<String>,
}

impl Default for DockerSlim {
    fn default() -> DockerSlim {
        DockerSlim {
            keep_always: vec![
                "/etc/passwd".to_string(),
                "/etc/group".to_string(),
                "/etc/hostname".to_string(),
                "/etc/hosts".to_string(),
                "/etc/resolv.conf".to_string(),
            ],
        }
    }
}

impl DockerSlim {
    /// Creates the tool with default keep-lists.
    pub fn new() -> DockerSlim {
        DockerSlim::default()
    }

    /// **Static analysis**: the entrypoint binary, its transitive library
    /// dependency closure, and the targets of symlinks along the way.
    pub fn static_analysis(&self, image: &Image) -> BTreeSet<String> {
        let files = image.effective_files();
        let mut keep: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = vec![image.config.entrypoint.clone()];
        while let Some(path) = queue.pop() {
            if path.is_empty() || !keep.insert(path.clone()) {
                continue;
            }
            match files.get(path.as_str()) {
                Some(NodeSpec::File { deps, .. }) => {
                    for d in deps {
                        queue.push(d.clone());
                    }
                }
                Some(NodeSpec::Symlink { target }) => {
                    queue.push(target.clone());
                }
                _ => {}
            }
        }
        keep
    }

    /// **Dynamic analysis**: runs the profiling workload (the "manually ran
    /// the application so it would load all the required files" step of
    /// §5.3) and returns the set of accessed paths.
    ///
    /// For overlay-backed containers the data comes straight from the
    /// storage layer: the overlay records read accesses per layer object,
    /// and the container's write set is obtained by **diffing the upper
    /// layer directly** — no replaying of access logs against a flattened
    /// tree. Containers on other mounts fall back to fanotify recording.
    pub fn dynamic_analysis(
        &self,
        rt: &ContainerRuntime,
        container: &str,
        image: &Image,
    ) -> SysResult<BTreeSet<String>> {
        let k = rt.kernel();
        let pid = rt.resolve(container)?;
        if let Ok(overlay) = rt.overlay_of(container) {
            overlay.set_access_tracking(true);
            profile_workload(k, pid, image);
            overlay.set_access_tracking(false);
            let mut accessed = overlay.accessed_paths();
            for d in overlay.upper_diff() {
                if let DiffKind::Upsert(ftype) = d.kind {
                    if ftype != FileType::Directory {
                        accessed.insert(d.path);
                    }
                }
            }
            return Ok(accessed);
        }
        // Recording is scoped to the container's mount namespace, so two
        // concurrent slim analyses never see each other's events; this
        // drain returns only this container's accesses.
        k.fanotify_start(pid)?;
        profile_workload(k, pid, image);
        let events = k.fanotify_stop(pid)?;
        // Paths are container paths because the recorder stores the
        // accessor's view.
        Ok(events.into_iter().map(|e| e.path).collect())
    }

    /// Runs both analyses and builds the slim image.
    pub fn slim(
        &self,
        rt: &ContainerRuntime,
        container: &str,
        image: &Arc<Image>,
    ) -> SysResult<SlimReport> {
        let mut keep = self.static_analysis(image);
        keep.extend(self.dynamic_analysis(rt, container, image)?);
        for p in &self.keep_always {
            keep.insert(p.clone());
        }
        // Keep directories leading to kept files.
        let files = image.effective_files();
        let mut entries: Vec<FileEntry> = Vec::new();
        let mut slim_bytes = 0u64;
        let mut kept_files = 0usize;
        let mut dropped = 0usize;
        for (path, node) in &files {
            let keep_this = match node {
                NodeSpec::Dir { .. } => keep
                    .iter()
                    .any(|k| k.starts_with(&format!("{path}/")) || k == path),
                _ => keep.contains(*path),
            };
            if keep_this {
                if let NodeSpec::File { content, .. } = node {
                    slim_bytes += content.len();
                    kept_files += 1;
                }
                entries.push(FileEntry {
                    path: (*path).to_string(),
                    node: (*node).clone(),
                });
            } else if !matches!(node, NodeSpec::Dir { .. }) {
                dropped += 1;
            }
        }
        let slim_image = Arc::new(Image {
            name: image.name.clone(),
            tag: format!("{}-slim", image.tag),
            layers: vec![Layer {
                id: format!("{}-{}-slim", image.name, image.tag),
                entries,
            }],
            config: ImageConfig {
                env: image.config.env.clone(),
                entrypoint: image.config.entrypoint.clone(),
                workdir: image.config.workdir.clone(),
            },
        });
        Ok(SlimReport {
            reference: image.reference(),
            original_bytes: image.size_bytes(),
            slim_bytes,
            kept_files,
            dropped_files: dropped,
            slim_image,
        })
    }

    /// Validates that the slim image still serves the workload: every path
    /// the profiling run touches must exist with identical size.
    pub fn validate(&self, original: &Image, report: &SlimReport) -> bool {
        let slim_files = report.slim_image.effective_files();
        let needed = self.static_analysis(original);
        needed.iter().all(|p| slim_files.contains_key(p.as_str()))
    }
}

/// The profiling workload: what "manually running the application" touches.
///
/// The simulated application run opens its entrypoint (exec), the loader
/// pulls in the dependency closure, and the app reads its configuration
/// files under `/etc` — exactly the footprint the paper found to be ~6.4%
/// of image content in the common case (§1, citing Slacker).
fn profile_workload(k: &Kernel, pid: cntr_types::Pid, image: &Image) {
    let files = image.effective_files();
    // Exec the entrypoint.
    let _ = k.exec_read(pid, &image.config.entrypoint);
    // The dynamic loader maps every library in the closure.
    let mut queue: Vec<String> = vec![image.config.entrypoint.clone()];
    let mut seen = BTreeSet::new();
    while let Some(path) = queue.pop() {
        if !seen.insert(path.clone()) {
            continue;
        }
        match files.get(path.as_str()) {
            Some(NodeSpec::File { deps, .. }) => {
                if let Ok(fd) = k.open(pid, &path, OpenFlags::RDONLY, Mode::RW_R__R__) {
                    let _ = k.close(pid, fd);
                }
                for d in deps {
                    queue.push(d.clone());
                }
            }
            Some(NodeSpec::Symlink { target }) => queue.push(target.clone()),
            _ => {}
        }
    }
    // The application reads its configuration files.
    for (path, node) in &files {
        if path.starts_with("/etc/") {
            if let NodeSpec::File { content, .. } = node {
                let _ = content;
                if let Ok(fd) = k.open(pid, path, OpenFlags::RDONLY, Mode::RW_R__R__) {
                    let _ = k.close(pid, fd);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::image::ImageBuilder;
    use cntr_engine::runtime::boot_host;
    use cntr_engine::{EngineKind, Registry};
    use cntr_types::SimClock;

    fn fat_nginx() -> Arc<Image> {
        ImageBuilder::new("nginx", "1.25")
            .layer("debian-base")
            .binary("/bin/bash", 1_100_000, &["/lib/libc.so"])
            .binary("/usr/bin/apt", 4_000_000, &["/lib/libc.so"])
            .file("/usr/share/doc/readme", 20_000_000)
            .file("/usr/share/locale/all", 15_000_000)
            .binary("/usr/bin/ls", 140_000, &["/lib/libc.so"])
            .binary("/usr/bin/grep", 200_000, &["/lib/libc.so"])
            .layer("nginx-app")
            .binary(
                "/usr/sbin/nginx",
                1_500_000,
                &["/lib/libc.so", "/lib/libssl.so", "/lib/libpcre.so"],
            )
            .file("/lib/libc.so", 2_000_000)
            .file("/lib/libssl.so", 700_000)
            .file("/lib/libpcre.so", 500_000)
            .text("/etc/nginx.conf", "worker_processes auto;\n")
            .text("/etc/passwd", "root:x:0:0::/:/bin/sh\n")
            .symlink("/usr/bin/nginx", "/usr/sbin/nginx")
            .entrypoint("/usr/sbin/nginx")
            .build()
    }

    fn setup() -> (ContainerRuntime, Arc<Image>) {
        let k = boot_host(SimClock::new());
        let registry = Registry::new();
        let img = fat_nginx();
        registry.push(Arc::clone(&img));
        (ContainerRuntime::new(EngineKind::Docker, k, registry), img)
    }

    #[test]
    fn static_analysis_follows_dependency_closure() {
        let (_rt, img) = setup();
        let slim = DockerSlim::new();
        let keep = slim.static_analysis(&img);
        assert!(keep.contains("/usr/sbin/nginx"));
        assert!(keep.contains("/lib/libc.so"));
        assert!(keep.contains("/lib/libssl.so"));
        assert!(keep.contains("/lib/libpcre.so"));
        assert!(!keep.contains("/usr/bin/apt"));
        assert!(!keep.contains("/usr/share/doc/readme"));
    }

    #[test]
    fn dynamic_analysis_records_accessed_files() {
        let (rt, img) = setup();
        rt.run("web", "nginx:1.25").unwrap();
        let slim = DockerSlim::new();
        let accessed = slim.dynamic_analysis(&rt, "web", &img).unwrap();
        assert!(accessed.contains("/usr/sbin/nginx"));
        assert!(accessed.contains("/etc/nginx.conf"), "{accessed:?}");
        assert!(!accessed.iter().any(|p| p.contains("doc")));
    }

    #[test]
    fn slim_build_drops_baggage_and_validates() {
        let (rt, img) = setup();
        rt.run("web", "nginx:1.25").unwrap();
        let slim = DockerSlim::new();
        let report = slim.slim(&rt, "web", &img).unwrap();
        // The doc/locale/package-manager baggage dominates the image; the
        // slim build must shed it.
        assert!(
            report.reduction_percent() > 80.0,
            "reduction {:.1}%",
            report.reduction_percent()
        );
        assert!(report.slim_bytes >= 1_500_000 + 2_000_000 + 700_000 + 500_000);
        assert!(report.dropped_files >= 5);
        assert!(slim.validate(&img, &report));
        // The slim image still has the entrypoint and config.
        assert!(report.slim_image.entry("/usr/sbin/nginx").is_some());
        assert!(report.slim_image.entry("/etc/nginx.conf").is_some());
        assert!(report.slim_image.entry("/usr/bin/apt").is_none());
        assert_eq!(report.slim_image.tag, "1.25-slim");
    }

    #[test]
    fn slim_image_still_runs() {
        let (rt, img) = setup();
        rt.run("web", "nginx:1.25").unwrap();
        let report = DockerSlim::new().slim(&rt, "web", &img).unwrap();
        rt.registry().push(Arc::clone(&report.slim_image));
        let c = rt.run("web-slim", "nginx:1.25-slim").unwrap();
        let k = rt.kernel();
        // The app binary and config are present and loadable.
        assert!(k.stat(c.pid, "/usr/sbin/nginx").unwrap().is_file());
        assert!(k.exec_read(c.pid, "/usr/sbin/nginx").is_ok());
        assert!(k.stat(c.pid, "/etc/nginx.conf").unwrap().is_file());
        // The baggage is gone.
        assert!(k.stat(c.pid, "/usr/share/doc/readme").is_err());
    }
}
