//! The content-addressed blob store.
//!
//! File data is split into fixed-size chunks ([`CHUNK_SIZE`], the page size
//! of the in-tree stores). Each distinct chunk is stored exactly once and
//! refcounted; ingesting the same bytes again — whether from another layer,
//! another image, or a copy-up — only bumps a refcount. All-zero chunks are
//! never stored: sparse files are holes in the chunk map, exactly as the
//! registry-side flist stores (rfs) and dedup measurements across engines
//! motivate.

use bytes::Bytes;
use cntr_blockdev::BLOCK_SIZE;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Chunk granularity in bytes (one page, matching `cntr_fs::store`).
pub const CHUNK_SIZE: usize = BLOCK_SIZE;

/// Identity of one stored chunk: content hash plus a per-bucket slot index
/// (the slot disambiguates the astronomically-unlikely hash collision; the
/// store compares bytes before reusing a slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId {
    hash: u64,
    slot: u32,
}

/// 64-bit FNV-1a over a chunk's bytes.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct ChunkSlot {
    /// `None` after the refcount dropped to zero (slot reusable). Stored as
    /// [`Bytes`] so the splice path can *retain* incoming buffers on write
    /// and hand out reference-counted slices on read — no copies.
    data: Option<Bytes>,
    refs: u64,
}

#[derive(Default)]
struct BlobState {
    buckets: HashMap<u64, Vec<ChunkSlot>>,
    /// Unique bytes physically stored right now.
    physical_bytes: u64,
    /// Bytes handed to `put` over the store's lifetime (incl. duplicates).
    ingested_bytes: u64,
    /// `put` calls satisfied by an existing chunk.
    dedup_hits: u64,
}

/// Content-addressed, chunked, refcounted storage for file data.
///
/// Shared (via `Arc`) by every blob-backed filesystem of a machine: all
/// image layers, all container upper layers, and every copy-up dedup
/// against each other here.
pub struct BlobStore {
    state: Mutex<BlobState>,
}

impl Default for BlobStore {
    fn default() -> BlobStore {
        BlobStore {
            state: Mutex::new_class("overlay.blob.state", BlobState::default()),
        }
    }
}

/// Aggregate statistics (the dedup numbers the benches report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobStoreStats {
    /// Unique bytes physically stored.
    pub physical_bytes: u64,
    /// Total bytes ever ingested, duplicates included.
    pub ingested_bytes: u64,
    /// Number of distinct live chunks.
    pub unique_chunks: u64,
    /// `put` calls that found their chunk already present.
    pub dedup_hits: u64,
}

impl BlobStoreStats {
    /// Ingested-to-physical ratio (≥ 1.0; higher = more sharing).
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            return 1.0;
        }
        self.ingested_bytes as f64 / self.physical_bytes as f64
    }
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Arc<BlobStore> {
        Arc::new(BlobStore::default())
    }

    /// Stores `data` (one chunk, ≤ [`CHUNK_SIZE`] bytes) and returns its id
    /// with one reference held by the caller. Identical content returns the
    /// existing id with a bumped refcount.
    ///
    /// The caller must not pass an all-zero chunk — holes are represented
    /// by *absence* of a chunk, never by a stored zero chunk.
    pub fn put(&self, data: &[u8]) -> BlobId {
        self.insert(data, None)
    }

    /// Stores an owned buffer (one chunk, ≤ [`CHUNK_SIZE`] bytes) **without
    /// copying**: a chunk not already present retains `data` itself — the
    /// storage end of the splice write path. Dedup semantics are identical
    /// to [`BlobStore::put`]; a dedup hit drops `data` without retaining
    /// anything.
    ///
    /// Trade-off, as with real spliced pages: a retained slice pins its
    /// whole backing allocation. A chunk sliced from a large coalesced
    /// write-back run keeps that run's buffer alive until the chunk is
    /// freed or rewritten — memory amplification when most of the run
    /// dedups away. That is the price of zero-copy ingest; callers that
    /// would rather pay the memcpy than the pin should use
    /// [`BlobStore::put`].
    pub fn put_bytes(&self, data: Bytes) -> BlobId {
        // The O(1) clone lets `insert` borrow `data` for the dedup probe
        // and retain the same underlying allocation on a miss.
        self.insert(&data.clone(), Some(data))
    }

    fn insert(&self, data: &[u8], retain: Option<Bytes>) -> BlobId {
        debug_assert!(data.len() <= CHUNK_SIZE);
        debug_assert!(!is_zero(data), "zero chunks must be elided by callers");
        let hash = fnv1a(data);
        let mut st = self.state.lock();
        st.ingested_bytes += data.len() as u64;
        let bucket = st.buckets.entry(hash).or_default();
        // Existing identical chunk?
        for (slot, entry) in bucket.iter_mut().enumerate() {
            if entry.data.as_deref() == Some(data) {
                entry.refs += 1;
                st.dedup_hits += 1;
                return BlobId {
                    hash,
                    slot: slot as u32,
                };
            }
        }
        // First sighting: retain the caller's buffer if it handed us one
        // (zero copy), otherwise copy the borrowed slice.
        let stored = retain.unwrap_or_else(|| Bytes::copy_from_slice(data));
        // Reuse a freed slot or append.
        let slot = match bucket.iter().position(|s| s.data.is_none()) {
            Some(i) => {
                bucket[i] = ChunkSlot {
                    data: Some(stored),
                    refs: 1,
                };
                i
            }
            None => {
                bucket.push(ChunkSlot {
                    data: Some(stored),
                    refs: 1,
                });
                bucket.len() - 1
            }
        };
        st.physical_bytes += data.len() as u64;
        BlobId {
            hash,
            slot: slot as u32,
        }
    }

    /// Returns the chunk's bytes as a shared reference-counted buffer —
    /// O(1), no copy. Panics on a dangling id, like [`BlobStore::read`].
    pub fn chunk_bytes(&self, id: BlobId) -> Bytes {
        let st = self.state.lock();
        st.buckets[&id.hash][id.slot as usize]
            .data
            .clone()
            .expect("read of freed chunk")
    }

    /// Looks a chunk up by content *without* inserting or bumping refcounts
    /// (diagnostics; the zero-copy proof tests use it to locate stored
    /// chunks for pointer-identity assertions).
    pub fn lookup_chunk(&self, data: &[u8]) -> Option<BlobId> {
        let hash = fnv1a(data);
        let st = self.state.lock();
        let bucket = st.buckets.get(&hash)?;
        bucket
            .iter()
            .position(|s| s.data.as_deref() == Some(data))
            .map(|slot| BlobId {
                hash,
                slot: slot as u32,
            })
    }

    /// Copies the chunk's bytes at `range` into `buf`. Panics on a dangling
    /// id (refcounting bugs must not read as data corruption).
    pub fn read(&self, id: BlobId, offset: usize, buf: &mut [u8]) {
        let st = self.state.lock();
        let data = st.buckets[&id.hash][id.slot as usize]
            .data
            .as_deref()
            .expect("read of freed chunk");
        // A short chunk (direct `put`) reads zero at and past its end.
        if offset >= data.len() {
            buf.fill(0);
            return;
        }
        let end = (offset + buf.len()).min(data.len());
        let n = end - offset;
        buf[..n].copy_from_slice(&data[offset..end]);
        buf[n..].fill(0);
    }

    /// Returns the chunk's bytes.
    pub fn chunk(&self, id: BlobId) -> Vec<u8> {
        let st = self.state.lock();
        st.buckets[&id.hash][id.slot as usize]
            .data
            .as_deref()
            .expect("read of freed chunk")
            .to_vec()
    }

    /// Adds one reference to a chunk.
    pub fn inc_ref(&self, id: BlobId) {
        let mut st = self.state.lock();
        let entry = &mut st.buckets.get_mut(&id.hash).expect("live chunk")[id.slot as usize];
        debug_assert!(entry.data.is_some());
        entry.refs += 1;
    }

    /// Drops one reference; frees the chunk's bytes at zero.
    pub fn dec_ref(&self, id: BlobId) {
        let mut st = self.state.lock();
        let entry = &mut st.buckets.get_mut(&id.hash).expect("live chunk")[id.slot as usize];
        entry.refs = entry.refs.saturating_sub(1);
        if entry.refs == 0 {
            let freed = entry.data.take().map_or(0, |d| d.len() as u64);
            st.physical_bytes = st.physical_bytes.saturating_sub(freed);
        }
    }

    /// Current reference count of a chunk (0 if freed).
    pub fn refs(&self, id: BlobId) -> u64 {
        let st = self.state.lock();
        st.buckets
            .get(&id.hash)
            .and_then(|b| b.get(id.slot as usize))
            .map_or(0, |s| if s.data.is_some() { s.refs } else { 0 })
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> BlobStoreStats {
        let st = self.state.lock();
        BlobStoreStats {
            physical_bytes: st.physical_bytes,
            ingested_bytes: st.ingested_bytes,
            unique_chunks: st
                .buckets
                .values()
                .flat_map(|b| b.iter())
                .filter(|s| s.data.is_some())
                .count() as u64,
            dedup_hits: st.dedup_hits,
        }
    }

    /// Ingests a whole byte string, chunking it and eliding zero chunks,
    /// and returns a refcount-holding handle.
    ///
    /// A partial tail chunk is zero-padded to [`CHUNK_SIZE`] before being
    /// addressed, so it hashes identically to the page a filesystem write
    /// of the same bytes would produce — materializing unaligned blob
    /// content stays a refcount bump, never a second copy.
    pub fn ingest(self: &Arc<Self>, data: &[u8]) -> BlobHandle {
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + CHUNK_SIZE).min(data.len());
            let chunk = &data[off..end];
            if !is_zero(chunk) {
                let id = if chunk.len() < CHUNK_SIZE {
                    let mut padded = vec![0u8; CHUNK_SIZE];
                    padded[..chunk.len()].copy_from_slice(chunk);
                    self.put(&padded)
                } else {
                    self.put(chunk)
                };
                chunks.push(((off / CHUNK_SIZE) as u64, id));
            }
            off = end;
        }
        BlobHandle {
            store: Arc::clone(self),
            len: data.len() as u64,
            chunks,
        }
    }
}

/// True if every byte is zero.
pub fn is_zero(data: &[u8]) -> bool {
    data.iter().all(|&b| b == 0)
}

/// An owning reference to content in a [`BlobStore`]: a logical length plus
/// the non-hole chunks `(chunk_index, id)`. Holds one refcount per chunk;
/// cloning bumps them, dropping releases them.
///
/// This is what image entries carry instead of inlined `Vec<u8>` bytes.
pub struct BlobHandle {
    store: Arc<BlobStore>,
    len: u64,
    chunks: Vec<(u64, BlobId)>,
}

impl BlobHandle {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical chunks `(chunk_index, id)`, holes omitted.
    pub fn chunks(&self) -> &[(u64, BlobId)] {
        &self.chunks
    }

    /// The store the chunks live in.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// Reassembles the full content (holes as zeroes). Test/diagnostic
    /// helper; materialization streams chunk-by-chunk instead.
    pub fn read_all(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        for &(idx, id) in &self.chunks {
            let start = (idx as usize) * CHUNK_SIZE;
            let end = (start + CHUNK_SIZE).min(out.len());
            if start < out.len() {
                self.store.read(id, 0, &mut out[start..end]);
            }
        }
        out
    }
}

impl Clone for BlobHandle {
    fn clone(&self) -> BlobHandle {
        for &(_, id) in &self.chunks {
            self.store.inc_ref(id);
        }
        BlobHandle {
            store: Arc::clone(&self.store),
            len: self.len,
            chunks: self.chunks.clone(),
        }
    }
}

impl Drop for BlobHandle {
    fn drop(&mut self) {
        for &(_, id) in &self.chunks {
            self.store.dec_ref(id);
        }
    }
}

impl PartialEq for BlobHandle {
    fn eq(&self, other: &BlobHandle) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
            && self.len == other.len
            && self.chunks == other.chunks
    }
}

impl Eq for BlobHandle {}

impl std::fmt::Debug for BlobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobHandle")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_dedups_identical_chunks() {
        let s = BlobStore::new();
        let a = s.put(&[7u8; 1000]);
        let b = s.put(&[7u8; 1000]);
        assert_eq!(a, b);
        assert_eq!(s.refs(a), 2);
        let st = s.stats();
        assert_eq!(st.physical_bytes, 1000);
        assert_eq!(st.ingested_bytes, 2000);
        assert_eq!(st.dedup_hits, 1);
        assert!((st.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dec_ref_frees_and_slot_is_reused() {
        let s = BlobStore::new();
        let a = s.put(b"hello chunk");
        s.dec_ref(a);
        assert_eq!(s.refs(a), 0);
        assert_eq!(s.stats().physical_bytes, 0);
        // Same content again re-occupies storage.
        let b = s.put(b"hello chunk");
        assert_eq!(s.refs(b), 1);
        assert_eq!(s.stats().physical_bytes, 11);
    }

    #[test]
    fn ingest_elides_zero_chunks() {
        let s = BlobStore::new();
        let mut data = vec![0u8; 3 * CHUNK_SIZE];
        data[2 * CHUNK_SIZE + 5] = 0xAB;
        let h = s.ingest(&data);
        assert_eq!(h.len(), 3 * CHUNK_SIZE as u64);
        assert_eq!(h.chunks().len(), 1, "two zero chunks are holes");
        assert_eq!(h.read_all(), data);
    }

    #[test]
    fn handle_clone_and_drop_balance_refs() {
        let s = BlobStore::new();
        let h = s.ingest(&[9u8; CHUNK_SIZE]);
        let id = h.chunks()[0].1;
        let h2 = h.clone();
        assert_eq!(s.refs(id), 2);
        drop(h2);
        assert_eq!(s.refs(id), 1);
        drop(h);
        assert_eq!(s.refs(id), 0);
        assert_eq!(s.stats().physical_bytes, 0);
    }

    #[test]
    fn short_tail_chunk_reads_zero_padded() {
        let s = BlobStore::new();
        let id = s.put(b"abc");
        let mut buf = [0xFFu8; 8];
        s.read(id, 0, &mut buf);
        assert_eq!(&buf, b"abc\0\0\0\0\0");
    }
}
