//! A `FileStore` whose file contents are chunk references into a shared
//! [`BlobStore`].
//!
//! `NodeFs<BlobBackend>` ([`BlobFs`]) behaves exactly like `MemFs` at the
//! POSIX level — same semantics, same sparse-file behaviour — but every
//! written page is content-hashed into the machine-wide blob store, so
//! identical data across files, layers, and filesystems is stored once.
//! Writing a chunk that some image layer already holds is a refcount bump:
//! this is what makes copy-up cheap and N containers of one image
//! O(upper writes).

use crate::blob::{is_zero, BlobId, BlobStore, CHUNK_SIZE};
use bytes::Bytes;
use cntr_fs::nodefs::NodeFs;
use cntr_fs::store::{for_each_page, punch_hole_pages, zero_partial_edges, FileStore};
use cntr_fs::FsFeatures;
use cntr_types::{DevId, SimClock};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

/// The shared all-zero chunk holes read from (the moral equivalent of the
/// kernel's `ZERO_PAGE`): hole reads on the splice path hand out slices of
/// this one allocation instead of zero-filling fresh buffers.
fn zero_chunk() -> &'static Bytes {
    static ZERO: OnceLock<Bytes> = OnceLock::new();
    ZERO.get_or_init(|| Bytes::from(vec![0u8; CHUNK_SIZE]))
}

/// Content store delegating all bytes to a shared [`BlobStore`].
pub struct BlobBackend {
    store: Arc<BlobStore>,
    /// Ledger of the store references this filesystem currently holds.
    /// `BlobContent` values cannot release their own references (they have
    /// no store pointer), so the backend tracks them and `Drop` returns
    /// every outstanding reference — a dropped filesystem (a stopped
    /// container's upper layer, a discarded lower) never strands chunks.
    held: Mutex<HashMap<BlobId, u64>>,
}

impl BlobBackend {
    /// A backend writing into `store`.
    pub fn new(store: Arc<BlobStore>) -> BlobBackend {
        BlobBackend {
            store,
            held: Mutex::new_class("overlay.backend.held", HashMap::new()),
        }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// Replaces the chunk mapped at `page` (if any) with `id`-or-hole,
    /// releasing the old reference.
    fn remap(&self, content: &mut BlobContent, page: u64, id: Option<BlobId>) {
        let old = match id {
            Some(id) => {
                *self.held.lock().entry(id).or_insert(0) += 1;
                content.chunks.insert(page, id)
            }
            None => content.chunks.remove(&page),
        };
        if let Some(old) = old {
            self.release(old);
        }
    }

    /// Returns one store reference and balances the ledger.
    fn release(&self, id: BlobId) {
        self.store.dec_ref(id);
        let mut held = self.held.lock();
        if let Some(count) = held.get_mut(&id) {
            *count -= 1;
            if *count == 0 {
                held.remove(&id);
            }
        }
    }
}

impl Drop for BlobBackend {
    fn drop(&mut self) {
        for (id, count) in self.held.lock().drain() {
            for _ in 0..count {
                self.store.dec_ref(id);
            }
        }
    }
}

/// Per-file chunk map: page number → chunk id (holes absent).
#[derive(Default)]
pub struct BlobContent {
    chunks: BTreeMap<u64, BlobId>,
}

impl BlobContent {
    /// The live chunk references `(page, id)` of this file.
    pub fn chunk_refs(&self) -> impl Iterator<Item = (u64, BlobId)> + '_ {
        self.chunks.iter().map(|(&p, &id)| (p, id))
    }
}

impl FileStore for BlobBackend {
    type Content = BlobContent;

    fn read(&self, content: &BlobContent, offset: u64, buf: &mut [u8]) {
        for_each_page(offset, buf.len(), |page_no, in_page, pos, n| match content
            .chunks
            .get(&page_no)
        {
            Some(&id) => self.store.read(id, in_page, &mut buf[pos..pos + n]),
            None => buf[pos..pos + n].fill(0),
        });
    }

    fn write(&self, content: &mut BlobContent, offset: u64, data: &[u8]) {
        for_each_page(offset, data.len(), |page_no, in_page, pos, n| {
            // Read-modify-write the page, then re-address it by content.
            let mut page = match content.chunks.get(&page_no) {
                Some(&id) => {
                    let mut p = vec![0u8; CHUNK_SIZE];
                    self.store.read(id, 0, &mut p);
                    p
                }
                None => vec![0u8; CHUNK_SIZE],
            };
            page[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            let id = if is_zero(&page) {
                None
            } else {
                Some(self.store.put(&page))
            };
            self.remap(content, page_no, id);
        });
    }

    fn truncate(&self, content: &mut BlobContent, new_len: u64) {
        let boundary_page = new_len / CHUNK_SIZE as u64;
        let in_page = (new_len % CHUNK_SIZE as u64) as usize;
        let doomed: Vec<u64> = content
            .chunks
            .range((boundary_page + u64::from(in_page > 0))..)
            .map(|(&p, _)| p)
            .collect();
        for p in doomed {
            self.remap(content, p, None);
        }
        if in_page > 0 {
            if let Some(&id) = content.chunks.get(&boundary_page) {
                let mut page = vec![0u8; CHUNK_SIZE];
                self.store.read(id, 0, &mut page);
                page[in_page..].fill(0);
                let new = if is_zero(&page) {
                    None
                } else {
                    Some(self.store.put(&page))
                };
                self.remap(content, boundary_page, new);
            }
        }
    }

    fn dealloc(&self, content: &mut BlobContent) {
        for (_, id) in std::mem::take(&mut content.chunks) {
            self.release(id);
        }
    }

    fn punch_hole(&self, content: &mut BlobContent, offset: u64, len: u64) {
        punch_hole_pages(offset, len, |page_no| {
            self.remap(content, page_no, None);
        });
        zero_partial_edges(offset, len, |page_no, range| {
            if let Some(&id) = content.chunks.get(&page_no) {
                let mut page = vec![0u8; CHUNK_SIZE];
                self.store.read(id, 0, &mut page);
                page[range].fill(0);
                let new = if is_zero(&page) {
                    None
                } else {
                    Some(self.store.put(&page))
                };
                self.remap(content, page_no, new);
            }
        });
    }

    fn allocated_bytes(&self, content: &BlobContent) -> u64 {
        // Logical allocation (what this file references); physical sharing
        // is visible in `BlobStore::stats` instead.
        content.chunks.len() as u64 * CHUNK_SIZE as u64
    }

    fn sync(&self) {}

    fn read_bytes(&self, content: &BlobContent, offset: u64, len: usize) -> Option<Bytes> {
        // One chunk per call (a short read at the chunk boundary): the
        // returned buffer is a slice of the stored chunk — or of the shared
        // zero chunk for a hole — never a copy.
        let page_no = offset / CHUNK_SIZE as u64;
        let in_page = (offset % CHUNK_SIZE as u64) as usize;
        let n = (CHUNK_SIZE - in_page).min(len);
        let chunk = match content.chunks.get(&page_no) {
            Some(&id) => self.store.chunk_bytes(id),
            None => zero_chunk().clone(),
        };
        // A short chunk (direct `put`) reads as zero at and past its end;
        // fall back to the copying path for that rare shape.
        if chunk.len() < in_page + n {
            return None;
        }
        Some(chunk.slice(in_page..in_page + n))
    }

    fn write_bytes(&self, content: &mut BlobContent, offset: u64, data: &Bytes) {
        for_each_page(offset, data.len(), |page_no, in_page, pos, n| {
            if in_page == 0 && n == CHUNK_SIZE {
                // Chunk-aligned: retain a slice of the incoming buffer
                // (refcount bump on dedup, zero copies either way).
                let slice = data.slice(pos..pos + n);
                let id = if is_zero(&slice) {
                    None
                } else {
                    Some(self.store.put_bytes(slice))
                };
                self.remap(content, page_no, id);
            } else {
                // Unaligned edge: read-modify-write, as `write` does.
                self.write(content, offset + pos as u64, &data[pos..pos + n]);
            }
        });
    }
}

/// A POSIX filesystem whose file contents live in a shared [`BlobStore`].
pub type BlobFs = NodeFs<BlobBackend>;

/// Default capacity, matching `cntr_fs::memfs`.
pub const DEFAULT_CAPACITY: u64 = 16 << 30;

/// Creates a [`BlobFs`] over `store` with the default capacity.
pub fn blobfs(dev_id: DevId, clock: SimClock, store: Arc<BlobStore>) -> Arc<BlobFs> {
    blobfs_with_capacity(dev_id, clock, store, DEFAULT_CAPACITY)
}

/// Creates a [`BlobFs`] with an explicit capacity in bytes.
pub fn blobfs_with_capacity(
    dev_id: DevId,
    clock: SimClock,
    store: Arc<BlobStore>,
    capacity: u64,
) -> Arc<BlobFs> {
    Arc::new(NodeFs::new(
        dev_id,
        "blobfs",
        FsFeatures::tmpfs(),
        capacity,
        clock,
        BlobBackend::new(store),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::{Filesystem, FsContext};
    use cntr_types::{FileType, Ino, Mode, OpenFlags, SetAttr};

    fn fs_pair() -> (Arc<BlobStore>, Arc<BlobFs>) {
        let store = BlobStore::new();
        let fs = blobfs(DevId(77), SimClock::new(), Arc::clone(&store));
        (store, fs)
    }

    fn create(fs: &BlobFs, name: &str) -> Ino {
        fs.mknod(
            Ino::ROOT,
            name,
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &FsContext::root(),
        )
        .unwrap()
        .ino
    }

    #[test]
    fn roundtrip_unaligned() {
        let (_s, fs) = fs_pair();
        let ino = create(&fs, "f");
        let fh = fs.open(ino, OpenFlags::RDWR).unwrap();
        let data: Vec<u8> = (0..9000).map(|i| (i * 13 % 251) as u8).collect();
        fs.write(ino, fh, 4093, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        assert_eq!(fs.read(ino, fh, 4093, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn identical_files_share_physical_chunks() {
        let (store, fs) = fs_pair();
        let payload = vec![0x5Au8; 8 * CHUNK_SIZE];
        for name in ["a", "b", "c"] {
            let ino = create(&fs, name);
            let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
            fs.write(ino, fh, 0, &payload).unwrap();
            fs.release(ino, fh).unwrap();
        }
        let st = store.stats();
        assert_eq!(
            st.physical_bytes, CHUNK_SIZE as u64,
            "identical pages of identical files collapse to one chunk"
        );
        // Each file still accounts its own logical allocation.
        assert_eq!(fs.used_bytes(), 3 * 8 * CHUNK_SIZE as u64);
    }

    #[test]
    fn sparse_files_cost_nothing() {
        let (store, fs) = fs_pair();
        let ino = create(&fs, "sparse");
        fs.setattr(ino, &SetAttr::truncate(500 << 20), &FsContext::root())
            .unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, 500 << 20);
        assert_eq!(store.stats().physical_bytes, 0);
        // Writing zeroes also costs nothing (content-addressed elision).
        let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
        fs.write(ino, fh, 1 << 20, &vec![0u8; 64 * 1024]).unwrap();
        assert_eq!(store.stats().physical_bytes, 0);
    }

    #[test]
    fn dropping_the_filesystem_releases_all_chunk_refs() {
        let store = BlobStore::new();
        {
            let fs = blobfs(DevId(80), SimClock::new(), Arc::clone(&store));
            let ino = create(&fs, "f");
            let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
            let distinct: Vec<u8> = (0..4 * CHUNK_SIZE).map(|i| (i / 7) as u8).collect();
            fs.write(ino, fh, 0, &distinct).unwrap();
            fs.release(ino, fh).unwrap();
            assert!(store.stats().physical_bytes > 0);
            // `fs` is dropped here without any unlinks — a stopped
            // container's upper layer.
        }
        assert_eq!(
            store.stats().physical_bytes,
            0,
            "a dropped filesystem must return every chunk reference"
        );
    }

    #[test]
    fn unaligned_ingest_dedups_against_page_writes() {
        let (store, fs) = fs_pair();
        // 6000 bytes: one full chunk + a 1904-byte tail.
        let payload: Vec<u8> = (0..6000).map(|i| (i % 251 + 1) as u8).collect();
        let handle = store.ingest(&payload);
        let after_ingest = store.stats().physical_bytes;
        // Writing the same bytes through the filesystem produces the same
        // padded pages: zero new physical bytes.
        let ino = create(&fs, "copy");
        let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
        fs.write(ino, fh, 0, &payload).unwrap();
        fs.release(ino, fh).unwrap();
        assert_eq!(
            store.stats().physical_bytes,
            after_ingest,
            "unaligned tails must hash identically to padded pages"
        );
        assert_eq!(handle.read_all(), payload);
    }

    #[test]
    fn unlink_releases_chunk_refs() {
        let (store, fs) = fs_pair();
        let ino = create(&fs, "f");
        let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
        fs.write(ino, fh, 0, &[1u8; 3 * CHUNK_SIZE]).unwrap();
        fs.release(ino, fh).unwrap();
        assert!(store.stats().physical_bytes > 0);
        fs.unlink(Ino::ROOT, "f").unwrap();
        assert_eq!(store.stats().physical_bytes, 0);
        assert_eq!(fs.used_bytes(), 0);
    }

    #[test]
    fn truncate_and_punch_hole_release_refs() {
        let (store, fs) = fs_pair();
        let ino = create(&fs, "f");
        let fh = fs.open(ino, OpenFlags::RDWR).unwrap();
        fs.write(ino, fh, 0, &[3u8; 8 * CHUNK_SIZE]).unwrap();
        fs.fallocate(
            ino,
            fh,
            0,
            4 * CHUNK_SIZE as u64,
            cntr_fs::FallocateMode::PunchHole,
        )
        .unwrap();
        assert_eq!(store.stats().physical_bytes, CHUNK_SIZE as u64);
        let mut buf = [9u8; 64];
        fs.read(ino, fh, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        fs.setattr(ino, &SetAttr::truncate(0), &FsContext::root())
            .unwrap();
        assert_eq!(store.stats().physical_bytes, 0);
    }
}
