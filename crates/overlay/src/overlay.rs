//! A copy-on-write union filesystem over the [`Filesystem`] trait.
//!
//! [`OverlayFs`] merges N read-only *lower* layers (topmost first) under one
//! writable *upper* layer, following the Linux overlayfs on-disk
//! conventions:
//!
//! * a **whiteout** is a 0/0 character device in the upper layer — it hides
//!   the lower entry of the same name;
//! * an **opaque directory** carries the `trusted.overlay.opaque` xattr —
//!   lower directories at the same path stop contributing entries;
//! * any mutation of lower content (write, truncate, chmod, chown, xattr,
//!   link, rename) triggers **copy-up**: the file is recreated in the upper
//!   layer with identical ownership, mode, timestamps and xattrs, and its
//!   data is copied chunk-by-chunk. When upper and lowers share one
//!   [`crate::BlobStore`], those copies dedup into refcount bumps.
//!
//! Deviations from Linux overlayfs, chosen for POSIX equivalence with a
//! flattened filesystem (the property the `prop_fs` oracle checks):
//!
//! * renaming a merged directory deep-copies it to the upper layer (and
//!   marks it opaque) instead of returning `EXDEV`;
//! * overlay inode numbers are stable for the lifetime of the mount, so
//!   copy-up does not change `st_ino` (Linux needs `xino` for this).
//!
//! One Linux quirk is preserved: a file opened read-only before a copy-up
//! keeps reading the lower file's (stale) data through that handle.

use crate::blob::CHUNK_SIZE;
use cntr_fs::{FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags, MAX_NAME_LEN};
use cntr_types::{
    DevId, Dirent, Errno, FileType, Ino, Mode, OpenFlags, RenameFlags, SetAttr, Stat, Statfs,
    SysResult,
};
use obs::{LazyCounter, Subsystem};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The xattr marking an opaque directory (Linux overlayfs convention).
pub const OPAQUE_XATTR: &str = "trusted.overlay.opaque";

// Global observability metrics, aggregated over every overlay instance.
// Copy-up is the paper's headline overlay cost (§3.3); the dentry-cache
// counters show what fraction of lookups the cache absorbs.
static OBS_COPY_UP: LazyCounter = LazyCounter::new(Subsystem::Overlay, "overlay.copy-up.count");
static OBS_COPY_UP_BYTES: LazyCounter =
    LazyCounter::new(Subsystem::Overlay, "overlay.copy-up.bytes");
static OBS_DCACHE_HITS: LazyCounter = LazyCounter::new(Subsystem::Overlay, "overlay.dcache.hits");
static OBS_DCACHE_NEG_HITS: LazyCounter =
    LazyCounter::new(Subsystem::Overlay, "overlay.dcache.negative-hits");
static OBS_DCACHE_MISSES: LazyCounter =
    LazyCounter::new(Subsystem::Overlay, "overlay.dcache.misses");

/// Which layer a realization lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LayerKey {
    Upper,
    Lower(usize),
}

/// One overlay inode: where it currently resolves in the stack.
#[derive(Debug, Clone)]
struct OvlNode {
    /// Overlay ino of the parent directory (root's parent is root).
    parent: Ino,
    /// Entry name under `parent` (empty for root).
    name: String,
    /// Realization in the upper layer, if present.
    upper: Option<Ino>,
    /// Lower-layer contributions, ascending layer index (for directories:
    /// every merged layer; for other types: the primary only).
    lowers: Vec<(usize, Ino)>,
}

impl OvlNode {
    fn primary(&self) -> (LayerKey, Ino) {
        match self.upper {
            Some(ino) => (LayerKey::Upper, ino),
            None => {
                let (i, ino) = self.lowers[0];
                (LayerKey::Lower(i), ino)
            }
        }
    }

    fn realization_count(&self) -> usize {
        usize::from(self.upper.is_some()) + self.lowers.len()
    }
}

/// An open overlay handle, pinned to the realization at open time.
struct OvlHandle {
    layer: LayerKey,
    real_ino: Ino,
    real_fh: Fh,
}

struct OvlState {
    nodes: HashMap<Ino, OvlNode>,
    /// `(layer, underlying ino) → overlay ino`: keeps overlay inos stable
    /// across lookups and across copy-up.
    by_real: HashMap<(LayerKey, Ino), Ino>,
    handles: HashMap<Fh, OvlHandle>,
    next_ino: u64,
    next_fh: u64,
    /// Paths opened for reading while access tracking is on (the overlay
    /// replacement for fanotify in `cntr-slim`).
    accessed: BTreeSet<String>,
    /// Dentry cache: parent overlay ino → name → `Some(child)` for a
    /// previously merged child, `None` for a confirmed-absent name (a
    /// negative entry). A hit answers a lookup with one `getattr` against
    /// the primary realization instead of one `lookup` per layer; the
    /// two-level shape keeps the hot probe allocation-free (`&str` lookup
    /// in the inner map). Invalidated by every naming mutation (create,
    /// unlink, rmdir, rename, whiteout); overlay inos are never reused, so
    /// entries cannot alias a recycled identity. Bounded by
    /// [`DCACHE_CAP`]: on overflow the whole cache is dropped (it is a
    /// cache — correctness never depends on its contents).
    dcache: HashMap<Ino, HashMap<String, Option<Ino>>>,
    /// Total entries across all of `dcache`'s inner maps.
    dcache_len: usize,
    /// Merged-listing cache per overlay directory: makes repeated
    /// `readdir`/`nlink` computations on a hot merged directory stop
    /// re-reading every contributing layer. Invalidated alongside the
    /// dentry cache whenever the directory's namespace changes; bounded by
    /// [`DIR_CACHE_CAP`] directories.
    dir_cache: HashMap<Ino, DirCacheEntry>,
}

/// Upper bound on cached dentries (positive + negative) per overlay.
const DCACHE_CAP: usize = 65_536;

/// Upper bound on cached merged directory listings per overlay.
const DIR_CACHE_CAP: usize = 1_024;

/// One cached merged listing plus the derived subdirectory count (`nlink`
/// wants only the count — serving it from here avoids cloning the map).
struct DirCacheEntry {
    names: BTreeMap<String, FileType>,
    subdirs: u32,
}

impl OvlState {
    /// Drops cached naming state after a mutation of `name` under `parent`.
    /// With `negative`, the entry is replaced by a confirmed absence
    /// (unlink/rmdir leave the name resolvable to `ENOENT`); otherwise the
    /// entry is simply forgotten and the next lookup re-merges.
    fn invalidate_entry(&mut self, parent: Ino, name: &str, negative: bool) {
        if negative {
            self.remember_entry(parent, name, None);
        } else if let Some(entries) = self.dcache.get_mut(&parent) {
            if entries.remove(name).is_some() {
                self.dcache_len -= 1;
            }
        }
        self.dir_cache.remove(&parent);
    }

    /// Records a merge outcome for `name` under `parent`, dropping the
    /// whole cache first if it has reached [`DCACHE_CAP`].
    fn remember_entry(&mut self, parent: Ino, name: &str, child: Option<Ino>) {
        if self.dcache_len >= DCACHE_CAP {
            self.dcache.clear();
            self.dcache_len = 0;
        }
        if self
            .dcache
            .entry(parent)
            .or_default()
            .insert(name.to_string(), child)
            .is_none()
        {
            self.dcache_len += 1;
        }
    }

    /// Forgets one cached dentry (stale positive hit).
    fn forget_entry(&mut self, parent: Ino, name: &str) {
        if let Some(entries) = self.dcache.get_mut(&parent) {
            if entries.remove(name).is_some() {
                self.dcache_len -= 1;
            }
        }
    }
}

/// Copy-on-write union of N read-only lowers and one writable upper.
pub struct OverlayFs {
    dev: DevId,
    upper: Arc<dyn Filesystem>,
    /// Topmost first (`lowerdir=` order on Linux).
    lowers: Vec<Arc<dyn Filesystem>>,
    state: Mutex<OvlState>,
    track_access: AtomicBool,
}

/// What one upper-layer entry means relative to the lowers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffKind {
    /// A node added or modified in the upper layer.
    Upsert(FileType),
    /// A whiteout hiding a lower entry.
    Whiteout,
    /// An opaque directory (its merged content is upper-only).
    Opaque,
}

/// One entry of [`OverlayFs::upper_diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Absolute path within the overlay.
    pub path: String,
    /// Entry class.
    pub kind: DiffKind,
}

fn is_whiteout(st: &Stat) -> bool {
    st.ftype == FileType::CharDevice && st.rdev == 0
}

/// A context carrying the original owner, used to stamp copied-up nodes
/// (copy-up must preserve ownership, not adopt the writer's).
fn owner_ctx(st: &Stat) -> FsContext {
    FsContext {
        uid: st.uid,
        gid: st.gid,
        groups: Vec::new(),
        cap_fsetid: true,
    }
}

fn root_ctx() -> FsContext {
    FsContext::root()
}

fn validate_name(name: &str) -> SysResult<()> {
    if name.is_empty() || name == "." || name == ".." || name.contains('/') || name.contains('\0') {
        return Err(Errno::EINVAL);
    }
    if name.len() > MAX_NAME_LEN {
        return Err(Errno::ENAMETOOLONG);
    }
    Ok(())
}

impl OverlayFs {
    /// Creates an overlay with `lowers` (topmost first) under `upper`.
    ///
    /// The lowers are treated as read-only: the overlay never issues a
    /// mutating operation against them. The upper must be empty or a
    /// previous upper of the same stack.
    pub fn new(
        dev: DevId,
        lowers: Vec<Arc<dyn Filesystem>>,
        upper: Arc<dyn Filesystem>,
    ) -> Arc<OverlayFs> {
        let mut nodes = HashMap::new();
        let mut by_real = HashMap::new();
        let root = OvlNode {
            parent: Ino::ROOT,
            name: String::new(),
            upper: Some(upper.root_ino()),
            lowers: lowers
                .iter()
                .enumerate()
                .map(|(i, fs)| (i, fs.root_ino()))
                .collect(),
        };
        by_real.insert((LayerKey::Upper, upper.root_ino()), Ino::ROOT);
        for (i, fs) in lowers.iter().enumerate() {
            by_real.insert((LayerKey::Lower(i), fs.root_ino()), Ino::ROOT);
        }
        nodes.insert(Ino::ROOT, root);
        Arc::new(OverlayFs {
            dev,
            upper,
            lowers,
            state: Mutex::new_class(
                "overlay.state",
                OvlState {
                    nodes,
                    by_real,
                    handles: HashMap::new(),
                    next_ino: 2,
                    next_fh: 1,
                    accessed: BTreeSet::new(),
                    dcache: HashMap::new(),
                    dcache_len: 0,
                    dir_cache: HashMap::new(),
                },
            ),
            track_access: AtomicBool::new(false),
        })
    }

    /// The writable upper layer.
    pub fn upper_layer(&self) -> &Arc<dyn Filesystem> {
        &self.upper
    }

    /// The read-only lower layers, topmost first.
    pub fn lower_layers(&self) -> &[Arc<dyn Filesystem>] {
        &self.lowers
    }

    /// Enables or disables read-access tracking. Enabling clears the log.
    pub fn set_access_tracking(&self, on: bool) {
        if on {
            self.state.lock().accessed.clear();
        }
        self.track_access.store(on, Ordering::Relaxed);
    }

    /// Paths opened for reading since tracking was enabled.
    pub fn accessed_paths(&self) -> BTreeSet<String> {
        self.state.lock().accessed.clone()
    }

    /// Walks the upper layer and classifies every entry — the container's
    /// write set. `cntr-slim` diffs this instead of replaying access logs.
    pub fn upper_diff(&self) -> Vec<DiffEntry> {
        let mut out = Vec::new();
        self.diff_dir(self.upper.root_ino(), "", &mut out);
        out
    }

    fn diff_dir(&self, dir: Ino, prefix: &str, out: &mut Vec<DiffEntry>) {
        let Ok(entries) = self.upper.readdir(dir) else {
            return;
        };
        for e in entries {
            let path = format!("{prefix}/{}", e.name);
            let Ok(st) = self.upper.getattr(e.ino) else {
                continue;
            };
            if is_whiteout(&st) {
                out.push(DiffEntry {
                    path,
                    kind: DiffKind::Whiteout,
                });
            } else if st.ftype == FileType::Directory {
                let opaque = self.upper.getxattr(e.ino, OPAQUE_XATTR).is_ok();
                out.push(DiffEntry {
                    path: path.clone(),
                    kind: if opaque {
                        DiffKind::Opaque
                    } else {
                        DiffKind::Upsert(FileType::Directory)
                    },
                });
                self.diff_dir(e.ino, &path, out);
            } else {
                out.push(DiffEntry {
                    path,
                    kind: DiffKind::Upsert(st.ftype),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal resolution
    // ------------------------------------------------------------------

    fn layer_fs(&self, key: LayerKey) -> &Arc<dyn Filesystem> {
        match key {
            LayerKey::Upper => &self.upper,
            LayerKey::Lower(i) => &self.lowers[i],
        }
    }

    fn node(st: &OvlState, ino: Ino) -> SysResult<&OvlNode> {
        st.nodes.get(&ino).ok_or(Errno::ENOENT)
    }

    /// Absolute overlay path of a node (access log, diffs).
    fn path_of(st: &OvlState, mut ino: Ino) -> String {
        let mut parts = Vec::new();
        let mut hops = 0;
        while ino != Ino::ROOT && hops < 4096 {
            let Some(n) = st.nodes.get(&ino) else { break };
            parts.push(n.name.clone());
            ino = n.parent;
            hops += 1;
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// True if `dir_upper` carries the opaque marker.
    fn upper_opaque(&self, dir_upper: Ino) -> bool {
        self.upper.getxattr(dir_upper, OPAQUE_XATTR).is_ok()
    }

    /// True if any lower layer contributes `name` under `parent`
    /// (disregarding the upper layer entirely).
    fn lower_visible(&self, pnode: &OvlNode, name: &str) -> bool {
        if let Some(pu) = pnode.upper {
            if self.upper_opaque(pu) {
                return false;
            }
        }
        for &(i, pl) in &pnode.lowers {
            match self.lowers[i].lookup(pl, name) {
                Ok(st) => return !is_whiteout(&st),
                Err(_) => continue,
            }
        }
        false
    }

    /// Resolves `name` under overlay directory `parent`, assigning (or
    /// reusing) an overlay ino. Returns `(ovl_ino, fixed-up stat)`.
    ///
    /// Hot lookups are answered from the dentry cache: a positive hit costs
    /// one `getattr` against the primary realization, a negative hit costs
    /// nothing — neither re-consults every lower layer.
    fn merge_child(&self, st: &mut OvlState, parent: Ino, name: &str) -> SysResult<(Ino, Stat)> {
        if name.len() > MAX_NAME_LEN {
            return Err(Errno::ENAMETOOLONG);
        }
        let cached = st.dcache.get(&parent).and_then(|m| m.get(name).copied());
        if let Some(cached) = cached {
            match cached {
                None => {
                    OBS_DCACHE_NEG_HITS.inc();
                    return Err(Errno::ENOENT);
                }
                Some(child) => {
                    let primary = st.nodes.get(&child).map(OvlNode::primary);
                    if let Some((k, i)) = primary {
                        if let Ok(stt) = self.layer_fs(k).getattr(i) {
                            OBS_DCACHE_HITS.inc();
                            let stat = self.fixup_stat(st, child, stt);
                            return Ok((child, stat));
                        }
                    }
                    // Stale (realization vanished): forget and re-merge.
                    st.forget_entry(parent, name);
                }
            }
        }
        OBS_DCACHE_MISSES.inc();
        let res = self.merge_child_slow(st, parent, name);
        match &res {
            Ok((child, _)) => st.remember_entry(parent, name, Some(*child)),
            Err(Errno::ENOENT) => st.remember_entry(parent, name, None),
            Err(_) => {}
        }
        res
    }

    /// The uncached merge: consults the upper layer and every contributing
    /// lower layer. See [`OverlayFs::merge_child`] for the cached entry.
    fn merge_child_slow(
        &self,
        st: &mut OvlState,
        parent: Ino,
        name: &str,
    ) -> SysResult<(Ino, Stat)> {
        let pnode = Self::node(st, parent)?.clone();
        // The parent must be a directory in its primary realization.
        let (pk, pi) = pnode.primary();
        if self.layer_fs(pk).getattr(pi)?.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }

        // 1. The upper layer wins.
        let mut upper_child: Option<Stat> = None;
        if let Some(pu) = pnode.upper {
            match self.upper.lookup(pu, name) {
                Ok(stt) if is_whiteout(&stt) => return Err(Errno::ENOENT),
                Ok(stt) => upper_child = Some(stt),
                Err(Errno::ENOENT) => {}
                Err(e) => return Err(e),
            }
        }
        let parent_opaque = pnode.upper.is_some_and(|pu| self.upper_opaque(pu));

        // 2. Lower contributions (skipped when shadowed).
        let mut lower_hits: Vec<(usize, Stat)> = Vec::new();
        let upper_shadows = match &upper_child {
            Some(stt) if stt.ftype != FileType::Directory => true,
            Some(stt) => self.upper_opaque(stt.ino),
            None => false,
        };
        if !parent_opaque && !upper_shadows {
            for &(i, pl) in &pnode.lowers {
                match self.lowers[i].lookup(pl, name) {
                    Ok(stt) if is_whiteout(&stt) => break,
                    Ok(stt) => {
                        let is_dir = stt.ftype == FileType::Directory;
                        let opaque =
                            is_dir && self.lowers[i].getxattr(stt.ino, OPAQUE_XATTR).is_ok();
                        lower_hits.push((i, stt));
                        if !is_dir || opaque {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        }

        // 3. Compose the node.
        let primary_stat = upper_child
            .or_else(|| lower_hits.first().map(|(_, s)| *s))
            .ok_or(Errno::ENOENT)?;
        let is_dir = primary_stat.ftype == FileType::Directory;
        let lowers: Vec<(usize, Ino)> = if is_dir || upper_child.is_none() {
            lower_hits
                .iter()
                .filter(|(_, s)| !is_dir || s.ftype == FileType::Directory)
                .map(|(i, s)| (*i, s.ino))
                .collect()
        } else {
            Vec::new()
        };
        let primary_key = match &upper_child {
            Some(stt) => (LayerKey::Upper, stt.ino),
            None => (LayerKey::Lower(lowers[0].0), lowers[0].1),
        };

        let ovl_ino = match st.by_real.get(&primary_key) {
            Some(&ino) => ino,
            None => {
                let ino = Ino(st.next_ino);
                st.next_ino += 1;
                st.by_real.insert(primary_key, ino);
                ino
            }
        };
        st.nodes.insert(
            ovl_ino,
            OvlNode {
                parent,
                name: name.to_string(),
                upper: upper_child.map(|s| s.ino),
                lowers,
            },
        );
        let stat = self.fixup_stat(st, ovl_ino, primary_stat);
        Ok((ovl_ino, stat))
    }

    /// Rewrites dev/ino to overlay identities; recomputes nlink for merged
    /// directories.
    fn fixup_stat(&self, st: &mut OvlState, ovl_ino: Ino, mut stat: Stat) -> Stat {
        stat.dev = self.dev;
        stat.ino = ovl_ino;
        if stat.ftype == FileType::Directory {
            let node = st.nodes.get(&ovl_ino).cloned();
            if let Some(node) = node {
                if node.realization_count() > 1 {
                    if let Ok(subdirs) = self.merged_subdir_count(st, ovl_ino, &node) {
                        stat.nlink = 2 + subdirs;
                    }
                }
            }
        }
        stat
    }

    /// The merged directory listing `name → file type` of a node, served
    /// from the per-directory cache when warm (one `BTreeMap` clone instead
    /// of a `readdir` + whiteout scan of every contributing layer).
    fn merged_names(
        &self,
        st: &mut OvlState,
        dir: Ino,
        node: &OvlNode,
    ) -> SysResult<BTreeMap<String, FileType>> {
        if let Some(cached) = st.dir_cache.get(&dir) {
            return Ok(cached.names.clone());
        }
        let out = self.merged_names_uncached(node)?;
        if st.dir_cache.len() >= DIR_CACHE_CAP {
            st.dir_cache.clear();
        }
        st.dir_cache.insert(
            dir,
            DirCacheEntry {
                subdirs: out.values().filter(|t| **t == FileType::Directory).count() as u32,
                names: out.clone(),
            },
        );
        Ok(out)
    }

    /// The number of subdirectories in a merged directory (what `nlink`
    /// needs) — served from the cache without cloning the listing.
    fn merged_subdir_count(&self, st: &mut OvlState, dir: Ino, node: &OvlNode) -> SysResult<u32> {
        if let Some(cached) = st.dir_cache.get(&dir) {
            return Ok(cached.subdirs);
        }
        self.merged_names(st, dir, node).map(|names| {
            names
                .values()
                .filter(|t| **t == FileType::Directory)
                .count() as u32
        })
    }

    /// The uncached merged listing computed from every layer.
    fn merged_names_uncached(&self, node: &OvlNode) -> SysResult<BTreeMap<String, FileType>> {
        let mut out: BTreeMap<String, FileType> = BTreeMap::new();
        let mut hidden: BTreeSet<String> = BTreeSet::new();
        if let Some(up) = node.upper {
            for e in self.upper.readdir(up)? {
                if e.ftype == FileType::CharDevice {
                    if let Ok(stt) = self.upper.getattr(e.ino) {
                        if is_whiteout(&stt) {
                            hidden.insert(e.name);
                            continue;
                        }
                    }
                }
                out.insert(e.name, e.ftype);
            }
            if self.upper_opaque(up) {
                return Ok(out);
            }
        }
        for &(i, li) in &node.lowers {
            let entries = match self.lowers[i].readdir(li) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let mut opaque_stop = false;
            for e in entries {
                if hidden.contains(&e.name) || out.contains_key(&e.name) {
                    continue;
                }
                if e.ftype == FileType::CharDevice {
                    if let Ok(stt) = self.lowers[i].getattr(e.ino) {
                        if is_whiteout(&stt) {
                            hidden.insert(e.name);
                            continue;
                        }
                    }
                }
                out.insert(e.name, e.ftype);
            }
            // An opaque lower dir would have been the merge stop already at
            // contribution-collection time; double-check defensively.
            if self.lowers[i].getxattr(li, OPAQUE_XATTR).is_ok() {
                opaque_stop = true;
            }
            if opaque_stop {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Copy-up
    // ------------------------------------------------------------------

    /// Ensures the overlay directory `ovl` exists in the upper layer
    /// (copying up the parent chain, meta-only), returning its upper ino.
    fn ensure_upper_dir(&self, st: &mut OvlState, ovl: Ino) -> SysResult<Ino> {
        // Collect the missing chain root-ward.
        let mut chain = Vec::new();
        let mut cur = ovl;
        loop {
            let node = Self::node(st, cur)?;
            if node.upper.is_some() {
                break;
            }
            chain.push(cur);
            if cur == Ino::ROOT {
                return Err(Errno::EIO); // root always has an upper
            }
            cur = node.parent;
        }
        for &dir in chain.iter().rev() {
            let node = Self::node(st, dir)?.clone();
            let parent_up = Self::node(st, node.parent)?.upper.ok_or(Errno::EIO)?;
            let (lk, li) = node.primary();
            let src = self.layer_fs(lk);
            let stt = src.getattr(li)?;
            if stt.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            let created = self
                .upper
                .mkdir(parent_up, &node.name, stt.mode, &owner_ctx(&stt))?;
            self.copy_meta(src, li, &stt, created.ino)?;
            st.by_real.insert((LayerKey::Upper, created.ino), dir);
            st.nodes.get_mut(&dir).expect("node exists").upper = Some(created.ino);
        }
        Self::node(st, ovl)?.upper.ok_or(Errno::EIO)
    }

    /// Copies mode/owner/times/xattrs from `(src, src_ino)` onto the upper
    /// node `dst_ino`.
    fn copy_meta(
        &self,
        src: &Arc<dyn Filesystem>,
        src_ino: Ino,
        stt: &Stat,
        dst_ino: Ino,
    ) -> SysResult<()> {
        let attr = SetAttr {
            mode: Some(stt.mode),
            uid: Some(stt.uid),
            gid: Some(stt.gid),
            atime: Some(stt.atime),
            mtime: Some(stt.mtime),
            size: None,
        };
        self.upper.setattr(dst_ino, &attr, &root_ctx())?;
        if let Ok(names) = src.listxattr(src_ino) {
            for name in names {
                if let Ok(value) = src.getxattr(src_ino, &name) {
                    let _ = self.upper.setxattr(dst_ino, &name, &value, XattrFlags::Any);
                }
            }
        }
        Ok(())
    }

    /// Copies a non-directory node up to the upper layer. With `skip_data`
    /// (open with `O_TRUNC`), the data copy is elided.
    fn copy_up(&self, st: &mut OvlState, ovl: Ino, skip_data: bool) -> SysResult<Ino> {
        let node = Self::node(st, ovl)?.clone();
        if let Some(up) = node.upper {
            return Ok(up);
        }
        let parent_up = self.ensure_upper_dir(st, node.parent)?;
        let (lk, li) = node.primary();
        let src = Arc::clone(self.layer_fs(lk));
        let stt = src.getattr(li)?;
        let ctx = owner_ctx(&stt);
        let created = match stt.ftype {
            FileType::Directory => return Err(Errno::EISDIR),
            FileType::Symlink => {
                let target = src.readlink(li)?;
                self.upper.symlink(parent_up, &node.name, &target, &ctx)?
            }
            ftype => {
                let created = self
                    .upper
                    .mknod(parent_up, &node.name, ftype, stt.mode, stt.rdev, &ctx)?;
                if ftype == FileType::Regular && !skip_data {
                    self.copy_data(&src, li, created.ino, stt.size)?;
                }
                created
            }
        };
        self.copy_meta(&src, li, &stt, created.ino)?;
        OBS_COPY_UP.inc();
        st.by_real.insert((LayerKey::Upper, created.ino), ovl);
        st.nodes.get_mut(&ovl).expect("node exists").upper = Some(created.ino);
        Ok(created.ino)
    }

    /// Streams file data from a lower file into a fresh upper file,
    /// chunk-by-chunk, skipping holes (all-zero chunks).
    fn copy_data(
        &self,
        src: &Arc<dyn Filesystem>,
        src_ino: Ino,
        dst_ino: Ino,
        size: u64,
    ) -> SysResult<()> {
        let sfh = src.open(src_ino, OpenFlags::RDONLY)?;
        let dfh = self.upper.open(dst_ino, OpenFlags::WRONLY)?;
        let mut buf = vec![0u8; CHUNK_SIZE];
        let mut off = 0u64;
        while off < size {
            let n = src.read(src_ino, sfh, off, &mut buf)?;
            if n == 0 {
                break;
            }
            if !crate::blob::is_zero(&buf[..n]) {
                self.upper.write(dst_ino, dfh, off, &buf[..n])?;
            }
            OBS_COPY_UP_BYTES.add(n as u64);
            off += n as u64;
        }
        src.release(src_ino, sfh)?;
        self.upper.release(dst_ino, dfh)?;
        // Restore the logical size (sparse tails) — writes already extended
        // the file up to the last non-zero chunk only.
        self.upper
            .setattr(dst_ino, &SetAttr::truncate(size), &root_ctx())?;
        Ok(())
    }

    /// Deep copy-up of a directory subtree (rename support), marking the
    /// copied root opaque so lower entries stop contributing.
    fn copy_up_tree(&self, st: &mut OvlState, ovl: Ino) -> SysResult<Ino> {
        let up = self.ensure_upper_dir(st, ovl)?;
        let node = Self::node(st, ovl)?.clone();
        let names: Vec<String> = self.merged_names(st, ovl, &node)?.into_keys().collect();
        for name in names {
            let (child, child_st) = self.merge_child(st, ovl, &name)?;
            if child_st.ftype == FileType::Directory {
                self.copy_up_tree(st, child)?;
            } else if Self::node(st, child)?.upper.is_none() {
                self.copy_up(st, child, false)?;
            }
        }
        self.upper
            .setxattr(up, OPAQUE_XATTR, b"y", XattrFlags::Any)?;
        Ok(up)
    }

    /// Creates a whiteout entry for `name` under upper directory `pu`.
    fn make_whiteout(&self, pu: Ino, name: &str) -> SysResult<()> {
        self.upper
            .mknod(pu, name, FileType::CharDevice, Mode::new(0), 0, &root_ctx())
            .map(|_| ())
    }

    /// Removes an existing whiteout entry for `name` under `pu`, if any.
    fn clear_whiteout(&self, pu: Ino, name: &str) -> SysResult<bool> {
        match self.upper.lookup(pu, name) {
            Ok(stt) if is_whiteout(&stt) => {
                self.upper.unlink(pu, name)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Forgets the upper realization mapping of a removed entry — but only
    /// when the upper inode is actually dead. A hard-linked inode that
    /// survives under other names must keep its overlay ino (POSIX: aliases
    /// share `st_ino`, and the page cache is keyed by it). Lower mappings
    /// always persist: lower layers are immutable, so `(layer, ino)` stays
    /// a valid identity for any remaining aliases.
    fn drop_node_mappings(&self, st: &mut OvlState, ovl: Ino) {
        if let Some(node) = st.nodes.get(&ovl).cloned() {
            if let Some(up) = node.upper {
                let alive = self
                    .upper
                    .getattr(up)
                    .map(|s| s.ftype != FileType::Directory && s.nlink > 0)
                    .unwrap_or(false);
                if !alive {
                    st.by_real.remove(&(LayerKey::Upper, up));
                }
            }
        }
    }

    /// True if `ancestor` lies on the parent chain of `node`.
    fn is_ancestor(st: &OvlState, ancestor: Ino, mut node: Ino) -> bool {
        let mut hops = 0;
        while hops < 4096 {
            if node == ancestor {
                return true;
            }
            if node == Ino::ROOT {
                return false;
            }
            match st.nodes.get(&node) {
                Some(n) => node = n.parent,
                None => return false,
            }
            hops += 1;
        }
        false
    }

    /// Common prologue for entry creation: merged-EEXIST check, parent
    /// copy-up, whiteout clearing. Returns `(parent_upper, had_whiteout)`.
    fn prepare_create(&self, st: &mut OvlState, parent: Ino, name: &str) -> SysResult<(Ino, bool)> {
        validate_name(name)?;
        match self.merge_child(st, parent, name) {
            Ok(_) => return Err(Errno::EEXIST),
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        let pu = self.ensure_upper_dir(st, parent)?;
        let had_whiteout = self.clear_whiteout(pu, name)?;
        Ok((pu, had_whiteout))
    }

    /// Registers a freshly created upper node and returns its overlay stat.
    fn register_created(&self, st: &mut OvlState, parent: Ino, name: &str, created: Stat) -> Stat {
        let ovl_ino = Ino(st.next_ino);
        st.next_ino += 1;
        st.by_real.insert((LayerKey::Upper, created.ino), ovl_ino);
        st.nodes.insert(
            ovl_ino,
            OvlNode {
                parent,
                name: name.to_string(),
                upper: Some(created.ino),
                lowers: Vec::new(),
            },
        );
        // The creation overwrites any negative dentry for this name and
        // invalidates the parent's merged listing.
        st.dir_cache.remove(&parent);
        st.remember_entry(parent, name, Some(ovl_ino));
        self.fixup_stat(st, ovl_ino, created)
    }
}

impl Filesystem for OverlayFs {
    fn fs_id(&self) -> DevId {
        self.dev
    }

    fn fs_type(&self) -> &'static str {
        "overlay"
    }

    fn fs_options(&self) -> String {
        format!(
            "rw,lowerdir={}x{},upperdir={}",
            self.lowers.len(),
            self.lowers.first().map_or("none", |l| l.fs_type()),
            self.upper.fs_type()
        )
    }

    fn features(&self) -> FsFeatures {
        FsFeatures::tmpfs()
    }

    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        let mut st = self.state.lock();
        if name == "." {
            let node = Self::node(&st, parent)?.clone();
            let (k, i) = node.primary();
            let stt = self.layer_fs(k).getattr(i)?;
            if stt.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            return Ok(self.fixup_stat(&mut st, parent, stt));
        }
        self.merge_child(&mut st, parent, name).map(|(_, s)| s)
    }

    fn getattr(&self, ino: Ino) -> SysResult<Stat> {
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        let stt = self.layer_fs(k).getattr(i)?;
        Ok(self.fixup_stat(&mut st, ino, stt))
    }

    fn setattr(&self, ino: Ino, attr: &SetAttr, ctx: &FsContext) -> SysResult<Stat> {
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        let ftype = self.layer_fs(k).getattr(i)?.ftype;
        let up = match (node.upper, ftype) {
            (Some(u), _) => u,
            (None, FileType::Directory) => self.ensure_upper_dir(&mut st, ino)?,
            (None, _) => {
                // Truncation to zero does not need the data copied.
                let skip = attr.size == Some(0) && attr.mode.is_none() && attr.uid.is_none();
                self.copy_up(&mut st, ino, skip)?
            }
        };
        let stt = self.upper.setattr(up, attr, ctx)?;
        Ok(self.fixup_stat(&mut st, ino, stt))
    }

    fn mknod(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        ctx: &FsContext,
    ) -> SysResult<Stat> {
        if ftype == FileType::Directory {
            return Err(Errno::EINVAL);
        }
        let mut st = self.state.lock();
        let (pu, _) = self.prepare_create(&mut st, parent, name)?;
        let created = match self.upper.mknod(pu, name, ftype, mode, rdev, ctx) {
            Ok(c) => c,
            Err(e) => {
                // A whiteout may have been cleared: the cached negative
                // dentry is stale, so force the next lookup to re-merge.
                st.invalidate_entry(parent, name, false);
                return Err(e);
            }
        };
        Ok(self.register_created(&mut st, parent, name, created))
    }

    fn mkdir(&self, parent: Ino, name: &str, mode: Mode, ctx: &FsContext) -> SysResult<Stat> {
        let mut st = self.state.lock();
        let (pu, had_whiteout) = self.prepare_create(&mut st, parent, name)?;
        let created = match self.upper.mkdir(pu, name, mode, ctx) {
            Ok(c) => c,
            Err(e) => {
                st.invalidate_entry(parent, name, false);
                return Err(e);
            }
        };
        if had_whiteout {
            // A lower directory may exist beneath the removed whiteout; the
            // new directory must not merge with it.
            self.upper
                .setxattr(created.ino, OPAQUE_XATTR, b"y", XattrFlags::Any)?;
        }
        Ok(self.register_created(&mut st, parent, name, created))
    }

    fn unlink(&self, parent: Ino, name: &str) -> SysResult<()> {
        validate_name(name)?;
        let mut st = self.state.lock();
        let (child, child_st) = self.merge_child(&mut st, parent, name)?;
        if child_st.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let node = Self::node(&st, child)?.clone();
        let pnode = Self::node(&st, parent)?.clone();
        if node.upper.is_some() {
            let pu = pnode.upper.ok_or(Errno::EIO)?;
            self.upper.unlink(pu, name)?;
        }
        if self.lower_visible(&Self::node(&st, parent)?.clone(), name) {
            let pu = self.ensure_upper_dir(&mut st, parent)?;
            self.make_whiteout(pu, name)?;
        }
        self.drop_node_mappings(&mut st, child);
        st.invalidate_entry(parent, name, true);
        Ok(())
    }

    fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()> {
        validate_name(name)?;
        let mut st = self.state.lock();
        let (child, child_st) = self.merge_child(&mut st, parent, name)?;
        if child_st.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        let node = Self::node(&st, child)?.clone();
        if !self.merged_names(&mut st, child, &node)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        if let Some(u) = node.upper {
            // The upper dir can only contain whiteouts at this point.
            let leftovers: Vec<String> =
                self.upper.readdir(u)?.into_iter().map(|e| e.name).collect();
            for n in leftovers {
                self.upper.unlink(u, &n)?;
            }
            let pu = Self::node(&st, parent)?.upper.ok_or(Errno::EIO)?;
            self.upper.rmdir(pu, name)?;
        }
        if self.lower_visible(&Self::node(&st, parent)?.clone(), name) {
            let pu = self.ensure_upper_dir(&mut st, parent)?;
            self.make_whiteout(pu, name)?;
        }
        self.drop_node_mappings(&mut st, child);
        st.invalidate_entry(parent, name, true);
        st.dir_cache.remove(&child);
        Ok(())
    }

    fn symlink(&self, parent: Ino, name: &str, target: &str, ctx: &FsContext) -> SysResult<Stat> {
        let mut st = self.state.lock();
        let (pu, _) = self.prepare_create(&mut st, parent, name)?;
        let created = match self.upper.symlink(pu, name, target, ctx) {
            Ok(c) => c,
            Err(e) => {
                st.invalidate_entry(parent, name, false);
                return Err(e);
            }
        };
        Ok(self.register_created(&mut st, parent, name, created))
    }

    fn readlink(&self, ino: Ino) -> SysResult<String> {
        let st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        self.layer_fs(k).readlink(i)
    }

    fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<Stat> {
        validate_name(newname)?;
        let mut st = self.state.lock();
        {
            let node = Self::node(&st, ino)?.clone();
            let (k, i) = node.primary();
            if self.layer_fs(k).getattr(i)?.ftype == FileType::Directory {
                return Err(Errno::EPERM);
            }
        }
        match self.merge_child(&mut st, newparent, newname) {
            Ok(_) => return Err(Errno::EEXIST),
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        // Hard links require a single real inode: copy the source up first.
        let u = self.copy_up(&mut st, ino, false)?;
        let npu = self.ensure_upper_dir(&mut st, newparent)?;
        self.clear_whiteout(npu, newname)?;
        let stt = match self.upper.link(u, npu, newname) {
            Ok(s) => s,
            Err(e) => {
                st.invalidate_entry(newparent, newname, false);
                return Err(e);
            }
        };
        st.dir_cache.remove(&newparent);
        st.remember_entry(newparent, newname, Some(ino));
        Ok(self.fixup_stat(&mut st, ino, stt))
    }

    fn rename(
        &self,
        parent: Ino,
        name: &str,
        newparent: Ino,
        newname: &str,
        flags: RenameFlags,
    ) -> SysResult<()> {
        validate_name(name)?;
        validate_name(newname)?;
        let mut st = self.state.lock();
        let (src, src_st) = self.merge_child(&mut st, parent, name)?;
        let dst = match self.merge_child(&mut st, newparent, newname) {
            Ok(pair) => Some(pair),
            Err(Errno::ENOENT) => None,
            Err(e) => return Err(e),
        };
        if flags.noreplace && dst.is_some() {
            return Err(Errno::EEXIST);
        }
        if parent == newparent && name == newname {
            return Ok(());
        }
        let src_is_dir = src_st.ftype == FileType::Directory;

        if flags.exchange {
            let (dst_ovl, dst_st) = dst.ok_or(Errno::ENOENT)?;
            if src_is_dir && Self::is_ancestor(&st, src, newparent) {
                return Err(Errno::EINVAL);
            }
            if dst_st.ftype == FileType::Directory && Self::is_ancestor(&st, dst_ovl, parent) {
                return Err(Errno::EINVAL);
            }
            for (ovl, stt) in [(src, &src_st), (dst_ovl, &dst_st)] {
                if stt.ftype == FileType::Directory {
                    self.copy_up_tree(&mut st, ovl)?;
                } else {
                    self.copy_up(&mut st, ovl, false)?;
                }
            }
            let pu = self.ensure_upper_dir(&mut st, parent)?;
            let npu = self.ensure_upper_dir(&mut st, newparent)?;
            self.upper.rename(pu, name, npu, newname, flags)?;
            let dst_name = newname.to_string();
            if let Some(n) = st.nodes.get_mut(&src) {
                n.parent = newparent;
                n.name = dst_name;
            }
            if let Some(n) = st.nodes.get_mut(&dst_ovl) {
                n.parent = parent;
                n.name = name.to_string();
            }
            st.invalidate_entry(parent, name, false);
            st.invalidate_entry(newparent, newname, false);
            return Ok(());
        }

        // Cycle prevention: a directory cannot move under its own subtree.
        if src_is_dir && (src == newparent || Self::is_ancestor(&st, src, newparent)) {
            return Err(Errno::EINVAL);
        }

        let mut dst_had_lower_dir = false;
        if let Some((dst_ovl, dst_st)) = &dst {
            if *dst_ovl == src {
                // Hard links to the same inode: POSIX says remove the
                // source name and succeed.
                drop(st);
                return self.unlink(parent, name);
            }
            let dst_is_dir = dst_st.ftype == FileType::Directory;
            match (src_is_dir, dst_is_dir) {
                (false, true) => return Err(Errno::EISDIR),
                (true, false) => return Err(Errno::ENOTDIR),
                (true, true) => {
                    let dnode = Self::node(&st, *dst_ovl)?.clone();
                    if !self.merged_names(&mut st, *dst_ovl, &dnode)?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                    dst_had_lower_dir = !dnode.lowers.is_empty();
                    // Clear whiteout debris so the upper rename's emptiness
                    // check passes.
                    if let Some(du) = dnode.upper {
                        let leftovers: Vec<String> = self
                            .upper
                            .readdir(du)?
                            .into_iter()
                            .map(|e| e.name)
                            .collect();
                        for n in leftovers {
                            self.upper.unlink(du, &n)?;
                        }
                    }
                }
                (false, false) => {
                    dst_had_lower_dir = false;
                }
            }
        }

        // Materialize the source in the upper layer.
        if src_is_dir {
            self.copy_up_tree(&mut st, src)?;
        } else {
            self.copy_up(&mut st, src, false)?;
        }
        let pu = Self::node(&st, parent)?.upper.ok_or(Errno::EIO)?;
        let npu = self.ensure_upper_dir(&mut st, newparent)?;

        match &dst {
            Some((dst_ovl, _)) => {
                let dnode = Self::node(&st, *dst_ovl)?.clone();
                if dnode.upper.is_none() {
                    // Destination visible only in lower layers: nothing to
                    // replace in upper; the renamed entry will shadow it.
                    self.clear_whiteout(npu, newname)?;
                }
            }
            None => {
                self.clear_whiteout(npu, newname)?;
            }
        }
        if let Err(e) = self.upper.rename(pu, name, npu, newname, RenameFlags::NONE) {
            // Whiteout clearing may already have happened: drop both names
            // from the cache so lookups re-merge the real state.
            st.invalidate_entry(parent, name, false);
            st.invalidate_entry(newparent, newname, false);
            return Err(e);
        }

        // The vacated source name may still be visible from lower layers.
        if self.lower_visible(&Self::node(&st, parent)?.clone(), name) {
            self.make_whiteout(pu, name)?;
        }
        // A directory renamed over a merged lower directory must not absorb
        // its entries.
        if src_is_dir && dst_had_lower_dir {
            let su = Self::node(&st, src)?.upper.ok_or(Errno::EIO)?;
            self.upper
                .setxattr(su, OPAQUE_XATTR, b"y", XattrFlags::Any)?;
        }

        if let Some((dst_ovl, _)) = dst {
            self.drop_node_mappings(&mut st, dst_ovl);
        }
        if let Some(n) = st.nodes.get_mut(&src) {
            n.parent = newparent;
            n.name = newname.to_string();
            n.lowers.clear();
        }
        // The vacated source name now resolves to ENOENT (moved away, or
        // hidden by the whiteout just created); the destination maps to the
        // moved node.
        st.invalidate_entry(parent, name, true);
        st.dir_cache.remove(&newparent);
        st.remember_entry(newparent, newname, Some(src));
        Ok(())
    }

    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        let stt = self.layer_fs(k).getattr(i)?;
        let (layer, real_ino) = if flags.mode.writable()
            && matches!(k, LayerKey::Lower(_))
            && stt.ftype != FileType::Directory
        {
            let skip = flags.contains(OpenFlags::TRUNC) || stt.ftype != FileType::Regular;
            let u = self.copy_up(&mut st, ino, skip)?;
            (LayerKey::Upper, u)
        } else {
            (k, i)
        };
        let real_fh = self.layer_fs(layer).open(real_ino, flags)?;
        if self.track_access.load(Ordering::Relaxed) && flags.mode.readable() {
            let path = Self::path_of(&st, ino);
            st.accessed.insert(path);
        }
        let fh = Fh(st.next_fh);
        st.next_fh += 1;
        st.handles.insert(
            fh,
            OvlHandle {
                layer,
                real_ino,
                real_fh,
            },
        );
        Ok(fh)
    }

    fn release(&self, _ino: Ino, fh: Fh) -> SysResult<()> {
        let mut st = self.state.lock();
        let h = st.handles.remove(&fh).ok_or(Errno::EBADF)?;
        self.layer_fs(h.layer).release(h.real_ino, h.real_fh)
    }

    fn read(&self, _ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        self.layer_fs(layer).read(real_ino, real_fh, offset, buf)
    }

    fn write(&self, _ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize> {
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        if matches!(layer, LayerKey::Lower(_)) {
            // A lower handle is never writable (copy-up happens at open).
            return Err(Errno::EBADF);
        }
        self.layer_fs(layer).write(real_ino, real_fh, offset, data)
    }

    fn read_bytes(&self, _ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<bytes::Bytes> {
        // The splice path passes straight through to the layer that holds
        // the bytes (blob-backed layers answer with chunk slices, no copy).
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        self.layer_fs(layer)
            .read_bytes(real_ino, real_fh, offset, len)
    }

    fn write_bytes(&self, _ino: Ino, fh: Fh, offset: u64, data: bytes::Bytes) -> SysResult<usize> {
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        if matches!(layer, LayerKey::Lower(_)) {
            return Err(Errno::EBADF);
        }
        self.layer_fs(layer)
            .write_bytes(real_ino, real_fh, offset, data)
    }

    fn fsync(&self, _ino: Ino, fh: Fh, datasync: bool) -> SysResult<()> {
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        self.layer_fs(layer).fsync(real_ino, real_fh, datasync)
    }

    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        if self.layer_fs(k).getattr(i)?.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        let names = self.merged_names(&mut st, ino, &node)?;
        let mut out = Vec::with_capacity(names.len());
        for (name, _) in names {
            let (child_ino, child_st) = self.merge_child(&mut st, ino, &name)?;
            out.push(Dirent {
                ino: child_ino,
                name,
                ftype: child_st.ftype,
            });
        }
        Ok(out)
    }

    fn statfs(&self) -> SysResult<Statfs> {
        self.upper.statfs()
    }

    fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>> {
        if name == OPAQUE_XATTR {
            return Err(Errno::ENODATA);
        }
        let st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        self.layer_fs(k).getxattr(i, name)
    }

    fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()> {
        if name.starts_with("trusted.overlay.") {
            return Err(Errno::EPERM);
        }
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        let up = match node.upper {
            Some(u) => u,
            None => {
                if self.layer_fs(k).getattr(i)?.ftype == FileType::Directory {
                    self.ensure_upper_dir(&mut st, ino)?
                } else {
                    self.copy_up(&mut st, ino, false)?
                }
            }
        };
        self.upper.setxattr(up, name, value, flags)
    }

    fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>> {
        let st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        Ok(self
            .layer_fs(k)
            .listxattr(i)?
            .into_iter()
            .filter(|n| !n.starts_with("trusted.overlay."))
            .collect())
    }

    fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()> {
        if name.starts_with("trusted.overlay.") {
            return Err(Errno::ENODATA);
        }
        let mut st = self.state.lock();
        let node = Self::node(&st, ino)?.clone();
        let (k, i) = node.primary();
        let up = match node.upper {
            Some(u) => u,
            None => {
                if self.layer_fs(k).getattr(i)?.ftype == FileType::Directory {
                    self.ensure_upper_dir(&mut st, ino)?
                } else {
                    self.copy_up(&mut st, ino, false)?
                }
            }
        };
        self.upper.removexattr(up, name)
    }

    fn fallocate(
        &self,
        _ino: Ino,
        fh: Fh,
        offset: u64,
        len: u64,
        mode: FallocateMode,
    ) -> SysResult<()> {
        let st = self.state.lock();
        let h = st.handles.get(&fh).ok_or(Errno::EBADF)?;
        let (layer, real_ino, real_fh) = (h.layer, h.real_ino, h.real_fh);
        drop(st);
        if matches!(layer, LayerKey::Lower(_)) {
            return Err(Errno::EBADF);
        }
        self.layer_fs(layer)
            .fallocate(real_ino, real_fh, offset, len, mode)
    }
}
