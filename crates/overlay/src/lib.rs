//! Content-addressed storage and copy-on-write layering for container
//! root filesystems.
//!
//! The paper's workflow (§3.2.3) merges a slim application container with a
//! fat "tools" image; production engines do the same thing at the *storage*
//! level by stacking read-only image layers under one writable layer. This
//! crate provides that substrate for the simulation:
//!
//! * [`blob`] — a [`BlobStore`]: content-addressed, chunked, refcounted
//!   storage for file data. Identical chunks are stored once no matter how
//!   many layers, images, or containers reference them, and all-zero chunks
//!   are never materialized (a sparse 500 MB binary costs no memory).
//! * [`backend`] — [`BlobBackend`], a `cntr_fs::store::FileStore` whose
//!   file contents are chunk references into a shared [`BlobStore`];
//!   [`BlobFs`] (`NodeFs<BlobBackend>`) is a full POSIX filesystem whose
//!   data dedups against every other `BlobFs` on the same store.
//! * [`overlay`] — [`OverlayFs`]: a union filesystem over N read-only lower
//!   layers plus one writable upper, with POSIX-correct copy-up on
//!   write/setattr, whiteouts and opaque directories on unlink/rmdir
//!   (Linux overlayfs conventions: a 0/0 character device is a whiteout,
//!   `trusted.overlay.opaque` marks an opaque directory), and merged
//!   readdir. Because upper and lowers are blob-backed, copy-up of
//!   unmodified chunks degenerates to refcount bumps.
//!
//! `cntr-engine` materializes each image layer **once** as a shared
//! read-only [`BlobFs`] and gives every container a cheap [`OverlayFs`]
//! over those shared lowers, so N containers of one image cost
//! O(upper writes), not O(N × image size).

pub mod backend;
pub mod blob;
pub mod overlay;

pub use backend::{blobfs, blobfs_with_capacity, BlobBackend, BlobFs};
pub use blob::{BlobHandle, BlobId, BlobStore, BlobStoreStats, CHUNK_SIZE};
pub use overlay::{DiffEntry, DiffKind, OverlayFs};
