//! Behavioural tests of [`OverlayFs`]: copy-up, whiteouts, opaque
//! directories, readdir merging, and blob-store dedup across layers.

use cntr_fs::{Filesystem, FsContext, XattrFlags};
use cntr_overlay::{blobfs, BlobStore, DiffKind, OverlayFs};
use cntr_types::{
    DevId, Errno, FileType, Gid, Ino, Mode, OpenFlags, RenameFlags, SetAttr, SimClock, Uid,
};
use std::sync::Arc;

const CHUNK: usize = 4096;

struct Stack {
    store: Arc<BlobStore>,
    lower_base: Arc<dyn Filesystem>,
    overlay: Arc<OverlayFs>,
}

/// Builds a two-lower overlay:
///
/// * base layer (bottom): `/bin/sh` (2 chunks of 0xAA), `/etc/conf`
///   ("base-conf"), `/shared/keep`, `/shared/gone`
/// * app layer (top):     `/app/run`, `/etc/conf` ("app-conf" shadows base)
fn stack() -> Stack {
    let store = BlobStore::new();
    let clock = SimClock::new();
    let ctx = FsContext::root();

    let base = blobfs(DevId(10), clock.clone(), Arc::clone(&store));
    let bin = base.mkdir(Ino::ROOT, "bin", Mode::RWXR_XR_X, &ctx).unwrap();
    let sh = base
        .mknod(bin.ino, "sh", FileType::Regular, Mode::RWXR_XR_X, 0, &ctx)
        .unwrap();
    let fh = base.open(sh.ino, OpenFlags::WRONLY).unwrap();
    base.write(sh.ino, fh, 0, &[0xAA; 2 * CHUNK]).unwrap();
    base.release(sh.ino, fh).unwrap();
    base.setattr(sh.ino, &SetAttr::chmod(Mode::RWXR_XR_X), &ctx)
        .unwrap();
    let etc = base.mkdir(Ino::ROOT, "etc", Mode::RWXR_XR_X, &ctx).unwrap();
    let conf = base
        .mknod(etc.ino, "conf", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = base.open(conf.ino, OpenFlags::WRONLY).unwrap();
    base.write(conf.ino, fh, 0, b"base-conf").unwrap();
    base.release(conf.ino, fh).unwrap();
    let shared = base
        .mkdir(Ino::ROOT, "shared", Mode::RWXR_XR_X, &ctx)
        .unwrap();
    for name in ["keep", "gone"] {
        base.mknod(
            shared.ino,
            name,
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &ctx,
        )
        .unwrap();
    }

    let app = blobfs(DevId(11), clock.clone(), Arc::clone(&store));
    let appdir = app.mkdir(Ino::ROOT, "app", Mode::RWXR_XR_X, &ctx).unwrap();
    app.mknod(
        appdir.ino,
        "run",
        FileType::Regular,
        Mode::RWXR_XR_X,
        0,
        &ctx,
    )
    .unwrap();
    let etc = app.mkdir(Ino::ROOT, "etc", Mode::RWXR_XR_X, &ctx).unwrap();
    let conf = app
        .mknod(etc.ino, "conf", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
        .unwrap();
    let fh = app.open(conf.ino, OpenFlags::WRONLY).unwrap();
    app.write(conf.ino, fh, 0, b"app-conf").unwrap();
    app.release(conf.ino, fh).unwrap();

    let upper = blobfs(DevId(12), clock, Arc::clone(&store));
    // Topmost lower first: app shadows base.
    let overlay = OverlayFs::new(
        DevId(100),
        vec![
            app as Arc<dyn Filesystem>,
            Arc::clone(&base) as Arc<dyn Filesystem>,
        ],
        upper,
    );
    Stack {
        store,
        lower_base: base,
        overlay,
    }
}

fn resolve(fs: &dyn Filesystem, path: &str) -> Result<cntr_types::Stat, Errno> {
    let mut ino = Ino::ROOT;
    let mut st = fs.getattr(ino)?;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        st = fs.lookup(ino, comp)?;
        ino = st.ino;
    }
    Ok(st)
}

fn read_all(fs: &dyn Filesystem, path: &str) -> Vec<u8> {
    let st = resolve(fs, path).unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDONLY).unwrap();
    let mut buf = vec![0u8; st.size as usize];
    let n = fs.read(st.ino, fh, 0, &mut buf).unwrap();
    fs.release(st.ino, fh).unwrap();
    buf.truncate(n);
    buf
}

fn write_at(fs: &dyn Filesystem, path: &str, offset: u64, data: &[u8]) {
    let st = resolve(fs, path).unwrap();
    let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
    fs.write(st.ino, fh, offset, data).unwrap();
    fs.release(st.ino, fh).unwrap();
}

fn names(fs: &dyn Filesystem, path: &str) -> Vec<String> {
    let st = resolve(fs, path).unwrap();
    fs.readdir(st.ino)
        .unwrap()
        .into_iter()
        .map(|d| d.name)
        .collect()
}

#[test]
fn merged_view_shadows_and_unions() {
    let s = stack();
    // Shadowing: the app layer's /etc/conf wins.
    assert_eq!(read_all(s.overlay.as_ref(), "/etc/conf"), b"app-conf");
    // Union at the root: entries from both layers.
    assert_eq!(
        names(s.overlay.as_ref(), "/"),
        vec!["app", "bin", "etc", "shared"]
    );
    // Base-only content is visible.
    assert_eq!(
        read_all(s.overlay.as_ref(), "/bin/sh"),
        vec![0xAA; 2 * CHUNK]
    );
}

#[test]
fn inode_numbers_are_stable_across_lookups_and_copy_up() {
    let s = stack();
    let before = resolve(s.overlay.as_ref(), "/bin/sh").unwrap();
    let again = resolve(s.overlay.as_ref(), "/bin/sh").unwrap();
    assert_eq!(before.ino, again.ino);
    write_at(s.overlay.as_ref(), "/bin/sh", 0, b"patched");
    let after = resolve(s.overlay.as_ref(), "/bin/sh").unwrap();
    assert_eq!(before.ino, after.ino, "copy-up must not change st_ino");
    assert_eq!(before.dev, after.dev);
}

#[test]
fn copy_up_on_write_leaves_lower_untouched_and_dedups() {
    let s = stack();
    let physical_before = s.store.stats().physical_bytes;
    // Overwrite 7 bytes of the first chunk of the 2-chunk file.
    write_at(s.overlay.as_ref(), "/bin/sh", 0, b"patched");
    let mut want = vec![0xAA; 2 * CHUNK];
    want[..7].copy_from_slice(b"patched");
    assert_eq!(read_all(s.overlay.as_ref(), "/bin/sh"), want);
    // The lower layer still has the pristine file.
    assert_eq!(
        read_all(s.lower_base.as_ref(), "/bin/sh"),
        vec![0xAA; 2 * CHUNK]
    );
    // The unmodified second chunk deduped against the lower copy: only one
    // new chunk was stored.
    let physical_after = s.store.stats().physical_bytes;
    assert_eq!(
        physical_after - physical_before,
        CHUNK as u64,
        "copy-up of the unmodified chunk must be a refcount bump"
    );
}

#[test]
fn copy_up_preserves_ownership_mode_and_xattrs() {
    let s = stack();
    let ctx = FsContext::root();
    // Stamp distinctive metadata on the lower file via the lower fs.
    let lsh = resolve(s.lower_base.as_ref(), "/bin/sh").unwrap();
    s.lower_base
        .setattr(lsh.ino, &SetAttr::chown(Uid(1234), Gid(5678)), &ctx)
        .unwrap();
    s.lower_base
        .setattr(lsh.ino, &SetAttr::chmod(Mode::new(0o4755)), &ctx)
        .unwrap();
    s.lower_base
        .setxattr(lsh.ino, "user.origin", b"base", XattrFlags::Any)
        .unwrap();

    // Any root-driven write copies the file up...
    write_at(s.overlay.as_ref(), "/bin/sh", CHUNK as u64, b"x");
    let st = resolve(s.overlay.as_ref(), "/bin/sh").unwrap();
    // ...but the copy keeps the *original* owner, not the writer's.
    assert_eq!(st.uid, Uid(1234), "copy-up ownership stamping");
    assert_eq!(st.gid, Gid(5678));
    assert_eq!(st.mode.bits() & 0o777, 0o755);
    assert_eq!(
        s.overlay.getxattr(st.ino, "user.origin").unwrap(),
        b"base",
        "xattrs survive copy-up"
    );
}

#[test]
fn unlink_of_lower_file_creates_whiteout() {
    let s = stack();
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    s.overlay.unlink(shared.ino, "gone").unwrap();
    assert_eq!(
        resolve(s.overlay.as_ref(), "/shared/gone").unwrap_err(),
        Errno::ENOENT
    );
    assert_eq!(names(s.overlay.as_ref(), "/shared"), vec!["keep"]);
    // The lower layer still has the file; the upper has a 0/0 chardev.
    assert!(resolve(s.lower_base.as_ref(), "/shared/gone").is_ok());
    let wh = resolve(s.overlay.upper_layer().as_ref(), "/shared/gone").unwrap();
    assert_eq!(wh.ftype, FileType::CharDevice);
    assert_eq!(wh.rdev, 0);
    // The diff reports it as a whiteout.
    let diff = s.overlay.upper_diff();
    assert!(diff
        .iter()
        .any(|e| e.path == "/shared/gone" && e.kind == DiffKind::Whiteout));
}

#[test]
fn recreate_after_unlink_is_independent_of_lower() {
    let s = stack();
    let ctx = FsContext::root();
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    s.overlay.unlink(shared.ino, "gone").unwrap();
    let st = s
        .overlay
        .mknod(
            shared.ino,
            "gone",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &ctx,
        )
        .unwrap();
    assert_eq!(st.size, 0, "fresh file, not the lower one");
    assert_eq!(names(s.overlay.as_ref(), "/shared"), vec!["gone", "keep"]);
}

#[test]
fn rmdir_of_merged_dir_whiteouts_and_mkdir_is_opaque() {
    let s = stack();
    let root = Ino::ROOT;
    let ctx = FsContext::root();
    // /shared is non-empty.
    assert_eq!(
        s.overlay.rmdir(root, "shared").unwrap_err(),
        Errno::ENOTEMPTY
    );
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    s.overlay.unlink(shared.ino, "keep").unwrap();
    s.overlay.unlink(shared.ino, "gone").unwrap();
    s.overlay.rmdir(root, "shared").unwrap();
    assert_eq!(
        resolve(s.overlay.as_ref(), "/shared").unwrap_err(),
        Errno::ENOENT
    );

    // Recreating the directory must NOT resurrect lower children.
    s.overlay
        .mkdir(root, "shared", Mode::RWXR_XR_X, &ctx)
        .unwrap();
    assert_eq!(names(s.overlay.as_ref(), "/shared"), Vec::<String>::new());
    // The new upper dir carries the opaque marker (hidden from the overlay
    // view itself).
    let upper_shared = resolve(s.overlay.upper_layer().as_ref(), "/shared").unwrap();
    assert!(s
        .overlay
        .upper_layer()
        .getxattr(upper_shared.ino, "trusted.overlay.opaque")
        .is_ok());
    let ovl_shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    assert_eq!(
        s.overlay.listxattr(ovl_shared.ino).unwrap(),
        Vec::<String>::new(),
        "trusted.overlay.* is filtered from the overlay view"
    );
}

#[test]
fn rename_of_lower_file_whiteouts_source() {
    let s = stack();
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    s.overlay
        .rename(shared.ino, "keep", shared.ino, "kept", RenameFlags::NONE)
        .unwrap();
    assert_eq!(names(s.overlay.as_ref(), "/shared"), vec!["gone", "kept"]);
    assert!(resolve(s.lower_base.as_ref(), "/shared/keep").is_ok());
}

#[test]
fn rename_of_merged_directory_deep_copies() {
    let s = stack();
    s.overlay
        .rename(Ino::ROOT, "shared", Ino::ROOT, "moved", RenameFlags::NONE)
        .unwrap();
    assert_eq!(names(s.overlay.as_ref(), "/moved"), vec!["gone", "keep"]);
    assert_eq!(
        resolve(s.overlay.as_ref(), "/shared").unwrap_err(),
        Errno::ENOENT
    );
    assert_eq!(
        names(s.overlay.as_ref(), "/"),
        vec!["app", "bin", "etc", "moved"]
    );
    // The lower tree is untouched.
    assert!(resolve(s.lower_base.as_ref(), "/shared/keep").is_ok());
}

#[test]
fn truncate_of_lower_file_copies_up_without_data() {
    let s = stack();
    let ctx = FsContext::root();
    let physical_before = s.store.stats().physical_bytes;
    let st = resolve(s.overlay.as_ref(), "/bin/sh").unwrap();
    s.overlay
        .setattr(st.ino, &SetAttr::truncate(0), &ctx)
        .unwrap();
    assert_eq!(resolve(s.overlay.as_ref(), "/bin/sh").unwrap().size, 0);
    assert_eq!(
        s.store.stats().physical_bytes,
        physical_before,
        "truncate-to-zero copy-up must not copy data"
    );
    assert_eq!(
        read_all(s.lower_base.as_ref(), "/bin/sh"),
        vec![0xAA; 2 * CHUNK]
    );
}

#[test]
fn stale_read_through_preexisting_handle_is_the_linux_quirk() {
    let s = stack();
    let st = resolve(s.overlay.as_ref(), "/etc/conf").unwrap();
    let rfh = s.overlay.open(st.ino, OpenFlags::RDONLY).unwrap();
    write_at(s.overlay.as_ref(), "/etc/conf", 0, b"NEW!-conf");
    let mut buf = [0u8; 9];
    s.overlay.read(st.ino, rfh, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"app-conf\0", "pre-copy-up handle reads lower data");
    s.overlay.release(st.ino, rfh).unwrap();
    assert_eq!(read_all(s.overlay.as_ref(), "/etc/conf"), b"NEW!-conf");
}

#[test]
fn access_tracking_records_read_paths() {
    let s = stack();
    s.overlay.set_access_tracking(true);
    let _ = read_all(s.overlay.as_ref(), "/etc/conf");
    let _ = read_all(s.overlay.as_ref(), "/bin/sh");
    write_at(s.overlay.as_ref(), "/app/run", 0, b"!");
    s.overlay.set_access_tracking(false);
    let acc = s.overlay.accessed_paths();
    assert!(acc.contains("/etc/conf"));
    assert!(acc.contains("/bin/sh"));
    assert!(!acc.contains("/shared/keep"));
}

#[test]
fn upper_diff_reports_only_the_write_set() {
    let s = stack();
    write_at(s.overlay.as_ref(), "/etc/conf", 0, b"X");
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    s.overlay.unlink(shared.ino, "gone").unwrap();
    let diff = s.overlay.upper_diff();
    let paths: Vec<&str> = diff.iter().map(|e| e.path.as_str()).collect();
    assert!(paths.contains(&"/etc/conf"));
    assert!(paths.contains(&"/shared/gone"));
    // Untouched lower files never appear.
    assert!(!paths.contains(&"/bin/sh"));
    assert!(!paths.contains(&"/app/run"));
}

#[test]
fn link_copies_up_and_links_in_upper() {
    let s = stack();
    let st = resolve(s.overlay.as_ref(), "/shared/keep").unwrap();
    let etc = resolve(s.overlay.as_ref(), "/etc").unwrap();
    let linked = s.overlay.link(st.ino, etc.ino, "keep-link").unwrap();
    assert_eq!(linked.ino, st.ino, "hard link shares the overlay inode");
    assert_eq!(linked.nlink, 2);
    write_at(s.overlay.as_ref(), "/etc/keep-link", 0, b"via-link");
    assert_eq!(read_all(s.overlay.as_ref(), "/shared/keep"), b"via-link");
}

#[test]
fn exchange_swaps_upper_and_lower_entries() {
    let s = stack();
    let etc = resolve(s.overlay.as_ref(), "/etc").unwrap();
    let shared = resolve(s.overlay.as_ref(), "/shared").unwrap();
    write_at(s.overlay.as_ref(), "/shared/keep", 0, b"KEEP");
    s.overlay
        .rename(etc.ino, "conf", shared.ino, "keep", RenameFlags::EXCHANGE)
        .unwrap();
    assert_eq!(read_all(s.overlay.as_ref(), "/etc/conf"), b"KEEP");
    assert_eq!(read_all(s.overlay.as_ref(), "/shared/keep"), b"app-conf");
}

#[test]
fn statfs_and_fs_identity() {
    let s = stack();
    assert_eq!(s.overlay.fs_type(), "overlay");
    assert!(s.overlay.fs_options().contains("lowerdir=2x"));
    assert!(s.overlay.statfs().unwrap().blocks > 0);
}

// ---------------------------------------------------------------------
// Dentry + negative-lookup cache
// ---------------------------------------------------------------------

mod dcache {
    use super::*;
    use cntr_fs::{FallocateMode, Fh, FsFeatures};
    use cntr_types::{Dirent, RenameFlags, Statfs, SysResult};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A lower layer that counts how often the overlay consults it.
    struct CountingFs {
        inner: Arc<dyn Filesystem>,
        lookups: AtomicU64,
        readdirs: AtomicU64,
    }

    impl CountingFs {
        fn new(inner: Arc<dyn Filesystem>) -> Arc<CountingFs> {
            Arc::new(CountingFs {
                inner,
                lookups: AtomicU64::new(0),
                readdirs: AtomicU64::new(0),
            })
        }

        fn lookups(&self) -> u64 {
            self.lookups.load(Ordering::Relaxed)
        }

        fn readdirs(&self) -> u64 {
            self.readdirs.load(Ordering::Relaxed)
        }
    }

    impl Filesystem for CountingFs {
        fn fs_id(&self) -> DevId {
            self.inner.fs_id()
        }
        fn fs_type(&self) -> &'static str {
            self.inner.fs_type()
        }
        fn features(&self) -> FsFeatures {
            self.inner.features()
        }
        fn lookup(&self, parent: Ino, name: &str) -> SysResult<cntr_types::Stat> {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            self.inner.lookup(parent, name)
        }
        fn getattr(&self, ino: Ino) -> SysResult<cntr_types::Stat> {
            self.inner.getattr(ino)
        }
        fn setattr(
            &self,
            ino: Ino,
            attr: &SetAttr,
            ctx: &FsContext,
        ) -> SysResult<cntr_types::Stat> {
            self.inner.setattr(ino, attr, ctx)
        }
        fn mknod(
            &self,
            parent: Ino,
            name: &str,
            ftype: FileType,
            mode: Mode,
            rdev: u64,
            ctx: &FsContext,
        ) -> SysResult<cntr_types::Stat> {
            self.inner.mknod(parent, name, ftype, mode, rdev, ctx)
        }
        fn mkdir(
            &self,
            parent: Ino,
            name: &str,
            mode: Mode,
            ctx: &FsContext,
        ) -> SysResult<cntr_types::Stat> {
            self.inner.mkdir(parent, name, mode, ctx)
        }
        fn unlink(&self, parent: Ino, name: &str) -> SysResult<()> {
            self.inner.unlink(parent, name)
        }
        fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()> {
            self.inner.rmdir(parent, name)
        }
        fn symlink(
            &self,
            parent: Ino,
            name: &str,
            target: &str,
            ctx: &FsContext,
        ) -> SysResult<cntr_types::Stat> {
            self.inner.symlink(parent, name, target, ctx)
        }
        fn readlink(&self, ino: Ino) -> SysResult<String> {
            self.inner.readlink(ino)
        }
        fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<cntr_types::Stat> {
            self.inner.link(ino, newparent, newname)
        }
        fn rename(
            &self,
            parent: Ino,
            name: &str,
            newparent: Ino,
            newname: &str,
            flags: RenameFlags,
        ) -> SysResult<()> {
            self.inner.rename(parent, name, newparent, newname, flags)
        }
        fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
            self.inner.open(ino, flags)
        }
        fn release(&self, ino: Ino, fh: Fh) -> SysResult<()> {
            self.inner.release(ino, fh)
        }
        fn read(&self, ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
            self.inner.read(ino, fh, offset, buf)
        }
        fn write(&self, ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize> {
            self.inner.write(ino, fh, offset, data)
        }
        fn fsync(&self, ino: Ino, fh: Fh, datasync: bool) -> SysResult<()> {
            self.inner.fsync(ino, fh, datasync)
        }
        fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
            self.readdirs.fetch_add(1, Ordering::Relaxed);
            self.inner.readdir(ino)
        }
        fn statfs(&self) -> SysResult<Statfs> {
            self.inner.statfs()
        }
        fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>> {
            self.inner.getxattr(ino, name)
        }
        fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()> {
            self.inner.setxattr(ino, name, value, flags)
        }
        fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>> {
            self.inner.listxattr(ino)
        }
        fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()> {
            self.inner.removexattr(ino, name)
        }
        fn fallocate(
            &self,
            ino: Ino,
            fh: Fh,
            offset: u64,
            len: u64,
            mode: FallocateMode,
        ) -> SysResult<()> {
            self.inner.fallocate(ino, fh, offset, len, mode)
        }
    }

    /// Overlay whose single lower layer counts every consultation.
    fn counting_stack() -> (Arc<OverlayFs>, Arc<CountingFs>) {
        let store = BlobStore::new();
        let clock = SimClock::new();
        let ctx = FsContext::root();
        let base = blobfs(DevId(10), clock.clone(), Arc::clone(&store));
        let dir = base.mkdir(Ino::ROOT, "dir", Mode::RWXR_XR_X, &ctx).unwrap();
        for i in 0..4 {
            base.mknod(
                dir.ino,
                &format!("f{i}"),
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &ctx,
            )
            .unwrap();
        }
        let counting = CountingFs::new(base);
        let upper = blobfs(DevId(11), clock, store);
        let overlay = OverlayFs::new(
            DevId(12),
            vec![Arc::clone(&counting) as Arc<dyn Filesystem>],
            upper,
        );
        (overlay, counting)
    }

    #[test]
    fn hot_lookup_stops_consulting_lower_layers() {
        let (ovl, lower) = counting_stack();
        let first = resolve(ovl.as_ref(), "/dir/f0").unwrap();
        let cold = lower.lookups();
        assert!(cold > 0, "cold lookup must consult the lower layer");
        for _ in 0..10 {
            let again = resolve(ovl.as_ref(), "/dir/f0").unwrap();
            assert_eq!(again.ino, first.ino);
        }
        assert_eq!(
            lower.lookups(),
            cold,
            "warm lookups must be served from the dentry cache"
        );
    }

    #[test]
    fn negative_lookups_are_cached() {
        let (ovl, lower) = counting_stack();
        let dir = resolve(ovl.as_ref(), "/dir").unwrap();
        assert_eq!(
            ovl.lookup(dir.ino, "missing").map(|_| ()),
            Err(Errno::ENOENT)
        );
        let cold = lower.lookups();
        for _ in 0..10 {
            assert_eq!(
                ovl.lookup(dir.ino, "missing").map(|_| ()),
                Err(Errno::ENOENT)
            );
        }
        assert_eq!(
            lower.lookups(),
            cold,
            "repeated ENOENT lookups must hit the negative cache"
        );
        // Creating the name must overwrite the negative entry.
        let ctx = FsContext::root();
        ovl.mknod(
            dir.ino,
            "missing",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &ctx,
        )
        .unwrap();
        assert!(ovl.lookup(dir.ino, "missing").is_ok());
    }

    #[test]
    fn merged_readdir_is_cached_and_invalidated_on_create() {
        let (ovl, lower) = counting_stack();
        let dir = resolve(ovl.as_ref(), "/dir").unwrap();
        let n1 = names(ovl.as_ref(), "/dir").len();
        let cold = lower.readdirs();
        for _ in 0..5 {
            assert_eq!(names(ovl.as_ref(), "/dir").len(), n1);
        }
        assert_eq!(
            lower.readdirs(),
            cold,
            "warm merged readdir must not re-read the lower layer"
        );
        let ctx = FsContext::root();
        ovl.mknod(dir.ino, "new", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        assert_eq!(
            names(ovl.as_ref(), "/dir").len(),
            n1 + 1,
            "create refreshes"
        );
    }

    #[test]
    fn unlink_and_rename_invalidate_cached_entries() {
        let (ovl, _lower) = counting_stack();
        let dir = resolve(ovl.as_ref(), "/dir").unwrap();
        // Warm the cache, then unlink: the name must go negative.
        assert!(resolve(ovl.as_ref(), "/dir/f1").is_ok());
        ovl.unlink(dir.ino, "f1").unwrap();
        assert_eq!(
            resolve(ovl.as_ref(), "/dir/f1").map(|_| ()),
            Err(Errno::ENOENT)
        );
        // Rename: source goes negative, destination resolves to the node.
        let f2 = resolve(ovl.as_ref(), "/dir/f2").unwrap();
        ovl.rename(dir.ino, "f2", dir.ino, "renamed", RenameFlags::NONE)
            .unwrap();
        assert_eq!(
            resolve(ovl.as_ref(), "/dir/f2").map(|_| ()),
            Err(Errno::ENOENT)
        );
        assert_eq!(resolve(ovl.as_ref(), "/dir/renamed").unwrap().ino, f2.ino);
    }

    #[test]
    fn negative_cache_is_bounded() {
        let (ovl, _lower) = counting_stack();
        let dir = resolve(ovl.as_ref(), "/dir").unwrap();
        // Probe far more distinct missing names than the cache cap: memory
        // stays bounded (the cache self-clears on overflow) and correctness
        // is unaffected afterwards.
        for i in 0..70_000u32 {
            assert_eq!(
                ovl.lookup(dir.ino, &format!("nope-{i}")).map(|_| ()),
                Err(Errno::ENOENT)
            );
        }
        assert!(resolve(ovl.as_ref(), "/dir/f0").is_ok());
        assert_eq!(
            ovl.lookup(dir.ino, "nope-1").map(|_| ()),
            Err(Errno::ENOENT)
        );
    }
}
