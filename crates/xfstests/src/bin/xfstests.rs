//! Runs the xfstests generic-group reproduction and prints the paper-style
//! table (paper §5.1: 90 of 94 pass on CntrFS; the control run on native
//! tmpfs passes all 94).
//!
//! Usage: `cargo run -p cntr-xfstests --bin xfstests [-- native|cntrfs|both]`

use cntr_xfstests::harness::run_suite;
use cntr_xfstests::{all_tests, cntrfs_over_tmpfs, native_tmpfs};

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let cases = all_tests();

    if mode == "cntrfs" || mode == "both" {
        let env = cntrfs_over_tmpfs();
        let report = run_suite(&env, &cases);
        print!("{}", report.render(&cases));
        println!(
            "paper §5.1 reports: 90 of 94 (95.74%); this run: {} of {}\n",
            report.passed(),
            report.results.len()
        );
    }
    if mode == "native" || mode == "both" {
        let env = native_tmpfs();
        let report = run_suite(&env, &cases);
        print!("{}", report.render(&cases));
        println!(
            "control (native tmpfs): {} of {} — the four CntrFS failures are architectural, not harness artifacts",
            report.passed(),
            report.results.len()
        );
    }
}
