//! The 94 generic-group tests.
//!
//! Each test exercises one POSIX behaviour or a documented edge case, in the
//! spirit of the xfstests generic group: "tests suites to ensure correct
//! behavior of all filesystem related system calls and their edge cases"
//! (paper §5.1). The four numbered tests from the paper (#228, #375, #391,
//! #426) are implemented exactly as described and carry the expected-failure
//! annotation for CntrFS.

use crate::harness::{ensure, expect_errno, TestCase};
use cntr_fs::{FallocateMode, XattrFlags};
use cntr_kernel::vfs::Whence;
use cntr_types::{Errno, FileType, Mode, OpenFlags, RenameFlags, Timespec};

macro_rules! t {
    ($id:expr, $name:expr, $f:expr) => {
        TestCase {
            id: $id,
            name: $name,
            run: $f,
            expected_cntrfs_failure: None,
        }
    };
    ($id:expr, $name:expr, $f:expr, expected: $why:expr) => {
        TestCase {
            id: $id,
            name: $name,
            run: $f,
            expected_cntrfs_failure: Some($why),
        }
    };
}

/// Returns the full generic-group suite (94 tests).
pub fn all_tests() -> Vec<TestCase> {
    let mut v = vec![
        // --- basic file creation / io -----------------------------------
        t!(1, "create and read back", |e| {
            e.write_file("f", b"hello xfstests")?;
            ensure(e.read_file("f")? == b"hello xfstests", "content mismatch")
        }),
        t!(2, "empty file has size 0", |e| {
            e.write_file("f", b"")?;
            ensure(e.stat("f")?.size == 0, "size not 0")
        }),
        t!(3, "overwrite in middle", |e| {
            e.write_file("f", b"aaaaaaaaaa")?;
            let fd = e.open("f", OpenFlags::RDWR)?;
            e.pwrite(fd, 3, b"bbb")?;
            e.close(fd)?;
            ensure(e.read_file("f")? == b"aaabbbaaaa", "overwrite wrong")
        }),
        t!(4, "read past eof returns 0", |e| {
            e.write_file("f", b"xyz")?;
            let fd = e.open("f", OpenFlags::RDONLY)?;
            let mut buf = [0u8; 8];
            let n = e.pread(fd, 100, &mut buf)?;
            e.close(fd)?;
            ensure(n == 0, "read past EOF returned data")
        }),
        t!(5, "short read at eof", |e| {
            e.write_file("f", b"0123456789")?;
            let fd = e.open("f", OpenFlags::RDONLY)?;
            let mut buf = [0u8; 8];
            let n = e.pread(fd, 6, &mut buf)?;
            e.close(fd)?;
            ensure(n == 4 && &buf[..4] == b"6789", "short read wrong")
        }),
        t!(6, "o_excl fails on existing", |e| {
            e.write_file("f", b"x")?;
            e.open_expect_err("f", OpenFlags::create_new(), Errno::EEXIST)
        }),
        t!(7, "o_trunc empties file", |e| {
            e.write_file("f", b"full of data")?;
            let fd = e.open("f", OpenFlags::WRONLY.with(OpenFlags::TRUNC))?;
            e.close(fd)?;
            ensure(e.stat("f")?.size == 0, "O_TRUNC did not empty")
        }),
        t!(8, "o_append writes at eof", |e| {
            e.write_file("f", b"base")?;
            let fd = e.open("f", OpenFlags::append())?;
            e.pwrite(fd, 0, b"-tail")?;
            e.close(fd)?;
            ensure(e.read_file("f")? == b"base-tail", "append wrong")
        }),
        t!(9, "open missing without o_creat", |e| {
            e.open_expect_err("nope", OpenFlags::RDONLY, Errno::ENOENT)
        }),
        t!(10, "write through ro fd fails", |e| {
            e.write_file("f", b"x")?;
            let fd = e.open("f", OpenFlags::RDONLY)?;
            let r = e.pwrite(fd, 0, b"y");
            e.close(fd)?;
            ensure(r.is_err(), "write on O_RDONLY fd succeeded")
        }),
        t!(11, "read through wo fd fails", |e| {
            e.write_file("f", b"x")?;
            let fd = e.open("f", OpenFlags::WRONLY)?;
            let mut b = [0u8; 1];
            let r = e.pread(fd, 0, &mut b);
            e.close(fd)?;
            ensure(r.is_err(), "read on O_WRONLY fd succeeded")
        }),
        t!(12, "many small appends accumulate", |e| {
            let fd = e.open("log", OpenFlags::append())?;
            for _ in 0..100 {
                e.pwrite(fd, 0, b"line\n")?;
            }
            e.close(fd)?;
            ensure(e.stat("log")?.size == 500, "append accumulation wrong")
        }),
        t!(13, "lseek set/cur/end", |e| {
            e.write_file("f", b"0123456789")?;
            let fd = e.open("f", OpenFlags::RDONLY)?;
            ensure(e.lseek(fd, 4, Whence::Set)? == 4, "SEEK_SET")?;
            ensure(e.lseek(fd, 2, Whence::Cur)? == 6, "SEEK_CUR")?;
            ensure(e.lseek(fd, -1, Whence::End)? == 9, "SEEK_END")?;
            let r = e.lseek(fd, -100, Whence::Cur);
            e.close(fd)?;
            ensure(r.is_err(), "negative seek allowed")
        }),
        t!(14, "seek past eof then write leaves hole", |e| {
            e.write_file("f", b"x")?;
            let fd = e.open("f", OpenFlags::RDWR)?;
            e.pwrite(fd, 10_000, b"end")?;
            let mut buf = [1u8; 16];
            let n = e.pread(fd, 5_000, &mut buf)?;
            e.close(fd)?;
            ensure(n == 16 && buf.iter().all(|&b| b == 0), "hole not zero")?;
            ensure(e.stat("f")?.size == 10_003, "size after sparse write")
        }),
        t!(15, "fsync persists data", |e| {
            let fd = e.open("f", OpenFlags::create())?;
            e.pwrite(fd, 0, b"durable")?;
            e.fsync(fd)?;
            e.close(fd)?;
            ensure(e.read_file("f")? == b"durable", "fsync lost data")
        }),
        // --- truncate ----------------------------------------------------
        t!(16, "truncate shrinks", |e| {
            e.write_file("f", b"0123456789")?;
            e.truncate("f", 4)?;
            ensure(e.read_file("f")? == b"0123", "shrink wrong")
        }),
        t!(17, "truncate extends with zeros", |e| {
            e.write_file("f", b"ab")?;
            e.truncate("f", 6)?;
            ensure(e.read_file("f")? == b"ab\0\0\0\0", "extend wrong")
        }),
        t!(18, "truncate then rewrite reuses", |e| {
            e.write_file("f", &[7u8; 8192])?;
            e.truncate("f", 0)?;
            e.write_file("f2", b"other")?;
            let fd = e.open("f", OpenFlags::WRONLY)?;
            e.pwrite(fd, 0, b"new")?;
            e.close(fd)?;
            ensure(e.read_file("f")? == b"new", "rewrite after truncate")
        }),
        t!(19, "truncate directory fails", |e| {
            e.mkdir("d")?;
            match e.truncate("d", 0) {
                Err(msg) if msg.contains("EISDIR") => Ok(()),
                other => Err(format!("expected EISDIR, got {other:?}")),
            }
        }),
        t!(20, "zero-length truncate drops blocks", |e| {
            e.write_file("f", &[1u8; 64 * 1024])?;
            let fd = e.open("f", OpenFlags::RDWR)?;
            e.fsync(fd)?;
            e.close(fd)?;
            let before = e.stat("f")?.blocks;
            e.truncate("f", 0)?;
            let after = e.stat("f")?.blocks;
            ensure(before > 0 && after == 0, "blocks not released")
        }),
        // --- directories --------------------------------------------------
        t!(21, "mkdir rmdir roundtrip", |e| {
            e.mkdir("d")?;
            ensure(e.stat("d")?.is_dir(), "not a dir")?;
            e.rmdir("d")?;
            expect_errno(e.try_stat("d"), Errno::ENOENT, "stat removed dir")
        }),
        t!(22, "rmdir non-empty fails", |e| {
            e.mkdir("d")?;
            e.write_file("d/x", b"1")?;
            match e.rmdir("d") {
                Err(msg) if msg.contains("ENOTEMPTY") => Ok(()),
                other => Err(format!("expected ENOTEMPTY, got {other:?}")),
            }
        }),
        t!(23, "mkdir existing fails", |e| {
            e.mkdir("d")?;
            match e.mkdir("d") {
                Err(msg) if msg.contains("EEXIST") => Ok(()),
                other => Err(format!("expected EEXIST, got {other:?}")),
            }
        }),
        t!(24, "readdir lists sorted entries", |e| {
            for n in ["zz", "aa", "mm"] {
                e.write_file(n, b"")?;
            }
            ensure(
                e.readdir_names("")? == vec!["aa", "mm", "zz"],
                "listing wrong",
            )
        }),
        t!(25, "nested tree create and walk", |e| {
            e.mkdir("a")?;
            e.mkdir("a/b")?;
            e.mkdir("a/b/c")?;
            e.write_file("a/b/c/leaf", b"deep")?;
            ensure(e.read_file("a/b/c/leaf")? == b"deep", "deep read")?;
            ensure(e.stat("a/b/c/../c/leaf")?.size == 4, "dotdot walk")
        }),
        t!(26, "unlink in dir updates listing", |e| {
            e.mkdir("d")?;
            e.write_file("d/x", b"1")?;
            e.write_file("d/y", b"2")?;
            e.unlink("d/x")?;
            ensure(e.readdir_names("d")? == vec!["y"], "listing after unlink")
        }),
        t!(27, "dir nlink counts subdirs", |e| {
            e.mkdir("d")?;
            let base = e.stat("d")?.nlink;
            e.mkdir("d/s1")?;
            e.mkdir("d/s2")?;
            ensure(e.stat("d")?.nlink == base + 2, "nlink not incremented")?;
            e.rmdir("d/s1")?;
            ensure(e.stat("d")?.nlink == base + 1, "nlink not decremented")
        }),
        t!(28, "enotdir on file path component", |e| {
            e.write_file("f", b"")?;
            expect_errno(e.try_stat("f/below"), Errno::ENOTDIR, "walk through file")
        }),
        t!(29, "name too long", |e| {
            let long = "x".repeat(256);
            match e.mkdir(&long) {
                Err(msg) if msg.contains("ENAMETOOLONG") => Ok(()),
                other => Err(format!("expected ENAMETOOLONG, got {other:?}")),
            }
        }),
        t!(30, "255-char name works", |e| {
            let name = "y".repeat(255);
            e.write_file(&name, b"ok")?;
            ensure(e.stat(&name)?.size == 2, "max-length name")
        }),
        // --- hard links ----------------------------------------------------
        t!(31, "link shares inode", |e| {
            e.write_file("a", b"shared")?;
            e.link("a", "b")?;
            let (sa, sb) = (e.stat("a")?, e.stat("b")?);
            ensure(sa.ino == sb.ino && sb.nlink == 2, "link identity")
        }),
        t!(32, "write via one name visible via other", |e| {
            e.write_file("a", b"old")?;
            e.link("a", "b")?;
            let fd = e.open("b", OpenFlags::WRONLY)?;
            e.pwrite(fd, 0, b"new")?;
            e.close(fd)?;
            ensure(e.read_file("a")? == b"new", "alias content")
        }),
        t!(33, "unlink one name keeps other", |e| {
            e.write_file("a", b"keep")?;
            e.link("a", "b")?;
            e.unlink("a")?;
            ensure(e.read_file("b")? == b"keep", "survivor content")?;
            ensure(e.stat("b")?.nlink == 1, "nlink after unlink")
        }),
        t!(34, "link to dir rejected", |e| {
            e.mkdir("d")?;
            match e.link("d", "d2") {
                Err(msg) if msg.contains("EPERM") => Ok(()),
                other => Err(format!("expected EPERM, got {other:?}")),
            }
        }),
        t!(35, "link onto existing name fails", |e| {
            e.write_file("a", b"")?;
            e.write_file("b", b"")?;
            match e.link("a", "b") {
                Err(msg) if msg.contains("EEXIST") => Ok(()),
                other => Err(format!("expected EEXIST, got {other:?}")),
            }
        }),
        t!(36, "unlinked open file readable until close", |e| {
            e.write_file("f", b"orphan")?;
            let fd = e.open("f", OpenFlags::RDONLY)?;
            e.unlink("f")?;
            let mut buf = [0u8; 6];
            let n = e.pread(fd, 0, &mut buf)?;
            e.close(fd)?;
            ensure(n == 6 && &buf == b"orphan", "orphan read")?;
            expect_errno(e.try_stat("f"), Errno::ENOENT, "name gone")
        }),
        // --- symlinks ------------------------------------------------------
        t!(37, "symlink readlink", |e| {
            e.symlink("target/path", "ln")?;
            ensure(e.readlink("ln")? == "target/path", "readlink")
        }),
        t!(38, "stat follows symlink lstat does not", |e| {
            e.write_file("real", b"body")?;
            e.symlink("real", "ln")?;
            ensure(e.stat("ln")?.size == 4, "stat follows")?;
            ensure(e.lstat("ln")?.is_symlink(), "lstat type")
        }),
        t!(39, "dangling symlink enoent on follow", |e| {
            e.symlink("missing", "ln")?;
            expect_errno(e.try_stat("ln"), Errno::ENOENT, "dangling follow")?;
            ensure(e.lstat("ln")?.is_symlink(), "lstat still works")
        }),
        t!(40, "symlink loop eloop", |e| {
            e.symlink("l2", "l1")?;
            e.symlink("l1", "l2")?;
            expect_errno(e.try_stat("l1"), Errno::ELOOP, "loop")
        }),
        t!(41, "symlink chain resolves", |e| {
            e.write_file("real", b"x")?;
            e.symlink("real", "l1")?;
            e.symlink("l1", "l2")?;
            e.symlink("l2", "l3")?;
            ensure(e.stat("l3")?.size == 1, "chain")
        }),
        t!(42, "absolute symlink resolves from root", |e| {
            e.write_file("real", b"abs")?;
            let abs = e.p("real");
            e.symlink(&abs, "ln")?;
            ensure(e.stat("ln")?.size == 3, "absolute target")
        }),
        t!(43, "open nofollow on symlink fails", |e| {
            e.write_file("real", b"x")?;
            e.symlink("real", "ln")?;
            e.open_expect_err(
                "ln",
                OpenFlags::RDONLY.with(OpenFlags::NOFOLLOW),
                Errno::ELOOP,
            )
        }),
        t!(44, "unlink symlink keeps target", |e| {
            e.write_file("real", b"stay")?;
            e.symlink("real", "ln")?;
            e.unlink("ln")?;
            ensure(e.read_file("real")? == b"stay", "target survived")
        }),
        t!(45, "symlink through directory components", |e| {
            e.mkdir("d")?;
            e.write_file("d/f", b"via-dir")?;
            e.symlink("d", "dl")?;
            ensure(e.read_file("dl/f")? == b"via-dir", "dir symlink")
        }),
        // --- rename --------------------------------------------------------
        t!(46, "rename basic", |e| {
            e.write_file("a", b"move me")?;
            e.rename("a", "b")?;
            expect_errno(e.try_stat("a"), Errno::ENOENT, "source gone")?;
            ensure(e.read_file("b")? == b"move me", "dest content")
        }),
        t!(47, "rename replaces file", |e| {
            e.write_file("a", b"new")?;
            e.write_file("b", b"old-longer")?;
            e.rename("a", "b")?;
            ensure(e.read_file("b")? == b"new", "replacement")
        }),
        t!(48, "rename across directories", |e| {
            e.mkdir("d1")?;
            e.mkdir("d2")?;
            e.write_file("d1/f", b"travel")?;
            e.rename("d1/f", "d2/f")?;
            ensure(e.read_file("d2/f")? == b"travel", "moved content")?;
            ensure(e.readdir_names("d1")?.is_empty(), "source dir empty")
        }),
        t!(49, "rename dir over empty dir", |e| {
            e.mkdir("a")?;
            e.write_file("a/x", b"1")?;
            e.mkdir("b")?;
            e.rename("a", "b")?;
            ensure(e.read_file("b/x")? == b"1", "dir replaced")
        }),
        t!(50, "rename dir over non-empty fails", |e| {
            e.mkdir("a")?;
            e.mkdir("b")?;
            e.write_file("b/x", b"1")?;
            match e.rename("a", "b") {
                Err(msg) if msg.contains("ENOTEMPTY") => Ok(()),
                other => Err(format!("expected ENOTEMPTY, got {other:?}")),
            }
        }),
        t!(51, "rename file over dir fails", |e| {
            e.write_file("f", b"")?;
            e.mkdir("d")?;
            match e.rename("f", "d") {
                Err(msg) if msg.contains("EISDIR") => Ok(()),
                other => Err(format!("expected EISDIR, got {other:?}")),
            }
        }),
        t!(52, "rename dir over file fails", |e| {
            e.mkdir("d")?;
            e.write_file("f", b"")?;
            match e.rename("d", "f") {
                Err(msg) if msg.contains("ENOTDIR") => Ok(()),
                other => Err(format!("expected ENOTDIR, got {other:?}")),
            }
        }),
        t!(53, "rename dir into own subtree fails", |e| {
            e.mkdir("d")?;
            e.mkdir("d/sub")?;
            match e.rename("d", "d/sub/evil") {
                Err(msg) if msg.contains("EINVAL") => Ok(()),
                other => Err(format!("expected EINVAL, got {other:?}")),
            }
        }),
        t!(54, "rename noreplace", |e| {
            e.write_file("a", b"")?;
            e.write_file("b", b"")?;
            expect_errno(
                e.rename_flags("a", "b", RenameFlags::NOREPLACE),
                Errno::EEXIST,
                "RENAME_NOREPLACE",
            )
        }),
        t!(55, "rename exchange swaps", |e| {
            e.write_file("a", b"AAA")?;
            e.write_file("b", b"BB")?;
            e.rename_flags("a", "b", RenameFlags::EXCHANGE)
                .map_err(|err| format!("exchange: {err}"))?;
            ensure(e.read_file("a")? == b"BB", "a has b's content")?;
            ensure(e.read_file("b")? == b"AAA", "b has a's content")
        }),
        t!(56, "rename onto self is noop", |e| {
            e.write_file("a", b"still here")?;
            e.rename("a", "a")?;
            ensure(e.read_file("a")? == b"still here", "self-rename")
        }),
        t!(57, "rename hardlink alias removes source name", |e| {
            e.write_file("a", b"x")?;
            e.link("a", "b")?;
            e.rename("a", "b")?;
            ensure(e.read_file("b")? == b"x", "alias content")?;
            expect_errno(e.try_stat("a"), Errno::ENOENT, "source name gone")
        }),
        t!(58, "rename missing source", |e| {
            match e.rename("ghost", "b") {
                Err(msg) if msg.contains("ENOENT") => Ok(()),
                other => Err(format!("expected ENOENT, got {other:?}")),
            }
        }),
        // --- attributes / chmod / chown / times ----------------------------
        t!(59, "chmod changes permission bits", |e| {
            e.write_file("f", b"")?;
            e.chmod("f", Mode::new(0o640))?;
            ensure(e.stat("f")?.mode.bits() == 0o640, "mode bits")
        }),
        t!(60, "chown changes ownership", |e| {
            e.write_file("f", b"")?;
            e.chown("f", 1000, 2000)?;
            let st = e.stat("f")?;
            ensure(st.uid.raw() == 1000 && st.gid.raw() == 2000, "owner")
        }),
        t!(61, "chown by unprivileged user fails", |e| {
            e.write_file("f", b"")?;
            let r = e.with_user(1000, 1000, |pid| {
                e.kernel
                    .chown(pid, &e.p("f"), cntr_types::Uid(0), cntr_types::Gid(0))
            })?;
            expect_errno(r, Errno::EPERM, "unprivileged chown")
        }),
        t!(62, "suid sgid stripped on write", |e| {
            e.write_file("f", b"")?;
            e.chmod("f", Mode::new(0o6755))?;
            let fd = e.open("f", OpenFlags::WRONLY)?;
            e.pwrite(fd, 0, b"taint")?;
            e.close(fd)?;
            let m = e.stat("f")?.mode;
            ensure(!m.is_setuid() && !m.is_setgid(), "suid/sgid kept on write")
        }),
        t!(63, "mtime advances on write", |e| {
            e.write_file("f", b"a")?;
            let t0 = e.stat("f")?.mtime;
            e.kernel.clock().advance(1_000_000);
            let fd = e.open("f", OpenFlags::WRONLY)?;
            e.pwrite(fd, 0, b"b")?;
            e.close(fd)?;
            ensure(e.stat("f")?.mtime > t0, "mtime static")
        }),
        t!(64, "utimens sets explicit times", |e| {
            e.write_file("f", b"")?;
            e.utimens(
                "f",
                Some(Timespec::from_secs(100)),
                Some(Timespec::from_secs(200)),
            )?;
            let st = e.stat("f")?;
            ensure(
                st.atime == Timespec::from_secs(100) && st.mtime == Timespec::from_secs(200),
                "times not applied",
            )
        }),
        t!(65, "ctime advances on chmod", |e| {
            e.write_file("f", b"")?;
            let t0 = e.stat("f")?.ctime;
            e.kernel.clock().advance(1_000_000);
            e.chmod("f", Mode::new(0o600))?;
            ensure(e.stat("f")?.ctime > t0, "ctime static")
        }),
        t!(66, "permission denied for other user", |e| {
            e.write_file("secret", b"classified")?;
            e.chmod("secret", Mode::new(0o600))?;
            let r = e.with_user(1000, 1000, |pid| {
                e.kernel
                    .open(pid, &e.p("secret"), OpenFlags::RDONLY, Mode::RW_R__R__)
            })?;
            expect_errno(r, Errno::EACCES, "other-user open")
        }),
        t!(67, "group read allowed", |e| {
            e.write_file("shared", b"team data")?;
            e.chmod("shared", Mode::new(0o640))?;
            e.chown("shared", 0, 3000)?;
            let r = e.with_user(1000, 3000, |pid| {
                e.kernel
                    .open(pid, &e.p("shared"), OpenFlags::RDONLY, Mode::RW_R__R__)
            })?;
            ensure(r.is_ok(), "group member denied")
        }),
        t!(68, "setgid dir propagates group", |e| {
            e.mkdir("shared")?;
            e.chown("shared", 0, 4000)?;
            e.chmod("shared", Mode::new(0o2775))?;
            e.write_file("shared/f", b"")?;
            ensure(e.stat("shared/f")?.gid.raw() == 4000, "group inherited")
        }),
        // --- xattrs --------------------------------------------------------
        t!(69, "xattr set get roundtrip", |e| {
            e.write_file("f", b"")?;
            e.setxattr("f", "user.comment", b"hello", XattrFlags::Any)
                .map_err(|err| format!("setxattr: {err}"))?;
            let v = e
                .getxattr("f", "user.comment")
                .map_err(|err| format!("getxattr: {err}"))?;
            ensure(v == b"hello", "xattr value")
        }),
        t!(70, "xattr missing is enodata", |e| {
            e.write_file("f", b"")?;
            expect_errno(e.getxattr("f", "user.none"), Errno::ENODATA, "missing")
        }),
        t!(71, "xattr create/replace flags", |e| {
            e.write_file("f", b"")?;
            e.setxattr("f", "user.k", b"1", XattrFlags::Create)
                .map_err(|err| format!("create: {err}"))?;
            expect_errno(
                e.setxattr("f", "user.k", b"2", XattrFlags::Create),
                Errno::EEXIST,
                "XATTR_CREATE twice",
            )?;
            e.setxattr("f", "user.k", b"2", XattrFlags::Replace)
                .map_err(|err| format!("replace: {err}"))?;
            expect_errno(
                e.setxattr("f", "user.missing", b"", XattrFlags::Replace),
                Errno::ENODATA,
                "XATTR_REPLACE missing",
            )
        }),
        t!(72, "listxattr sorted", |e| {
            e.write_file("f", b"")?;
            e.setxattr("f", "user.b", b"", XattrFlags::Any).ok();
            e.setxattr("f", "user.a", b"", XattrFlags::Any).ok();
            e.setxattr("f", "security.capability", b"caps", XattrFlags::Any)
                .ok();
            let names = e.listxattr("f")?;
            ensure(
                names == vec!["security.capability", "user.a", "user.b"],
                "xattr list",
            )
        }),
        t!(73, "removexattr", |e| {
            e.write_file("f", b"")?;
            e.setxattr("f", "user.gone", b"x", XattrFlags::Any).ok();
            e.removexattr("f", "user.gone")
                .map_err(|err| format!("removexattr: {err}"))?;
            expect_errno(e.getxattr("f", "user.gone"), Errno::ENODATA, "removed")?;
            expect_errno(
                e.removexattr("f", "user.gone"),
                Errno::ENODATA,
                "double remove",
            )
        }),
        t!(74, "xattr bad namespace rejected", |e| {
            e.write_file("f", b"")?;
            expect_errno(
                e.setxattr("f", "invalid.ns", b"", XattrFlags::Any),
                Errno::EOPNOTSUPP,
                "bad namespace",
            )
        }),
        t!(75, "xattrs on directories", |e| {
            e.mkdir("d")?;
            e.setxattr("d", "user.dirattr", b"on-dir", XattrFlags::Any)
                .map_err(|err| format!("setxattr dir: {err}"))?;
            let v = e
                .getxattr("d", "user.dirattr")
                .map_err(|err| format!("getxattr dir: {err}"))?;
            ensure(v == b"on-dir", "dir xattr")
        }),
        // --- fallocate / holes ---------------------------------------------
        t!(76, "fallocate extends size", |e| {
            let fd = e.open("f", OpenFlags::create())?;
            e.fallocate(fd, 0, 8192, FallocateMode::Allocate)
                .map_err(|err| format!("fallocate: {err}"))?;
            e.close(fd)?;
            ensure(e.stat("f")?.size == 8192, "fallocate size")
        }),
        t!(77, "fallocate keep_size", |e| {
            e.write_file("f", b"tiny")?;
            let fd = e.open("f", OpenFlags::RDWR)?;
            e.fallocate(fd, 0, 8192, FallocateMode::KeepSize)
                .map_err(|err| format!("fallocate: {err}"))?;
            e.close(fd)?;
            ensure(e.stat("f")?.size == 4, "size changed")
        }),
        t!(78, "punch hole zeroes range", |e| {
            e.write_file("f", &[0xAB; 16 * 1024])?;
            let fd = e.open("f", OpenFlags::RDWR)?;
            e.fallocate(fd, 4096, 8192, FallocateMode::PunchHole)
                .map_err(|err| format!("punch: {err}"))?;
            let mut buf = [1u8; 8192];
            e.pread(fd, 4096, &mut buf)?;
            e.close(fd)?;
            ensure(buf.iter().all(|&b| b == 0), "hole not zeroed")?;
            ensure(e.stat("f")?.size == 16 * 1024, "size changed by punch")
        }),
        t!(79, "fallocate zero length is einval", |e| {
            let fd = e.open("f", OpenFlags::create())?;
            let r = e.fallocate(fd, 0, 0, FallocateMode::Allocate);
            e.close(fd)?;
            expect_errno(r, Errno::EINVAL, "zero-length fallocate")
        }),
        // --- statfs / special nodes -----------------------------------------
        t!(80, "statfs reports capacity", |e| {
            let sf = e
                .kernel
                .statfs(e.pid, &e.p(""))
                .map_err(|err| format!("statfs: {err}"))?;
            ensure(sf.blocks > 0 && sf.bsize > 0, "statfs empty")
        }),
        t!(81, "fifo node create and stat", |e| {
            e.mknod("pipe", FileType::Fifo, 0)?;
            ensure(e.lstat("pipe")?.ftype == FileType::Fifo, "fifo type")
        }),
        t!(82, "socket node create and stat", |e| {
            e.mknod("sock", FileType::Socket, 0)?;
            ensure(e.lstat("sock")?.ftype == FileType::Socket, "socket type")
        }),
        t!(83, "deep path resolution (64 levels)", |e| {
            let mut path = String::new();
            for i in 0..64 {
                path = if path.is_empty() {
                    format!("d{i}")
                } else {
                    format!("{path}/d{i}")
                };
                e.mkdir(&path)?;
            }
            e.write_file(&format!("{path}/leaf"), b"deep")?;
            ensure(e.stat(&format!("{path}/leaf"))?.size == 4, "deep leaf")
        }),
        t!(84, "many files in one directory", |e| {
            for i in 0..200 {
                e.write_file(&format!("f{i:03}"), &[i as u8])?;
            }
            ensure(e.readdir_names("")?.len() == 200, "entry count")?;
            ensure(e.read_file("f123")? == [123u8], "spot check")
        }),
        t!(85, "interleaved create unlink stress", |e| {
            for round in 0..20 {
                for i in 0..10 {
                    e.write_file(&format!("r{round}-f{i}"), b"x")?;
                }
                for i in 0..10 {
                    if i % 2 == 0 {
                        e.unlink(&format!("r{round}-f{i}"))?;
                    }
                }
            }
            ensure(e.readdir_names("")?.len() == 100, "survivor count")
        }),
        t!(86, "sparse file block accounting", |e| {
            let fd = e.open("sparse", OpenFlags::create())?;
            e.pwrite(fd, 10 << 20, b"end")?;
            e.close(fd)?;
            let st = e.stat("sparse")?;
            ensure(st.size > 10 << 20, "logical size")?;
            ensure(st.blocks < 1000, "sparse file over-allocated")
        }),
        t!(87, "rewrite same page many times", |e| {
            let fd = e.open("f", OpenFlags::create())?;
            for i in 0..100u32 {
                e.pwrite(fd, 0, &i.to_le_bytes())?;
            }
            e.fsync(fd)?;
            e.close(fd)?;
            let data = e.read_file("f")?;
            ensure(data == 99u32.to_le_bytes(), "last write wins")
        }),
        t!(88, "concurrent handles see shared state", |e| {
            e.write_file("f", b"before")?;
            let a = e.open("f", OpenFlags::RDWR)?;
            let b = e.open("f", OpenFlags::RDONLY)?;
            e.pwrite(a, 0, b"after!")?;
            let mut buf = [0u8; 6];
            e.pread(b, 0, &mut buf)?;
            e.close(a)?;
            e.close(b)?;
            ensure(&buf == b"after!", "second handle stale")
        }),
        t!(89, "o_sync write durable immediately", |e| {
            let before = e.kernel.dirty_bytes();
            let fd = e.open("f", OpenFlags::create().with(OpenFlags::SYNC))?;
            e.pwrite(fd, 0, b"synced")?;
            // Without an explicit fsync, O_SYNC already flushed: no *new*
            // dirty data may be pending.
            ensure(
                e.kernel.dirty_bytes() <= before,
                "dirty data grew after O_SYNC write",
            )?;
            e.close(fd)
        }),
        t!(90, "rename directory with open file inside", |e| {
            e.mkdir("d")?;
            e.write_file("d/f", b"inside")?;
            let fd = e.open("d/f", OpenFlags::RDONLY)?;
            e.rename("d", "d2")?;
            let mut buf = [0u8; 6];
            let n = e.pread(fd, 0, &mut buf)?;
            e.close(fd)?;
            ensure(n == 6 && &buf == b"inside", "open file after dir rename")?;
            ensure(e.read_file("d2/f")? == b"inside", "new path works")
        }),
        // --- the paper's four CntrFS failures ------------------------------
        t!(
            228,
            "RLIMIT_FSIZE enforced on write",
            |e| {
                e.set_fsize_limit(1024)?;
                let fd = e.open("capped", OpenFlags::create())?;
                let r1 = e.pwrite(fd, 0, &[0u8; 1024]);
                let r2 = e.pwrite(fd, 1024, &[0u8; 1]);
                let _ = e.close(fd);
                e.clear_fsize_limit();
                ensure(r1.is_ok(), "write within limit failed")?;
                match r2 {
                    Err(msg) if msg.contains("EFBIG") => Ok(()),
                    other => Err(format!("expected EFBIG beyond RLIMIT_FSIZE, got {other:?}")),
                }
            },
            expected: "file operations are replayed in the server process, whose RLIMIT_FSIZE is not the caller's (paper §5.1 #228)"
        ),
        t!(
            375,
            "setgid cleared on chmod by non-group-member",
            |e| {
                e.write_file("sg", b"")?;
                e.chown("sg", 1000, 2000)?;
                // Caller: uid 1000, group 3000 — NOT in the owning group.
                e.with_user(1000, 3000, |pid| {
                    e.kernel
                        .chmod(pid, &e.p("sg"), Mode::new(0o2755))
                        .map_err(|err| format!("chmod: {err}"))
                })??;
                let m = e.stat("sg")?.mode;
                ensure(
                    !m.is_setgid(),
                    "SETGID bit not cleared in chmod when owner is not in the owning group",
                )
            },
            expected: "POSIX ACL decisions are delegated to the backing filesystem under the server's identity (paper §5.1 #375)"
        ),
        t!(
            391,
            "O_DIRECT open supported",
            |e| {
                e.write_file("f", b"direct io")?;
                let fd = e
                    .open("f", OpenFlags::RDONLY.with(OpenFlags::DIRECT))
                    .map_err(|err| format!("O_DIRECT open failed: {err}"))?;
                let mut buf = [0u8; 9];
                let n = e.pread(fd, 0, &mut buf)?;
                e.close(fd)?;
                ensure(n == 9 && &buf == b"direct io", "O_DIRECT read")
            },
            expected: "direct I/O and mmap are mutually exclusive in FUSE; CNTR chose mmap to execute binaries (paper §5.1 #391)"
        ),
        t!(
            426,
            "name_to_handle_at export",
            |e| {
                e.write_file("f", b"export me")?;
                let handle = e
                    .name_to_handle("f")
                    .map_err(|err| format!("name_to_handle_at: {err}"))?;
                ensure(handle != 0, "null handle")
            },
            expected: "inodes are dynamically assigned and destroyed, so handles are not exportable (paper §5.1 #426)"
        ),
    ];
    v.sort_by_key(|c| c.id);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cntrfs_over_tmpfs, native_tmpfs, run_suite};

    #[test]
    fn suite_has_94_unique_tests() {
        let tests = all_tests();
        assert_eq!(tests.len(), 94, "the generic group has 94 tests");
        let mut ids: Vec<u32> = tests.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 94, "ids must be unique");
        let expected: Vec<u32> = tests
            .iter()
            .filter(|t| t.expected_cntrfs_failure.is_some())
            .map(|t| t.id)
            .collect();
        assert_eq!(expected, vec![228, 375, 391, 426]);
    }

    #[test]
    fn native_tmpfs_passes_all_94() {
        let env = native_tmpfs();
        let cases = all_tests();
        let report = run_suite(&env, &cases);
        let failed = report.failed_ids();
        assert!(
            failed.is_empty(),
            "native tmpfs must pass everything, failed: {failed:?}\n{}",
            report.render(&cases)
        );
        assert_eq!(report.passed(), 94);
    }

    #[test]
    fn cntrfs_reproduces_the_papers_90_of_94() {
        let env = cntrfs_over_tmpfs();
        let cases = all_tests();
        let report = run_suite(&env, &cases);
        assert_eq!(
            report.passed(),
            90,
            "paper: 90 of 94 pass\n{}",
            report.render(&cases)
        );
        assert_eq!(
            report.failed_ids(),
            vec![228, 375, 391, 426],
            "exactly the paper's four failures"
        );
    }
}
