//! Test environments and the suite runner.

use cntr_core::CntrfsServer;
use cntr_engine::runtime::boot_host;
use cntr_fs::XattrFlags;
use cntr_fuse::{FuseClientFs, FuseConfig, InlineTransport};
use cntr_kernel::vfs::Whence;
use cntr_kernel::{CacheMode, Kernel, MountFlags};
use cntr_types::{
    DevId, Errno, FileType, Gid, Mode, OpenFlags, Pid, RenameFlags, SimClock, Stat, Timespec, Uid,
};
use parking_lot::Mutex;

/// Result type used by every test body: `Err` carries a failure message.
pub type R = Result<(), String>;

/// One suite test.
pub struct TestCase {
    /// xfstests-style id within the generic group.
    pub id: u32,
    /// Short name.
    pub name: &'static str,
    /// The test body.
    pub run: fn(&TestEnv) -> R,
    /// For the paper's four known CntrFS failures: the documented reason.
    pub expected_cntrfs_failure: Option<&'static str>,
}

/// Outcome of one test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The test passed.
    Pass,
    /// The test failed with a message.
    Fail(String),
}

/// Results of a whole suite run.
pub struct SuiteReport {
    /// Filesystem type the suite ran against.
    pub fs_type: String,
    /// `(id, name, outcome)` per test, in execution order.
    pub results: Vec<(u32, &'static str, Outcome)>,
}

impl SuiteReport {
    /// Number of passing tests.
    pub fn passed(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, _, o)| *o == Outcome::Pass)
            .count()
    }

    /// Ids of failing tests, ascending.
    pub fn failed_ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .results
            .iter()
            .filter(|(_, _, o)| matches!(o, Outcome::Fail(_)))
            .map(|(id, _, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Renders the paper-style summary table.
    pub fn render(&self, cases: &[TestCase]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "xfstests (generic group) against {}\n{}\n",
            self.fs_type,
            "-".repeat(64)
        ));
        for (id, name, outcome) in &self.results {
            let case = cases.iter().find(|c| c.id == *id);
            match outcome {
                Outcome::Pass => out.push_str(&format!("generic/{id:03} {name:<40} [ok]\n")),
                Outcome::Fail(msg) => {
                    let expected = case
                        .and_then(|c| c.expected_cntrfs_failure)
                        .map(|r| format!(" (expected: {r})"))
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "generic/{id:03} {name:<40} [FAIL]{expected}\n    {msg}\n"
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{}\npassed {} of {} ({:.2}%)\n",
            "-".repeat(64),
            self.passed(),
            self.results.len(),
            100.0 * self.passed() as f64 / self.results.len().max(1) as f64
        ));
        out
    }
}

/// The environment tests run in: a kernel, a test process, and a mounted
/// filesystem under test at `mnt`.
pub struct TestEnv {
    /// The machine.
    pub kernel: Kernel,
    /// The process running the tests (root).
    pub pid: Pid,
    /// Mountpoint of the filesystem under test.
    pub mnt: String,
    /// Current per-test directory (managed by the runner).
    cur: Mutex<String>,
    /// Filesystem type under test.
    pub fs_type: String,
}

/// Builds the paper's environment: CntrFS mounted over tmpfs.
///
/// The backing tmpfs is the host root filesystem (a `MemFs`); the CntrFS
/// server resolves paths there, and the client is mounted at `/mnt/cntrfs`
/// with CNTR's optimized FUSE configuration.
pub fn cntrfs_over_tmpfs() -> TestEnv {
    let k = boot_host(SimClock::new());
    let pid = k.fork(Pid::INIT).expect("fork test proc");
    k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir /mnt");
    k.mkdir(pid, "/mnt/cntrfs", Mode::RWXR_XR_X)
        .expect("mkdir mnt");
    let server_pid = k.fork(Pid::INIT).expect("fork server");
    let server = CntrfsServer::new(k.clone(), server_pid);
    let transport = InlineTransport::new(server);
    let client = FuseClientFs::mount(
        DevId(0xCFFF),
        k.clock().clone(),
        k.cost(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("mount cntrfs");
    let flags = client.effective_flags();
    let cache = CacheMode {
        writeback: flags.writeback_cache,
        keep_cache: flags.keep_cache,
        synthetic: false,
    };
    k.mount_fs(pid, "/mnt/cntrfs", client, cache, MountFlags::default())
        .expect("mount");
    // Tests operate in a scratch area that maps to host /xfstests.
    k.mkdir(pid, "/mnt/cntrfs/xfstests", Mode::RWXR_XR_X)
        .expect("scratch dir");
    TestEnv {
        kernel: k,
        pid,
        mnt: "/mnt/cntrfs/xfstests".to_string(),
        cur: Mutex::new(String::new()),
        fs_type: "cntrfs (over tmpfs)".to_string(),
    }
}

/// Builds a native-OverlayFs environment: two blob-backed read-only lowers
/// (one with pre-existing content so merge/copy-up paths are live) under a
/// blob-backed upper, mounted at `/mnt/overlay`.
pub fn native_overlayfs() -> TestEnv {
    let k = boot_host(SimClock::new());
    let pid = k.fork(Pid::INIT).expect("fork test proc");
    k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
    k.mkdir(pid, "/mnt/overlay", Mode::RWXR_XR_X)
        .expect("mkdir");
    let overlay = build_overlay(k.clock().clone(), 0xA000);
    k.mount_fs(
        pid,
        "/mnt/overlay",
        overlay,
        CacheMode::native(),
        MountFlags::default(),
    )
    .expect("mount");
    k.mkdir(pid, "/mnt/overlay/xfstests", Mode::RWXR_XR_X)
        .expect("scratch dir");
    TestEnv {
        kernel: k,
        pid,
        mnt: "/mnt/overlay/xfstests".to_string(),
        cur: Mutex::new(String::new()),
        fs_type: "overlay (native)".to_string(),
    }
}

/// Builds the paper's environment over the new storage backend: CntrFS
/// mounted on top of an **OverlayFs** (instead of tmpfs). The 90/94 split
/// must be identical — the four failures are CntrFS architectural limits,
/// not properties of the backing filesystem.
pub fn cntrfs_over_overlayfs() -> TestEnv {
    let k = boot_host(SimClock::new());
    let pid = k.fork(Pid::INIT).expect("fork test proc");
    // The backing overlay replaces tmpfs under the server's /xfstests.
    k.mkdir(Pid::INIT, "/xfstests", Mode::RWXR_XR_X)
        .expect("backing dir");
    let overlay = build_overlay(k.clock().clone(), 0xB000);
    k.mount_fs(
        Pid::INIT,
        "/xfstests",
        overlay,
        CacheMode::native(),
        MountFlags::default(),
    )
    .expect("mount backing overlay");

    k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir /mnt");
    k.mkdir(pid, "/mnt/cntrfs", Mode::RWXR_XR_X)
        .expect("mkdir mnt");
    let server_pid = k.fork(Pid::INIT).expect("fork server");
    let server = CntrfsServer::new(k.clone(), server_pid);
    let transport = InlineTransport::new(server);
    let client = FuseClientFs::mount(
        DevId(0xCFFE),
        k.clock().clone(),
        k.cost(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("mount cntrfs");
    let flags = client.effective_flags();
    let cache = CacheMode {
        writeback: flags.writeback_cache,
        keep_cache: flags.keep_cache,
        synthetic: false,
    };
    k.mount_fs(pid, "/mnt/cntrfs", client, cache, MountFlags::default())
        .expect("mount");
    TestEnv {
        kernel: k,
        pid,
        mnt: "/mnt/cntrfs/xfstests".to_string(),
        cur: Mutex::new(String::new()),
        fs_type: "cntrfs (over overlayfs)".to_string(),
    }
}

/// Assembles the overlay-under-test: lower0 carries preseeded files (so
/// lookups traverse the merge path), lower1 is an empty base, the upper is
/// writable; all three share one blob store.
fn build_overlay(clock: SimClock, dev_base: u64) -> std::sync::Arc<cntr_overlay::OverlayFs> {
    use cntr_fs::Filesystem;
    let store = cntr_overlay::BlobStore::new();
    let ctx = cntr_fs::FsContext::root();
    let seeded = cntr_overlay::blobfs(DevId(dev_base + 1), clock.clone(), store.clone());
    let dir = seeded
        .mkdir(cntr_types::Ino::ROOT, "preexisting", Mode::RWXR_XR_X, &ctx)
        .expect("seed dir");
    let f = seeded
        .mknod(
            dir.ino,
            "lower-file",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &ctx,
        )
        .expect("seed file");
    let fh = seeded
        .open(f.ino, cntr_types::OpenFlags::WRONLY)
        .expect("open");
    seeded
        .write(f.ino, fh, 0, b"from the lower layer")
        .expect("write");
    seeded.release(f.ino, fh).expect("release");
    let base = cntr_overlay::blobfs(DevId(dev_base + 2), clock.clone(), store.clone());
    let upper = cntr_overlay::blobfs(DevId(dev_base + 3), clock, store);
    cntr_overlay::OverlayFs::new(DevId(dev_base), vec![seeded, base], upper)
}

/// Builds a native-tmpfs environment (control: all 94 tests pass).
pub fn native_tmpfs() -> TestEnv {
    let k = boot_host(SimClock::new());
    let pid = k.fork(Pid::INIT).expect("fork test proc");
    k.mkdir(pid, "/mnt", Mode::RWXR_XR_X).expect("mkdir");
    k.mkdir(pid, "/mnt/tmpfs", Mode::RWXR_XR_X).expect("mkdir");
    let fs = cntr_fs::memfs::memfs(DevId(0xEEEE), k.clock().clone());
    k.mount_fs(
        pid,
        "/mnt/tmpfs",
        fs,
        CacheMode::native(),
        MountFlags::default(),
    )
    .expect("mount");
    TestEnv {
        kernel: k,
        pid,
        mnt: "/mnt/tmpfs".to_string(),
        cur: Mutex::new(String::new()),
        fs_type: "tmpfs (native)".to_string(),
    }
}

fn fmt_err(op: &str, e: Errno) -> String {
    format!("{op}: {e}")
}

impl TestEnv {
    /// Enters a fresh scratch directory for test `id`.
    pub fn enter(&self, id: u32) -> R {
        let dir = format!("{}/t{id:03}", self.mnt);
        self.kernel
            .mkdir(self.pid, &dir, Mode::RWXR_XR_X)
            .map_err(|e| fmt_err("mkdir scratch", e))?;
        *self.cur.lock() = dir;
        Ok(())
    }

    /// Absolute path of `rel` within the current scratch directory.
    pub fn p(&self, rel: &str) -> String {
        if rel.is_empty() {
            self.cur.lock().clone()
        } else {
            format!("{}/{rel}", self.cur.lock())
        }
    }

    /// Creates `rel` with `data`.
    pub fn write_file(&self, rel: &str, data: &[u8]) -> R {
        let fd = self.open(rel, OpenFlags::create())?;
        let mut off = 0;
        while off < data.len() {
            off += self
                .kernel
                .write_fd(self.pid, fd, &data[off..])
                .map_err(|e| fmt_err("write", e))?;
        }
        self.close(fd)
    }

    /// Reads the whole of `rel`.
    pub fn read_file(&self, rel: &str) -> Result<Vec<u8>, String> {
        let fd = self.open(rel, OpenFlags::RDONLY)?;
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = self
                .kernel
                .read_fd(self.pid, fd, &mut buf)
                .map_err(|e| fmt_err("read", e))?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        self.close(fd)?;
        Ok(out)
    }

    /// `open(2)`.
    pub fn open(&self, rel: &str, flags: OpenFlags) -> Result<u32, String> {
        self.kernel
            .open(self.pid, &self.p(rel), flags, Mode::RW_R__R__)
            .map_err(|e| fmt_err(&format!("open {rel}"), e))
    }

    /// `open(2)` expecting a specific errno.
    pub fn open_expect_err(&self, rel: &str, flags: OpenFlags, want: Errno) -> R {
        match self
            .kernel
            .open(self.pid, &self.p(rel), flags, Mode::RW_R__R__)
        {
            Err(e) if e == want => Ok(()),
            Err(e) => Err(format!("open {rel}: expected {want}, got {e}")),
            Ok(_) => Err(format!("open {rel}: expected {want}, succeeded")),
        }
    }

    /// `close(2)`.
    pub fn close(&self, fd: u32) -> R {
        self.kernel
            .close(self.pid, fd)
            .map_err(|e| fmt_err("close", e))
    }

    /// Positional write.
    pub fn pwrite(&self, fd: u32, off: u64, data: &[u8]) -> Result<usize, String> {
        self.kernel
            .pwrite(self.pid, fd, off, data)
            .map_err(|e| fmt_err("pwrite", e))
    }

    /// Positional read.
    pub fn pread(&self, fd: u32, off: u64, buf: &mut [u8]) -> Result<usize, String> {
        self.kernel
            .pread(self.pid, fd, off, buf)
            .map_err(|e| fmt_err("pread", e))
    }

    /// `lseek(2)`.
    pub fn lseek(&self, fd: u32, off: i64, whence: Whence) -> Result<u64, String> {
        self.kernel
            .lseek(self.pid, fd, off, whence)
            .map_err(|e| fmt_err("lseek", e))
    }

    /// `mkdir(2)`.
    pub fn mkdir(&self, rel: &str) -> R {
        self.kernel
            .mkdir(self.pid, &self.p(rel), Mode::RWXR_XR_X)
            .map_err(|e| fmt_err(&format!("mkdir {rel}"), e))
    }

    /// `mknod(2)`.
    pub fn mknod(&self, rel: &str, ftype: FileType, rdev: u64) -> R {
        self.kernel
            .mknod(self.pid, &self.p(rel), ftype, Mode::RW_R__R__, rdev)
            .map_err(|e| fmt_err(&format!("mknod {rel}"), e))
    }

    /// `rmdir(2)`.
    pub fn rmdir(&self, rel: &str) -> R {
        self.kernel
            .rmdir(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("rmdir {rel}"), e))
    }

    /// `unlink(2)`.
    pub fn unlink(&self, rel: &str) -> R {
        self.kernel
            .unlink(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("unlink {rel}"), e))
    }

    /// `rename(2)`.
    pub fn rename(&self, from: &str, to: &str) -> R {
        self.kernel
            .rename(self.pid, &self.p(from), &self.p(to), RenameFlags::NONE)
            .map_err(|e| fmt_err(&format!("rename {from}->{to}"), e))
    }

    /// `renameat2(2)` with flags.
    pub fn rename_flags(&self, from: &str, to: &str, flags: RenameFlags) -> Result<(), Errno> {
        self.kernel
            .rename(self.pid, &self.p(from), &self.p(to), flags)
    }

    /// `link(2)`.
    pub fn link(&self, from: &str, to: &str) -> R {
        self.kernel
            .link(self.pid, &self.p(from), &self.p(to))
            .map_err(|e| fmt_err(&format!("link {from}->{to}"), e))
    }

    /// `symlink(2)`.
    pub fn symlink(&self, target: &str, at: &str) -> R {
        self.kernel
            .symlink(self.pid, target, &self.p(at))
            .map_err(|e| fmt_err(&format!("symlink {at}"), e))
    }

    /// `readlink(2)`.
    pub fn readlink(&self, rel: &str) -> Result<String, String> {
        self.kernel
            .readlink(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("readlink {rel}"), e))
    }

    /// `stat(2)`.
    pub fn stat(&self, rel: &str) -> Result<Stat, String> {
        self.kernel
            .stat(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("stat {rel}"), e))
    }

    /// `lstat(2)`.
    pub fn lstat(&self, rel: &str) -> Result<Stat, String> {
        self.kernel
            .lstat(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("lstat {rel}"), e))
    }

    /// Raw stat result (to assert errnos).
    pub fn try_stat(&self, rel: &str) -> Result<Stat, Errno> {
        self.kernel.stat(self.pid, &self.p(rel))
    }

    /// Sorted directory entry names, excluding `.`/`..`.
    pub fn readdir_names(&self, rel: &str) -> Result<Vec<String>, String> {
        let mut names: Vec<String> = self
            .kernel
            .readdir(self.pid, &self.p(rel))
            .map_err(|e| fmt_err(&format!("readdir {rel}"), e))?
            .into_iter()
            .map(|d| d.name)
            .filter(|n| n != "." && n != "..")
            .collect();
        names.sort();
        Ok(names)
    }

    /// `chmod(2)`.
    pub fn chmod(&self, rel: &str, mode: Mode) -> R {
        self.kernel
            .chmod(self.pid, &self.p(rel), mode)
            .map_err(|e| fmt_err(&format!("chmod {rel}"), e))
    }

    /// `chown(2)`.
    pub fn chown(&self, rel: &str, uid: u32, gid: u32) -> R {
        self.kernel
            .chown(self.pid, &self.p(rel), Uid(uid), Gid(gid))
            .map_err(|e| fmt_err(&format!("chown {rel}"), e))
    }

    /// `truncate(2)`.
    pub fn truncate(&self, rel: &str, size: u64) -> R {
        self.kernel
            .truncate(self.pid, &self.p(rel), size)
            .map_err(|e| fmt_err(&format!("truncate {rel}"), e))
    }

    /// `utimensat(2)`.
    pub fn utimens(&self, rel: &str, atime: Option<Timespec>, mtime: Option<Timespec>) -> R {
        self.kernel
            .utimens(self.pid, &self.p(rel), atime, mtime)
            .map_err(|e| fmt_err(&format!("utimens {rel}"), e))
    }

    /// `fsync(2)`.
    pub fn fsync(&self, fd: u32) -> R {
        self.kernel
            .fsync(self.pid, fd, false)
            .map_err(|e| fmt_err("fsync", e))
    }

    /// `setxattr(2)`.
    pub fn setxattr(
        &self,
        rel: &str,
        name: &str,
        value: &[u8],
        flags: XattrFlags,
    ) -> Result<(), Errno> {
        self.kernel
            .setxattr(self.pid, &self.p(rel), name, value, flags)
    }

    /// `getxattr(2)`.
    pub fn getxattr(&self, rel: &str, name: &str) -> Result<Vec<u8>, Errno> {
        self.kernel.getxattr(self.pid, &self.p(rel), name)
    }

    /// `listxattr(2)`.
    pub fn listxattr(&self, rel: &str) -> Result<Vec<String>, String> {
        self.kernel
            .listxattr(self.pid, &self.p(rel))
            .map_err(|e| fmt_err("listxattr", e))
    }

    /// `removexattr(2)`.
    pub fn removexattr(&self, rel: &str, name: &str) -> Result<(), Errno> {
        self.kernel.removexattr(self.pid, &self.p(rel), name)
    }

    /// `fallocate(2)`.
    pub fn fallocate(
        &self,
        fd: u32,
        offset: u64,
        len: u64,
        mode: cntr_fs::FallocateMode,
    ) -> Result<(), Errno> {
        self.kernel.fallocate(self.pid, fd, offset, len, mode)
    }

    /// `name_to_handle_at(2)`.
    pub fn name_to_handle(&self, rel: &str) -> Result<u64, Errno> {
        self.kernel.name_to_handle(self.pid, &self.p(rel))
    }

    /// Runs `f` as an unprivileged user process (fresh fork, no caps).
    pub fn with_user<T>(&self, uid: u32, gid: u32, f: impl FnOnce(Pid) -> T) -> Result<T, String> {
        let child = self.kernel.fork(self.pid).map_err(|e| fmt_err("fork", e))?;
        let mut creds = cntr_kernel::cred::Credentials::host_root();
        creds.uid = Uid(uid);
        creds.gid = Gid(gid);
        creds.caps = cntr_types::CapSet::EMPTY;
        creds.bounding = cntr_types::CapSet::EMPTY;
        self.kernel
            .set_creds(child, creds)
            .map_err(|e| fmt_err("set_creds", e))?;
        let out = f(child);
        let _ = self.kernel.exit(child);
        let _ = self.kernel.reap(child);
        Ok(out)
    }

    /// Sets `RLIMIT_FSIZE` on the test process.
    pub fn set_fsize_limit(&self, soft: u64) -> R {
        let mut limits = self
            .kernel
            .rlimits(self.pid)
            .map_err(|e| fmt_err("getrlimit", e))?;
        limits
            .set(
                cntr_types::RlimitKind::Fsize,
                cntr_types::Rlimit { soft, hard: soft },
            )
            .map_err(|e| fmt_err("setrlimit", e))?;
        self.kernel
            .set_rlimits(self.pid, limits)
            .map_err(|e| fmt_err("set_rlimits", e))
    }

    /// Clears `RLIMIT_FSIZE` back to unlimited (best effort: raising the
    /// hard limit needs a privileged path, so we replace the whole set).
    pub fn clear_fsize_limit(&self) {
        let _ = self
            .kernel
            .set_rlimits(self.pid, cntr_types::RlimitSet::default());
    }
}

/// Asserts a condition inside a test body.
pub fn ensure(cond: bool, msg: &str) -> R {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

/// Asserts a result failed with `want`.
pub fn expect_errno<T: std::fmt::Debug>(r: Result<T, Errno>, want: Errno, what: &str) -> R {
    match r {
        Err(e) if e == want => Ok(()),
        Err(e) => Err(format!("{what}: expected {want}, got {e}")),
        Ok(v) => Err(format!("{what}: expected {want}, got Ok({v:?})")),
    }
}

/// Runs every test against `env`.
pub fn run_suite(env: &TestEnv, cases: &[TestCase]) -> SuiteReport {
    let mut results = Vec::with_capacity(cases.len());
    for case in cases {
        let outcome = match env.enter(case.id).and_then(|()| (case.run)(env)) {
            Ok(()) => Outcome::Pass,
            Err(msg) => Outcome::Fail(msg),
        };
        results.push((case.id, case.name, outcome));
    }
    SuiteReport {
        fs_type: env.fs_type.clone(),
        results,
    }
}
