//! An xfstests-style regression suite for the simulated filesystems.
//!
//! The paper's completeness/correctness evaluation (§5.1) runs the
//! `generic` group of xfstests with "CNTRFS mounted on top of tmpfs": **90
//! of 94 tests pass**, and the four failures are understood architectural
//! limits:
//!
//! | test | reason (paper §5.1) |
//! |------|----------------------|
//! | #228 | `RLIMIT_FSIZE` of the caller is not enforced — operations are replayed in the server process |
//! | #375 | setgid is not cleared on `chmod` when the owner is outside the owning group — ACL decisions are delegated to the backing filesystem under the server's identity |
//! | #391 | `O_DIRECT` is unsupported — FUSE makes direct I/O and `mmap` mutually exclusive, and CNTR needs `mmap` to execute binaries |
//! | #426 | inodes are not exportable (`name_to_handle_at`) — they are dynamically assigned and destroyed |
//!
//! This crate reimplements 94 generic-group-style tests against the
//! simulated VFS. Run against CntrFS-over-tmpfs they reproduce exactly the
//! paper's 90/4 split; run against native tmpfs all 94 pass — demonstrating
//! the failures are CntrFS-specific, not harness artifacts.

pub mod harness;
pub mod suite;

pub use harness::{
    cntrfs_over_overlayfs, cntrfs_over_tmpfs, native_overlayfs, native_tmpfs, Outcome, SuiteReport,
    TestCase, TestEnv,
};
pub use suite::all_tests;
