//! Tier-1 smoke test over the full xfstests harness (paper §5.1).
//!
//! Runs the complete generic-group suite end to end — the same path as the
//! `tab_xfstests` binary — so a regression anywhere in the simulated syscall
//! layer (VFS, mounts, FUSE protocol, CntrFS passthrough) fails `cargo test`
//! rather than only skewing a regenerated table.

use cntr_xfstests::harness::run_suite;
use cntr_xfstests::{
    all_tests, cntrfs_over_overlayfs, cntrfs_over_tmpfs, native_overlayfs, native_tmpfs,
};

#[test]
fn cntrfs_over_tmpfs_passes_at_least_90_of_94() {
    let cases = all_tests();
    assert_eq!(cases.len(), 94, "the generic group has 94 tests");
    let report = run_suite(&cntrfs_over_tmpfs(), &cases);
    assert!(
        report.passed() >= 90,
        "CntrFS regression: {}/{} passed (paper: 90/94); failures: {:?}",
        report.passed(),
        report.results.len(),
        report.failed_ids()
    );
    let expected: Vec<u32> = cases
        .iter()
        .filter(|c| c.expected_cntrfs_failure.is_some())
        .map(|c| c.id)
        .collect();
    assert_eq!(
        report.failed_ids(),
        expected,
        "CntrFS must fail exactly the documented tests (§5.1: #228 #375 #391 #426)"
    );
}

#[test]
fn native_tmpfs_passes_everything() {
    let cases = all_tests();
    let report = run_suite(&native_tmpfs(), &cases);
    assert_eq!(
        report.passed(),
        report.results.len(),
        "control run must be clean; failures: {:?}",
        report.failed_ids()
    );
}

#[test]
fn native_overlayfs_passes_everything() {
    let cases = all_tests();
    let report = run_suite(&native_overlayfs(), &cases);
    assert_eq!(
        report.passed(),
        report.results.len(),
        "OverlayFs must be POSIX-equivalent to a flat filesystem; failures: {:?}",
        report.failed_ids()
    );
}

#[test]
fn cntrfs_over_overlayfs_keeps_the_90_of_94_split() {
    let cases = all_tests();
    let report = run_suite(&cntrfs_over_overlayfs(), &cases);
    let expected: Vec<u32> = cases
        .iter()
        .filter(|c| c.expected_cntrfs_failure.is_some())
        .map(|c| c.id)
        .collect();
    assert_eq!(
        report.failed_ids(),
        expected,
        "swapping tmpfs for OverlayFs under CntrFS must not change the \
         90/94 split — the four failures are CntrFS limits, not backing-fs \
         properties"
    );
    assert_eq!(report.passed(), 90);
}
